//! Ablation — physical address mapping (paper §III-B).
//!
//! The paper notes that "different address bit stripping schemes could
//! result in distinct path access patterns" and fixes
//! `row:bank:column:rank:channel:offset`. This ablation compares it with a
//! channel-in-MSBs mapping that gives each channel a contiguous region:
//! subtree row sets then live in a single channel, serializing the path's
//! block reads on one data bus.

use ring_oram::OpKind;
use string_oram::{MappingKind, Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    print_header(&format!(
        "Ablation: address mapping ({workload}, {n} accesses/core)"
    ));
    print_row(
        "config",
        ["cycles", "vs striped", "read-conflict", "evict-conflict"]
            .map(String::from)
            .as_ref(),
    );
    let mut base = None;
    for (label, mapping, scheme) in [
        ("striped", MappingKind::PaperStriped, Scheme::Baseline),
        ("sequential", MappingKind::Sequential, Scheme::Baseline),
        ("striped+PB", MappingKind::PaperStriped, Scheme::Pb),
        ("sequential+PB", MappingKind::Sequential, Scheme::Pb),
    ] {
        let mut cfg = SystemConfig::hpca_default(scheme);
        cfg.mapping = mapping;
        let r = run_config(cfg, workload, n, label);
        let b = *base.get_or_insert(r.total_cycles as f64);
        print_row(
            label,
            &[
                r.total_cycles.to_string(),
                format!("{:.3}", r.total_cycles as f64 / b),
                format!(
                    "{:.1}%",
                    r.row_class(OpKind::ReadPath).conflict_rate() * 100.0
                ),
                format!(
                    "{:.1}%",
                    r.row_class(OpKind::Eviction).conflict_rate() * 100.0
                ),
            ],
        );
    }
    println!(
        "\nExpected shape: the sequential mapping trades channel parallelism \
         for fewer conflicts (a whole subtree shares one bank's rows), but \
         serializing each path on one data bus costs more than the conflicts \
         saved — vindicating the paper's striped choice."
    );
}
