//! Ablation — the cost of ORAM transaction atomicity.
//!
//! ORAM security requires memory transactions to issue atomically and in
//! order (paper §III-C); that barrier is exactly what idles banks and what
//! PB partially recovers *without* breaking the guarantee. This ablation
//! adds an **insecure** unconstrained FR-FCFS scheduler as the lower bound
//! and asks: how much of the gap does PB close legally?

use mem_sched::SchedulerPolicy;
use string_oram::{Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    print_header(&format!(
        "Ablation: cost of ORAM transaction atomicity ({workload}, {n} accesses/core)"
    ));
    print_row(
        "scheduler",
        ["cycles", "vs base", "secure?"].map(String::from).as_ref(),
    );
    let base = run_config(
        SystemConfig::hpca_default(Scheme::Baseline),
        workload,
        n,
        "base",
    );
    let pb = run_config(SystemConfig::hpca_default(Scheme::Pb), workload, n, "pb");
    let mut cfg = SystemConfig::hpca_default(Scheme::Baseline);
    cfg.sched_policy = SchedulerPolicy::Unconstrained;
    let free = run_config(cfg, workload, n, "unconstrained");

    for (label, r, secure) in [
        ("txn-based", &base, "yes"),
        ("PB", &pb, "yes"),
        ("unconstrained", &free, "NO"),
    ] {
        print_row(
            label,
            &[
                r.total_cycles.to_string(),
                format!("{:.3}", r.total_cycles as f64 / base.total_cycles as f64),
                secure.to_string(),
            ],
        );
    }
    let gap = base.total_cycles as f64 - free.total_cycles as f64;
    let closed = (base.total_cycles as f64 - pb.total_cycles as f64) / gap.max(1.0);
    println!(
        "\nPB legally recovers {:.0}% of the performance the atomicity barrier \
         costs (unconstrained FR-FCFS breaks the ORAM access-sequence guarantee \
         and is shown only as the bound).",
        closed * 100.0
    );
}
