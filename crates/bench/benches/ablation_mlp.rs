//! Ablation — core memory-level parallelism.
//!
//! The paper's cores are 128-entry-ROB OoO machines; this reproduction's
//! default core blocks on every miss (the conservative end). Because ORAM
//! serializes transactions at the controller anyway, extra MLP mostly
//! keeps the ORAM request queue non-empty — this ablation shows how far
//! that matters, and that the String ORAM improvement is robust to the
//! core model.

use string_oram::{Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "libq"; // highest MPKI: most sensitive to MLP
    print_header(&format!(
        "Ablation: core MLP sensitivity ({workload}, {n} accesses/core)"
    ));
    print_row(
        "MLP",
        ["base cycles", "ALL cycles", "ALL saving"]
            .map(String::from)
            .as_ref(),
    );
    for cores in [1usize, 4] {
        for mlp in [1usize, 2, 4, 8] {
            let mut cfg = SystemConfig::hpca_default(Scheme::Baseline);
            cfg.cores = cores;
            cfg.core_mlp = mlp;
            let base = run_config(cfg, workload, n, "base");
            let mut cfg = SystemConfig::hpca_default(Scheme::All);
            cfg.cores = cores;
            cfg.core_mlp = mlp;
            let all = run_config(cfg, workload, n, "all");
            print_row(
                &format!("{cores}c/mlp{mlp}"),
                &[
                    base.total_cycles.to_string(),
                    all.total_cycles.to_string(),
                    format!(
                        "{:.1}%",
                        (1.0 - all.total_cycles as f64 / base.total_cycles as f64) * 100.0
                    ),
                ],
            );
        }
    }
    println!(
        "\nExpected shape: with one core, MLP keeps the ORAM pipeline fed and \
         shortens the run; with four cores the controller is already saturated \
         and MLP is immaterial — evidence that the paper's results do not \
         hinge on the core model. The String ORAM saving persists throughout."
    );
}
