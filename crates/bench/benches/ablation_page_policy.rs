//! Ablation — open-page vs adaptive close-page row-buffer management.
//!
//! The paper assumes the open-page policy (§II-C). The strongest fair
//! competitor to PB under that assumption is an *adaptive* close-page
//! policy (precharge banks whose open row no queued request wants): like
//! PB it removes PRE from the critical path of future conflicts, but
//! without looking at the next ORAM transaction. The ablation shows the
//! adaptive policy recovers part of PB's gain for the baseline — and that
//! PB subsumes it (closed+PB ~ open+PB).

use mem_sched::PagePolicy;
use ring_oram::OpKind;
use string_oram::{Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    print_header(&format!(
        "Ablation: open-page vs close-page policy ({workload}, {n} accesses/core)"
    ));
    print_row(
        "config",
        ["cycles", "vs open/base", "evict hits", "read hits"]
            .map(String::from)
            .as_ref(),
    );
    let mut base = None;
    for (label, policy, scheme) in [
        ("open/base", PagePolicy::Open, Scheme::Baseline),
        ("closed/base", PagePolicy::Closed, Scheme::Baseline),
        ("open/PB", PagePolicy::Open, Scheme::Pb),
        ("closed/PB", PagePolicy::Closed, Scheme::Pb),
    ] {
        let mut cfg = SystemConfig::hpca_default(scheme);
        cfg.page_policy = policy;
        let r = run_config(cfg, workload, n, label);
        let b = *base.get_or_insert(r.total_cycles as f64);
        let evict = r.row_class(OpKind::Eviction);
        let read = r.row_class(OpKind::ReadPath);
        print_row(
            label,
            &[
                r.total_cycles.to_string(),
                format!("{:.3}", r.total_cycles as f64 / b),
                format!(
                    "{:.1}%",
                    evict.hits as f64 / evict.total().max(1) as f64 * 100.0
                ),
                format!(
                    "{:.1}%",
                    read.hits as f64 / read.total().max(1) as f64 * 100.0
                ),
            ],
        );
    }
    println!(
        "\nExpected shape: adaptive close-page preserves pending hits but \
         pre-closes cold rows, recovering a slice of PB's gain for the \
         baseline; adding it to PB changes almost nothing — PB subsumes it \
         while also pre-activating the next transaction's rows."
    );
}
