//! Ablation — PB lookahead depth.
//!
//! Algorithm 2 looks exactly one transaction ahead. This sweep asks what
//! deeper lookahead buys: more PRE/ACT candidates, but also more chances
//! to precharge a bank some intermediate transaction still wants (the
//! guard then suppresses the early issue).

use mem_sched::SchedulerPolicy;
use string_oram::{Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    print_header(&format!(
        "Ablation: PB lookahead depth ({workload}, {n} accesses/core)"
    ));
    print_row(
        "lookahead",
        ["cycles", "vs base", "early PRE", "early ACT"]
            .map(String::from)
            .as_ref(),
    );
    let base_cfg = SystemConfig::hpca_default(Scheme::Baseline);
    let base = run_config(base_cfg, workload, n, "base");
    print_row(
        "0 (base)",
        &[
            base.total_cycles.to_string(),
            "1.000".into(),
            "-".into(),
            "-".into(),
        ],
    );
    for lookahead in [1u64, 2, 4, 8] {
        let mut cfg = SystemConfig::hpca_default(Scheme::Pb);
        cfg.sched_policy = SchedulerPolicy::ProactiveBank { lookahead };
        // Deeper lookahead needs more transactions in flight to matter.
        cfg.max_inflight_txns = (lookahead as usize + 2).max(6);
        let r = run_config(cfg, workload, n, "pb");
        print_row(
            &lookahead.to_string(),
            &[
                r.total_cycles.to_string(),
                format!("{:.3}", r.total_cycles as f64 / base.total_cycles as f64),
                format!("{:.1}%", r.early_precharge_fraction * 100.0),
                format!("{:.1}%", r.early_activate_fraction * 100.0),
            ],
        );
    }
    println!(
        "\nExpected shape: lookahead 1 captures most of the benefit (the paper's \
         choice); deeper windows add little because only the next transaction's \
         banks are predictably idle."
    );
}
