//! Ablation — Ring ORAM vs Path ORAM bandwidth (the claim String ORAM
//! builds on: Ring ORAM cuts overall bandwidth 2.3–4x and online
//! bandwidth far more, Ren et al. [17]).

use ring_oram::path_oram::{PathConfig, PathOram};
use ring_oram::{BlockId, RingConfig, RingOram};
use string_oram_bench::{print_header, print_row};

fn main() {
    let accesses = 4000u64;
    let working_set = 1u64 << 12;

    // Path ORAM with the standard Z=4 over the paper-sized tree.
    let mut path = PathOram::new(PathConfig::hpca_default(), 3);
    let mut path_total = 0u64;
    for i in 0..accesses {
        let out = path.access(BlockId(i % working_set));
        path_total += out
            .plans
            .iter()
            .map(|p| (p.reads() + p.writes()) as u64)
            .sum::<u64>();
        path.recycle_outcome(out);
    }
    let path_online: u64 = 4 * (24 - 6); // Z blocks per off-chip level

    // Ring ORAM with the paper's bandwidth-optimal Z=8/S=12/A=8.
    let mut ring = RingOram::new(RingConfig::hpca_baseline(), 3);
    let mut ring_total = 0u64;
    for i in 0..accesses {
        let out = ring.access(BlockId(i % working_set));
        ring_total += out
            .plans
            .iter()
            .map(|p| (p.reads() + p.writes()) as u64)
            .sum::<u64>();
    }
    let ring_online: u64 = 24 - 6; // 1 block per off-chip level

    print_header("Ablation: Ring ORAM vs Path ORAM bandwidth (L=23, 6 cached levels)");
    print_row(
        "scheme",
        ["blocks/access", "online blocks", "total x64B KiB/access"]
            .map(String::from)
            .as_ref(),
    );
    let per = |t: u64| t as f64 / accesses as f64;
    print_row(
        "Path ORAM",
        &[
            format!("{:.1}", per(path_total)),
            path_online.to_string(),
            format!("{:.1}", per(path_total) * 64.0 / 1024.0),
        ],
    );
    print_row(
        "Ring ORAM",
        &[
            format!("{:.1}", per(ring_total)),
            ring_online.to_string(),
            format!("{:.1}", per(ring_total) * 64.0 / 1024.0),
        ],
    );
    let overall = per(path_total) / per(ring_total);
    let online = path_online as f64 / ring_online as f64;
    println!(
        "\nOverall bandwidth advantage: {overall:.2}x; online advantage: {online:.1}x. \
         Paper reference ([17]): 2.3-4x overall; online >> (with the XOR trick \
         Ring ORAM's online cost drops to ~1 block, which we do not model)."
    );
    assert!(overall > 1.0, "Ring ORAM must win overall");
}
