//! Ablation — subtree layout vs naive breadth-first layout.
//!
//! The paper builds on the subtree layout [19] as the best-known address
//! mapping for tree ORAM; this ablation quantifies how much it actually
//! buys on this memory system, and how the PB scheduler interacts with it
//! (PB recovers some of the locality the naive layout wastes).

use ring_oram::OpKind;
use string_oram::{LayoutKind, Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    print_header(&format!(
        "Ablation: subtree vs naive layout ({workload}, {n} accesses/core)"
    ));
    print_row(
        "config",
        ["cycles", "vs subtree", "read-conflict", "evict-conflict"]
            .map(String::from)
            .as_ref(),
    );
    let mut base = None;
    for (label, layout, scheme) in [
        ("subtree", LayoutKind::Subtree, Scheme::Baseline),
        ("naive", LayoutKind::Naive, Scheme::Baseline),
        ("subtree+PB", LayoutKind::Subtree, Scheme::Pb),
        ("naive+PB", LayoutKind::Naive, Scheme::Pb),
    ] {
        let mut cfg = SystemConfig::hpca_default(scheme);
        cfg.layout = layout;
        let r = run_config(cfg, workload, n, label);
        let b = *base.get_or_insert(r.total_cycles as f64);
        print_row(
            label,
            &[
                r.total_cycles.to_string(),
                format!("{:.3}", r.total_cycles as f64 / b),
                format!(
                    "{:.1}%",
                    r.row_class(OpKind::ReadPath).conflict_rate() * 100.0
                ),
                format!(
                    "{:.1}%",
                    r.row_class(OpKind::Eviction).conflict_rate() * 100.0
                ),
            ],
        );
    }
    println!(
        "\nExpected shape: the naive layout destroys eviction locality (its \
         eviction conflict rate approaches the read-path one) and costs \
         double-digit percent execution time; PB claws back part of it."
    );
}
