//! Ablation — tree-top cache depth.
//!
//! Table III fixes 6 cached levels; this sweep shows the sensitivity: each
//! cached level removes one block read per read path (and a full bucket
//! read+write per eviction) at an on-chip SRAM cost of
//! `(2^c - 1) x bucket` bytes.

use string_oram::{Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    print_header(&format!(
        "Ablation: tree-top cache depth (baseline scheme, {workload}, {n} accesses/core)"
    ));
    print_row(
        "cached lvls",
        ["cycles", "vs 6", "sram KiB", "reads/path"]
            .map(String::from)
            .as_ref(),
    );
    let mut reference = None;
    for cached in [0u32, 2, 4, 6, 8] {
        let mut cfg = SystemConfig::hpca_default(Scheme::Baseline);
        cfg.ring.tree_top_cached_levels = cached;
        let sram_bytes = ((1u64 << cached) - 1) * cfg.ring.bucket_bytes();
        let reads_per_path = cfg.ring.levels - cached;
        let r = run_config(cfg, workload, n, "ttc");
        if cached == 6 {
            reference = Some(r.total_cycles as f64);
        }
        print_row(
            &cached.to_string(),
            &[
                r.total_cycles.to_string(),
                reference
                    .map(|b| format!("{:.3}", r.total_cycles as f64 / b))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.0}", sram_bytes as f64 / 1024.0),
                reads_per_path.to_string(),
            ],
        );
    }
    println!(
        "\nExpected shape: execution time falls roughly linearly with cached \
         depth while SRAM cost doubles per level — level 6 (the paper's \
         choice) buys 25% of the path for ~79 KiB."
    );
}
