//! Backend speed probe: the fast functional backend must complete a
//! 50 k-access single-core trace in at most 1/5 the wall-clock of the
//! cycle-accurate backend (the refactor's acceptance bound).
//!
//! Self-timed like the other harnesses. Prints both wall-clocks, the
//! ratio, the per-backend simulated cycle counts, and a PASS/FAIL line
//! for the bound. `STRING_ORAM_SPEED_ACCESSES` scales the trace (default
//! 50 000 accesses).

use std::time::{Duration, Instant};

use string_oram::{BackendKind, Scheme, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator};

fn accesses() -> usize {
    std::env::var("STRING_ORAM_SPEED_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

fn run(backend: BackendKind, records: usize) -> (Duration, u64, u64) {
    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.cores = 1;
    cfg.backend = backend;
    // Measurement configuration: no tracing/checking overhead on either
    // side, as in the paper's evaluation runs.
    cfg.verify = string_oram::VerifyConfig::off();
    let traces = vec![TraceGenerator::new(by_name("black").unwrap(), 11, 0).take_records(records)];
    let mut sim = Simulation::new(cfg, traces);
    let start = Instant::now();
    let report = sim.run(u64::MAX).expect("completes");
    (start.elapsed(), report.total_cycles, sim.access_digest())
}

fn main() {
    let n = accesses();
    println!("# backend_speed: {n}-access single-core trace, ALL scheme");
    let (t_slow, cycles_slow, digest_slow) = run(BackendKind::CycleAccurate, n);
    let (t_fast, cycles_fast, digest_fast) = run(BackendKind::FastFunctional, n);
    let ratio = t_fast.as_secs_f64() / t_slow.as_secs_f64();
    println!(
        "cycle-accurate : {:>10.3} ms  ({cycles_slow} simulated cycles)",
        t_slow.as_secs_f64() * 1e3
    );
    println!(
        "fast-functional: {:>10.3} ms  ({cycles_fast} simulated cycles)",
        t_fast.as_secs_f64() * 1e3
    );
    println!("wall-clock ratio (fast/cycle-accurate): {ratio:.3} (bound: <= 0.200)");
    assert_eq!(
        digest_slow, digest_fast,
        "backends diverged on the access sequence"
    );
    println!("access digests agree: {digest_fast:#018x}");
    if ratio <= 0.2 {
        println!("PASS: functional backend is >= 5x faster");
    } else {
        println!(
            "FAIL: functional backend is only {:.1}x faster",
            1.0 / ratio
        );
        std::process::exit(1);
    }
}
