//! Extension — String ORAM on DDR4 with bank groups.
//!
//! The paper evaluates on DDR3-1600. DDR4 adds bank groups (tCCD_L/tRRD_L
//! penalties within a group) but twice the banks and a faster bus; this
//! extension checks that the CB/PB wins carry over to the newer interface —
//! the kind of robustness question a reviewer would ask.

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use string_oram::{Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    print_header(&format!(
        "Extension: DDR3-1600 vs DDR4-2400 with bank groups ({workload}, {n} accesses/core)"
    ));
    print_row(
        "config",
        ["cycles", "wall ns", "vs own base", "read-conflict"]
            .map(String::from)
            .as_ref(),
    );
    for (gen, geometry, timing) in [
        (
            "ddr3",
            DramGeometry::hpca_default(),
            TimingParams::ddr3_1600(),
        ),
        (
            "ddr4",
            DramGeometry::ddr4_default(),
            TimingParams::ddr4_2400(),
        ),
    ] {
        let mut base_cycles = None;
        for scheme in Scheme::ALL {
            let mut cfg = SystemConfig::hpca_default(scheme);
            cfg.geometry = geometry.clone();
            cfg.timing = timing.clone();
            let r = run_config(cfg, workload, n, gen);
            let b = *base_cycles.get_or_insert(r.total_cycles as f64);
            print_row(
                &format!("{gen}/{}", scheme.label()),
                &[
                    r.total_cycles.to_string(),
                    format!("{:.0}", timing.cycles_to_ns(r.total_cycles)),
                    format!("{:.3}", r.total_cycles as f64 / b),
                    format!(
                        "{:.1}%",
                        r.row_class(ring_oram::OpKind::ReadPath).conflict_rate() * 100.0
                    ),
                ],
            );
        }
    }
    println!(
        "\nExpected shape: DDR4's extra banks absorb more of the read path's \
         scatter and the faster clock shortens wall time, but the conflict \
         structure — and therefore the CB/PB relative wins — persist."
    );
}
