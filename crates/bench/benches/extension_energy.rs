//! Extension — DRAM energy per scheme.
//!
//! USIMM carries a Micron-style DRAM power model; the paper reports only
//! performance, but both optimizations should also cut energy through
//! different terms: CB moves fewer blocks (dynamic RD/WR and ACT energy),
//! PB shortens runtime (background energy). This harness quantifies that.

use string_oram::Scheme;
use string_oram_bench::{accesses_per_core, print_header, print_row, run_scheme};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    print_header(&format!(
        "Extension: DRAM energy per scheme ({workload}, {n} accesses/core)"
    ));
    print_row(
        "scheme",
        ["total uJ", "vs base", "ACT uJ", "RD/WR uJ", "bkgnd uJ"]
            .map(String::from)
            .as_ref(),
    );
    let mut base = None;
    for scheme in Scheme::ALL {
        let r = run_scheme(scheme, workload, n);
        let e = r.energy;
        let b = *base.get_or_insert(e.total_uj());
        print_row(
            scheme.label(),
            &[
                format!("{:.1}", e.total_uj()),
                format!("{:.3}", e.total_uj() / b),
                format!("{:.1}", e.activate_uj),
                format!("{:.1}", e.read_uj + e.write_uj),
                format!("{:.1}", e.background_uj),
            ],
        );
    }
    println!(
        "\nExpected shape: CB cuts dynamic energy (fewer blocks per eviction), \
         PB cuts background energy (shorter runtime); ALL compounds both."
    );
}
