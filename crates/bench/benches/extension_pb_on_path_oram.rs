//! Extension — broader applicability (paper §VII-F): the Proactive Bank
//! scheduler applied to *Path ORAM* traffic.
//!
//! PB is protocol-agnostic: it needs only transaction-tagged requests. Path
//! ORAM's full-path read+write transactions have high row locality under
//! the subtree layout (few inter-transaction conflicts to hide), so PB's
//! benefit should be smaller than on Ring ORAM's conflict-heavy selective
//! reads — quantifying exactly why the paper pairs PB with Ring ORAM.

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, DramModule, PhysAddr};
use mem_sched::{MemoryController, RequestSpec, SchedulerPolicy, TxnId};
use ring_oram::layout::{SubtreeLayout, TreeLayout};
use ring_oram::path_oram::{PathConfig, PathOram};
use ring_oram::{BlockId, RingConfig, RingOram};
use string_oram_bench::{accesses_per_core, print_header, print_row};

/// Drives pre-planned transactions through a memory controller; returns the
/// completion cycle of the last request.
fn drive(policy: SchedulerPolicy, txns: &[Vec<(u64, bool)>]) -> (u64, f64, f64) {
    let geometry = DramGeometry::hpca_default();
    let mapping = AddressMapping::hpca_default(&geometry);
    let dram = DramModule::new(geometry, TimingParams::ddr3_1600());
    let mut ctrl = MemoryController::new(dram, mapping, policy, 64);
    let mut cycle = 0u64;
    let mut finish = 0u64;
    let mut pending: std::collections::VecDeque<(u64, RequestSpec)> = txns
        .iter()
        .enumerate()
        .flat_map(|(t, reqs)| {
            reqs.iter().map(move |&(addr, is_write)| {
                (
                    t as u64,
                    RequestSpec {
                        addr: PhysAddr(addr),
                        is_write,
                        txn: TxnId(t as u64),
                    },
                )
            })
        })
        .collect();
    loop {
        while let Some(&(_, spec)) = pending.front() {
            if ctrl.try_enqueue(spec, cycle).is_ok() {
                pending.pop_front();
            } else {
                break;
            }
        }
        if ctrl.pending() == 0 && pending.is_empty() {
            break;
        }
        ctrl.tick(cycle);
        for d in ctrl.drain_completed() {
            finish = finish.max(d.data_done_at);
        }
        cycle += 1;
        assert!(cycle < 1_000_000_000, "wedged");
    }
    let s = ctrl.stats();
    (finish, s.conflict_rate(), s.early_precharge_fraction())
}

fn main() {
    let accesses = accesses_per_core();
    print_header(&format!(
        "Extension: PB on Path ORAM vs Ring ORAM traffic ({accesses} accesses)"
    ));
    print_row(
        "traffic",
        ["finish", "PB finish", "PB saving", "conflict", "early PRE"]
            .map(String::from)
            .as_ref(),
    );

    // Path ORAM transactions: full path read + write per access.
    let path_cfg = PathConfig {
        levels: 18,
        z: 4,
        block_bytes: 64,
        tree_top_cached_levels: 4,
    };
    let ring_equiv = RingConfig {
        levels: 18,
        tree_top_cached_levels: 4,
        ..RingConfig::hpca_baseline()
    };
    // A Path ORAM bucket is exactly Z slots; express that as a RingConfig
    // with S = Y = 1 (bucket_slots = Z + S - Y = Z) for the layout.
    let path_layout = SubtreeLayout::new(
        &RingConfig {
            z: 4,
            s: 1,
            y: 1,
            a: 1,
            ..ring_equiv.clone()
        },
        16384,
    );
    let mut path = PathOram::new(path_cfg, 3);
    let mut path_txns = Vec::new();
    for i in 0..accesses as u64 {
        let out = path.access(BlockId(i % 4096));
        for plan in &out.plans {
            path_txns.push(
                plan.touches
                    .iter()
                    .map(|t| (path_layout.addr_of(t.bucket, t.slot), t.write))
                    .collect::<Vec<_>>(),
            );
        }
        path.recycle_outcome(out);
    }

    // Ring ORAM transactions at the same tree height.
    let ring_layout = SubtreeLayout::new(&ring_equiv, 16384);
    let mut ring = RingOram::new(ring_equiv, 3);
    let mut ring_txns = Vec::new();
    for i in 0..accesses as u64 {
        for plan in ring.access(BlockId(i % 4096)).plans {
            ring_txns.push(
                plan.touches
                    .iter()
                    .map(|t| (ring_layout.addr_of(t.bucket, t.slot), t.write))
                    .collect::<Vec<_>>(),
            );
        }
    }

    for (label, txns) in [("path-oram", &path_txns), ("ring-oram", &ring_txns)] {
        let (base, conflict, _) = drive(SchedulerPolicy::TransactionBased, txns);
        let (pb, _, early) = drive(SchedulerPolicy::proactive(), txns);
        print_row(
            label,
            &[
                base.to_string(),
                pb.to_string(),
                format!("{:.1}%", (1.0 - pb as f64 / base as f64) * 100.0),
                format!("{:.1}%", conflict * 100.0),
                format!("{:.1}%", early * 100.0),
            ],
        );
    }
    println!(
        "\nExpected shape: Path ORAM's full-path transactions are row-friendly \
         (low conflict rate), leaving PB little to hide; Ring ORAM's selective \
         reads conflict heavily and PB pays off — the paper's rationale for \
         pairing PB with Ring ORAM, quantified."
    );
}
