//! Extension — the cost of a realistic (recursive) position map.
//!
//! The paper, like most architecture-track ORAM work, assumes the position
//! map is free and on-chip. At the default scale that map is tens of
//! megabytes — far beyond Table I's 4 MB LLC. This extension stores it the
//! standard way (a recursion stack of smaller Ring ORAMs, Shi et al.) and
//! measures what the assumption hides — and whether String ORAM's
//! optimizations also help the recursive traffic.

use string_oram::{RecursionSettings, Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    let n = accesses_per_core();
    let workload = "black";
    let recursion = RecursionSettings {
        tracked_blocks: 1 << 23,
        positions_per_block: 16,
        max_onchip_entries: 1 << 16,
    };
    print_header(&format!(
        "Extension: recursive position map cost ({workload}, {n} accesses/core)"
    ));
    print_row(
        "config",
        ["cycles", "vs flat/base", "read txns"]
            .map(String::from)
            .as_ref(),
    );
    let mut base = None;
    for (label, scheme, rec) in [
        ("flat/base", Scheme::Baseline, None),
        ("recursive/base", Scheme::Baseline, Some(recursion)),
        ("flat/ALL", Scheme::All, None),
        ("recursive/ALL", Scheme::All, Some(recursion)),
    ] {
        let mut cfg = SystemConfig::hpca_default(scheme);
        cfg.recursion = rec;
        let r = run_config(cfg, workload, n, label);
        let b = *base.get_or_insert(r.total_cycles as f64);
        print_row(
            label,
            &[
                r.total_cycles.to_string(),
                format!("{:.3}", r.total_cycles as f64 / b),
                r.transactions_by_kind["read"].to_string(),
            ],
        );
    }
    println!(
        "\nExpected shape: recursion multiplies read-path transactions by the \
         stack depth (3x here) and execution time correspondingly; CB+PB's \
         relative improvement carries over to the recursive traffic."
    );
}
