//! Fig. 4 — memory space utilization of Ring ORAM configurations.
//!
//! Regenerates the real/dummy capacity split for the four
//! bandwidth-optimal (Z, A, S) configurations at L = 23 with 64 B blocks.
//! Analytic; matches the paper exactly.

use string_oram::fig4_rows;
use string_oram_bench::{print_header, print_row};

fn main() {
    print_header("Fig. 4: memory space utilization of Ring ORAM (L = 23, 64 B blocks)");
    print_row(
        "config",
        [
            "Z",
            "A",
            "S",
            "real GiB",
            "dummy GiB",
            "total GiB",
            "space eff.",
        ]
        .map(String::from)
        .as_ref(),
    );
    for row in fig4_rows() {
        print_row(
            &row.label,
            &[
                row.z.to_string(),
                row.a.to_string(),
                row.s.to_string(),
                format!("{:.1}", row.real_gib()),
                format!("{:.1}", row.dummy_gib()),
                format!("{:.1}", row.total_gib()),
                format!("{:.2}%", row.efficiency() * 100.0),
            ],
        );
    }
    println!(
        "\nPaper reference: real capacity 4/8/16/32 GB growing linearly with Z; \
         dummy capacity growing super-linearly (5..58 GB); Config-4 space \
         efficiency 35.56%."
    );
}
