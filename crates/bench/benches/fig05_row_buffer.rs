//! Fig. 5(b) — row-buffer conflict rate of Ring ORAM read paths vs
//! evictions under the subtree layout on a 4-channel memory system.
//!
//! The paper reports ~74% conflict rate during selective read paths and
//! ~10% during full-path evictions: the subtree layout only helps
//! operations that touch whole subtrees.

use ring_oram::OpKind;
use string_oram::Scheme;
use string_oram_bench::{
    accesses_per_core, geomean, print_header, print_row, run_scheme, workload_names,
};

fn main() {
    let n = accesses_per_core();
    print_header(&format!(
        "Fig. 5(b): row-buffer conflict rate, baseline Ring ORAM, {n} accesses/core"
    ));
    print_row(
        "workload",
        ["read-path", "eviction"].map(String::from).as_ref(),
    );
    let mut reads = Vec::new();
    let mut evicts = Vec::new();
    for w in workload_names() {
        let r = run_scheme(Scheme::Baseline, w, n);
        let rp = r.row_class(OpKind::ReadPath).conflict_rate();
        let ev = r.row_class(OpKind::Eviction).conflict_rate();
        reads.push(rp);
        evicts.push(ev);
        print_row(
            w,
            &[format!("{:.1}%", rp * 100.0), format!("{:.1}%", ev * 100.0)],
        );
    }
    print_row(
        "GEOMEAN",
        &[
            format!("{:.1}%", geomean(&reads) * 100.0),
            format!("{:.1}%", geomean(&evicts) * 100.0),
        ],
    );
    println!(
        "\nPaper reference: read path ~74%, eviction ~10% — the selective read \
         defeats the subtree layout; the full-path eviction exploits it."
    );
}
