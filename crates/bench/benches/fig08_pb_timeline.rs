//! Figs. 6 & 8 — the illustrative 4-bank timing example: three ORAM
//! transactions under transaction-based scheduling vs the PB scheduler.
//!
//! Reconstructs the paper's didactic scenario directly on the memory
//! controller: each transaction touches a subset of the 4 banks with
//! inter-transaction row conflicts, and PB pulls the PRE/ACT pairs of the
//! next transaction into the idle banks ("Time Saving" in Fig. 8).

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, DramLocation, DramModule};
use mem_sched::{MemoryController, RequestSpec, SchedulerPolicy, TxnId};
use string_oram_bench::{print_header, print_row};

/// (txn, bank, row) tuples for the canned scenario: six "ORAM read path"
/// transactions, each touching all four banks twice in a row that differs
/// from what the previous transaction left open — so every transaction
/// opens with four inter-transaction row conflicts, exactly the pattern of
/// the paper's Fig. 6, which PB overlaps per Fig. 8.
fn scenario() -> Vec<(u64, u32, u64)> {
    let mut v = Vec::new();
    for txn in 0..6u64 {
        for bank in 0..4u32 {
            for rep in 0..2u64 {
                let _ = rep;
                v.push((txn, bank, txn + 1));
            }
        }
    }
    v
}

fn run(policy: SchedulerPolicy) -> (u64, u64, u64) {
    let geometry = DramGeometry {
        channels: 1,
        ranks_per_channel: 1,
        banks_per_rank: 4,
        bank_groups: 1,
        rows_per_bank: 64,
        columns_per_row: 64,
        column_bytes: 64,
    };
    let mapping = AddressMapping::hpca_default(&geometry);
    let dram = DramModule::new(geometry, TimingParams::ddr3_1600());
    let mut ctrl = MemoryController::new(dram, mapping.clone(), policy, 64);
    for (i, &(txn, bank, row)) in scenario().iter().enumerate() {
        let addr = mapping.encode(&DramLocation {
            channel: 0,
            rank: 0,
            bank,
            row,
            column: (i % 8) as u32,
        });
        ctrl.try_enqueue(
            RequestSpec {
                addr,
                is_write: false,
                txn: TxnId(txn),
            },
            0,
        )
        .expect("room");
    }
    let mut cycle = 0;
    let mut finish = 0;
    while ctrl.pending() > 0 {
        ctrl.tick(cycle);
        for d in ctrl.drain_completed() {
            finish = finish.max(d.data_done_at);
        }
        cycle += 1;
        assert!(cycle < 100_000);
    }
    let s = ctrl.stats();
    (finish, s.early_precharges, s.early_activates)
}

fn main() {
    print_header("Figs. 6/8: 4-bank, 3-transaction timing example (DDR3-1600 cycles)");
    print_row(
        "scheduler",
        ["finish cycle", "early PRE", "early ACT"]
            .map(String::from)
            .as_ref(),
    );
    let (base_finish, _, _) = run(SchedulerPolicy::TransactionBased);
    print_row(
        "txn-based",
        &[base_finish.to_string(), "0".into(), "0".into()],
    );
    let (pb_finish, epre, eact) = run(SchedulerPolicy::proactive());
    print_row(
        "PB",
        &[pb_finish.to_string(), epre.to_string(), eact.to_string()],
    );
    let saved = base_finish.saturating_sub(pb_finish);
    println!(
        "\nTime saving: {saved} cycles ({:.1}%) — the paper's Fig. 8 shows the \
         same mechanism: inter-transaction PRE/ACT pairs overlap the previous \
         transaction's critical path.",
        saved as f64 / base_finish as f64 * 100.0
    );
    assert!(
        pb_finish <= base_finish,
        "PB must not lose on the didactic case"
    );
}
