//! Fig. 10 — normalized execution time of Baseline / CB / PB / ALL across
//! the ten workloads, with the read/evict/reshuffle/other cycle breakdown.
//!
//! The paper's averages: CB −11.72%, PB −18.87%, CB+PB −30.05%, with
//! < 0.38% variation across applications.

use string_oram::Scheme;
use string_oram_bench::{
    accesses_per_core, geomean, print_header, print_row, run_scheme, workload_names,
};

fn main() {
    let n = accesses_per_core();
    print_header(&format!(
        "Fig. 10: normalized execution time (vs Baseline), {n} accesses/core"
    ));
    print_row(
        "workload",
        ["Baseline", "CB", "PB", "ALL"].map(String::from).as_ref(),
    );

    let mut norm: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for w in workload_names() {
        let mut cycles = Vec::new();
        for scheme in Scheme::ALL {
            cycles.push(run_scheme(scheme, w, n).total_cycles as f64);
        }
        let base = cycles[0];
        let values: Vec<String> = cycles.iter().map(|c| format!("{:.3}", c / base)).collect();
        for (i, c) in cycles.iter().enumerate() {
            norm[i].push(c / base);
        }
        print_row(w, &values);
    }
    print_row(
        "GEOMEAN",
        &norm
            .iter()
            .map(|v| format!("{:.3}", geomean(v)))
            .collect::<Vec<_>>(),
    );

    // Breakdown for one representative workload (paper stacks all bars).
    print_header("Fig. 10 inset: cycle breakdown for 'black' (fraction of own total)");
    print_row(
        "scheme",
        ["read", "evict", "reshuffle", "other"]
            .map(String::from)
            .as_ref(),
    );
    for scheme in Scheme::ALL {
        let r = run_scheme(scheme, "black", n);
        let t = r.cycles_by_kind.total() as f64;
        print_row(
            scheme.label(),
            &[
                format!("{:.1}%", r.cycles_by_kind.read as f64 / t * 100.0),
                format!("{:.1}%", r.cycles_by_kind.evict as f64 / t * 100.0),
                format!("{:.1}%", r.cycles_by_kind.reshuffle as f64 / t * 100.0),
                format!("{:.1}%", r.cycles_by_kind.other as f64 / t * 100.0),
            ],
        );
    }
    println!(
        "\nPaper reference: CB 0.883, PB 0.811, ALL 0.700 on average; \
         variation across workloads < 0.38%."
    );
}
