//! Fig. 11 — normalized memory-request queuing time (read and write
//! queues) for Baseline / CB / PB / ALL.
//!
//! Paper averages: read queue CB −10.41%, PB −22.53%, ALL −32.87%;
//! write queue CB −11.83%, PB −19.46%, ALL −31.30%.

use string_oram::{Scheme, SimReport};
use string_oram_bench::{
    accesses_per_core, geomean, print_header, print_row, run_scheme, workload_names,
};

fn main() {
    let n = accesses_per_core();
    // One simulation per (workload, scheme); both figures come from it.
    let mut matrix: Vec<(&str, Vec<SimReport>)> = Vec::new();
    for w in workload_names() {
        let runs = Scheme::ALL.map(|s| run_scheme(s, w, n)).to_vec();
        matrix.push((w, runs));
    }

    for (title, pick) in [
        (
            "Fig. 11(a): normalized READ queue queuing time",
            (|r: &SimReport| r.mean_read_queue_wait) as fn(&SimReport) -> f64,
        ),
        (
            "Fig. 11(b): normalized WRITE queue queuing time",
            (|r: &SimReport| r.mean_write_queue_wait) as fn(&SimReport) -> f64,
        ),
    ] {
        print_header(&format!("{title}, {n} accesses/core"));
        print_row(
            "workload",
            ["Baseline", "CB", "PB", "ALL"].map(String::from).as_ref(),
        );
        let mut norm: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for (w, runs) in &matrix {
            let base = pick(&runs[0]);
            print_row(
                w,
                &runs
                    .iter()
                    .map(|r| format!("{:.3}", pick(r) / base))
                    .collect::<Vec<_>>(),
            );
            for (i, r) in runs.iter().enumerate() {
                norm[i].push(pick(r) / base);
            }
        }
        print_row(
            "GEOMEAN",
            &norm
                .iter()
                .map(|v| format!("{:.3}", geomean(v)))
                .collect::<Vec<_>>(),
        );
    }
    println!(
        "\nPaper reference: read queue CB 0.896 / PB 0.775 / ALL 0.671; \
         write queue CB 0.882 / PB 0.805 / ALL 0.687."
    );
}
