//! Fig. 12 — (a) average bank idle-time proportion before/after PB, and
//! (b) the proportion of PRE/ACT commands PB manages to issue early.
//!
//! Paper: idle time 65.99% → 40.72%; 59.31% of PREs and 56.93% of ACTs
//! issue ahead of their transaction.

use string_oram::Scheme;
use string_oram_bench::{
    accesses_per_core, geomean, print_header, print_row, run_scheme, workload_names,
};

fn main() {
    let n = accesses_per_core();
    print_header(&format!(
        "Fig. 12(a): average bank idle time proportion, {n} accesses/core"
    ));
    print_row("workload", ["Baseline", "PB"].map(String::from).as_ref());
    let mut base_idle = Vec::new();
    let mut pb_idle = Vec::new();
    let mut pre_frac = Vec::new();
    let mut act_frac = Vec::new();
    let mut rows_b = Vec::new();
    for w in workload_names() {
        let b = run_scheme(Scheme::Baseline, w, n);
        let p = run_scheme(Scheme::Pb, w, n);
        base_idle.push(b.pending_bank_idle_proportion);
        pb_idle.push(p.pending_bank_idle_proportion);
        pre_frac.push(p.early_precharge_fraction);
        act_frac.push(p.early_activate_fraction);
        print_row(
            w,
            &[
                format!("{:.1}%", b.pending_bank_idle_proportion * 100.0),
                format!("{:.1}%", p.pending_bank_idle_proportion * 100.0),
            ],
        );
        rows_b.push((w, p));
    }
    print_row(
        "GEOMEAN",
        &[
            format!("{:.1}%", geomean(&base_idle) * 100.0),
            format!("{:.1}%", geomean(&pb_idle) * 100.0),
        ],
    );

    print_header("Fig. 12(b): proportion of PRE/ACT issued ahead of their transaction (PB)");
    print_row(
        "workload",
        ["PRE early", "ACT early"].map(String::from).as_ref(),
    );
    for (w, p) in &rows_b {
        print_row(
            w,
            &[
                format!("{:.1}%", p.early_precharge_fraction * 100.0),
                format!("{:.1}%", p.early_activate_fraction * 100.0),
            ],
        );
    }
    print_row(
        "GEOMEAN",
        &[
            format!("{:.1}%", geomean(&pre_frac) * 100.0),
            format!("{:.1}%", geomean(&act_frac) * 100.0),
        ],
    );
    println!(
        "\nPaper reference: idle 65.99% -> 40.72% with PB; 59.31% of PREs and \
         56.93% of ACTs issued early. Idle here is measured over bank-cycles \
         with pending work, matching the paper's 'stops receiving memory \
         command due to the scheduling barrier'."
    );
}
