//! Fig. 13 — CB sensitivity: execution time and green blocks fetched per
//! read for Y = 0 (baseline), 2, 4, 6, 8, both CB-only and CB+PB.
//!
//! Paper: CB alone improves 2.02%..11.72% from Y=2..8; with PB the total
//! improvement grows 20.79%..30.05%. Greens fetched per read: 0.167,
//! 0.652, 1.638, 3.255 for Y = 2, 4, 6, 8 (stash 500, no background
//! eviction triggered).
//!
//! Greens/read is measured over the **second half** of each run: a bucket
//! at tree level `l` only reaches its shuffle steady state after ~2^l
//! evictions, so early accesses under-count green availability.

use string_oram::{Scheme, Simulation, SystemConfig};
use string_oram_bench::{
    accesses_per_core, geomean, print_header, print_row, traces_for, workload_names,
};

/// Runs to completion, returning (total cycles, second-half greens/read).
fn run_with_green_window(cfg: SystemConfig, workload: &str, n: usize) -> (u64, f64) {
    let traces = traces_for(&cfg, workload, n, 0xBEEF);
    let total_accesses = (n * cfg.cores) as u64;
    let mut sim = Simulation::new(cfg, traces);
    // Step to the halfway point, snapshot, then finish.
    while sim.oram_accesses() < total_accesses / 2 && !sim.is_finished() {
        sim.step();
    }
    let mid_greens = sim.oram().stats().greens_fetched;
    let mid_reads = sim.oram().stats().read_paths;
    while !sim.is_finished() {
        sim.step();
    }
    let end = sim.report();
    let d_greens = end.protocol.greens_fetched - mid_greens;
    let d_reads = end.protocol.read_paths - mid_reads;
    let greens = if d_reads == 0 {
        0.0
    } else {
        d_greens as f64 / d_reads as f64
    };
    (end.total_cycles, greens)
}

fn main() {
    let n = accesses_per_core();
    let ys = [0u32, 2, 4, 6, 8];
    print_header(&format!(
        "Fig. 13: CB compact-rate sensitivity (geomean over 3 workloads), {n} accesses/core"
    ));
    print_row(
        "Y",
        ["CB time", "CB+PB time", "greens/read"]
            .map(String::from)
            .as_ref(),
    );
    // A 3-workload panel keeps the 33-run sweep affordable; the paper
    // itself notes workload insensitivity.
    let panel: Vec<&str> = workload_names().into_iter().take(3).collect();
    let mut base_cycles = Vec::new();
    for w in &panel {
        let cfg = SystemConfig::hpca_default(Scheme::Baseline);
        base_cycles.push(run_with_green_window(cfg, w, n).0 as f64);
    }
    for y in ys {
        let mut cb_norm = Vec::new();
        let mut all_norm = Vec::new();
        let mut greens = Vec::new();
        for (i, w) in panel.iter().enumerate() {
            let mut cfg = SystemConfig::hpca_default(Scheme::Cb);
            cfg.ring.y = y;
            let (cycles, g) = run_with_green_window(cfg, w, n);
            cb_norm.push(cycles as f64 / base_cycles[i]);
            greens.push(g);

            let mut cfg = SystemConfig::hpca_default(Scheme::All);
            cfg.ring.y = y;
            let (cycles, _) = run_with_green_window(cfg, w, n);
            all_norm.push(cycles as f64 / base_cycles[i]);
        }
        print_row(
            &y.to_string(),
            &[
                format!("{:.3}", geomean(&cb_norm)),
                format!("{:.3}", geomean(&all_norm)),
                format!("{:.3}", greens.iter().sum::<f64>() / greens.len() as f64),
            ],
        );
    }
    println!(
        "\nPaper reference: CB 0.980/0.961/0.928/0.883 for Y=2/4/6/8; CB+PB \
         0.792..0.700; greens/read 0.167/0.652/1.638/3.255. Greens/read \
         converges from below with run length — raise STRING_ORAM_ACCESSES \
         for deeper tree levels to reach shuffle steady state."
    );
}
