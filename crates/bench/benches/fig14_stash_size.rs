//! Fig. 14 — stash size vs performance and background-eviction overhead.
//!
//! The paper sweeps stash sizes 200..500 against CB rates Y=2..8: small
//! stashes force background evictions for aggressive Y, costing extra
//! (leakage-free) dummy read paths and evictions; at 500 entries even Y=8
//! triggers none.

use string_oram::{Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    // Stash dynamics need long runs: occupancy builds over thousands of
    // accesses (the paper plots 20 000).
    let n = accesses_per_core().max(2000);
    let stashes = [200usize, 300, 400, 500];
    let ys = [0u32, 2, 4, 6, 8];
    let workload = "black";

    print_header(&format!(
        "Fig. 14(a): normalized execution time vs stash size ({workload}, {n} accesses/core)"
    ));
    print_row(
        "stash",
        &ys.iter().map(|y| format!("Y={y}")).collect::<Vec<_>>(),
    );
    let mut base = None;
    let mut evictions: Vec<Vec<u64>> = Vec::new();
    for stash in stashes {
        let mut row = Vec::new();
        let mut evict_row = Vec::new();
        for y in ys {
            let mut cfg =
                SystemConfig::hpca_default(if y == 0 { Scheme::Baseline } else { Scheme::Cb });
            cfg.ring.y = y;
            cfg.ring.stash_capacity = stash;
            let r = run_config(cfg, workload, n, "fig14");
            let b = *base.get_or_insert(r.total_cycles as f64);
            row.push(format!("{:.3}", r.total_cycles as f64 / b));
            evict_row.push(r.protocol.evictions);
        }
        print_row(&stash.to_string(), &row);
        evictions.push(evict_row);
    }

    print_header("Fig. 14(b): eviction count (normalized to baseline, stash 200)");
    print_row(
        "stash",
        &ys.iter().map(|y| format!("Y={y}")).collect::<Vec<_>>(),
    );
    let norm = evictions[0][0] as f64;
    for (i, stash) in stashes.iter().enumerate() {
        print_row(
            &stash.to_string(),
            &evictions[i]
                .iter()
                .map(|e| format!("{:.3}", *e as f64 / norm))
                .collect::<Vec<_>>(),
        );
    }
    println!(
        "\nPaper reference: at stash 200, Y >= 6 starts to trigger background \
         evictions (eviction count up to 1.62x / 2.28x for Y=6/8); at stash \
         500 even Y=8 triggers none and Config-4 performs best."
    );
}
