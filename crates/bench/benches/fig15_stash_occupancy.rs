//! Fig. 15 — run-time stash occupancy under different stash sizes and CB
//! rates.
//!
//! The paper plots occupancy over 20 000 accesses for stash sizes
//! 200/300/400/500 and configs Y = 0..8, showing occupancy grows with Y
//! but stays bounded thanks to reverse-lexicographic eviction (plus
//! background eviction when the bound is hit).

use string_oram::{Scheme, SystemConfig};
use string_oram_bench::{accesses_per_core, print_header, print_row, run_config};

fn main() {
    // Stash dynamics need long runs: occupancy builds over thousands of
    // accesses (the paper plots 20 000).
    let n = accesses_per_core().max(2000);
    let ys = [0u32, 2, 4, 6, 8];
    let workload = "black";
    for stash in [200usize, 300, 400, 500] {
        print_header(&format!(
            "Fig. 15: stash occupancy, stash size {stash} ({workload}, {n} accesses/core)"
        ));
        print_row(
            "Y",
            ["mean", "p95", "max", "bg evictions"]
                .map(String::from)
                .as_ref(),
        );
        for y in ys {
            let mut cfg =
                SystemConfig::hpca_default(if y == 0 { Scheme::Baseline } else { Scheme::Cb });
            cfg.ring.y = y;
            cfg.ring.stash_capacity = stash;
            let r = run_config(cfg, workload, n, "fig15");
            let mut samples = r.protocol.stash_samples.clone();
            samples.sort_unstable();
            let mean = samples.iter().sum::<usize>() as f64 / samples.len().max(1) as f64;
            let p95 = samples
                .get(samples.len() * 95 / 100)
                .copied()
                .unwrap_or_default();
            let max = samples.last().copied().unwrap_or_default();
            print_row(
                &format!("Y={y}"),
                &[
                    format!("{mean:.1}"),
                    p95.to_string(),
                    max.to_string(),
                    r.protocol.background_evictions.to_string(),
                ],
            );
        }
    }
    println!(
        "\nPaper reference: occupancy rises with Y but does not blow up; with \
         stash 500 even Y=8 never triggers background eviction during the \
         simulated window."
    );
}
