//! Microbenchmarks of the individual substrates: protocol access planning,
//! DRAM command issue, scheduler ticks, trace generation, crypto and the
//! whole-system step loop.
//!
//! Self-timed (no external harness, so the workspace builds offline): each
//! case is warmed up, then run for a fixed iteration budget, reporting
//! mean ns/op. `STRING_ORAM_MICRO_ITERS` scales the budget.

use std::time::Instant;

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, DramCommand, DramLocation, DramModule};
use mem_sched::{MemoryController, RequestSpec, SchedulerPolicy, TxnId};
use oram_collections::ObliviousMap;
use ring_oram::crypto::BlockCipher;
use ring_oram::recursive::{RecursiveConfig, RecursiveOram};
use ring_oram::{BlockId, RingConfig, RingOram};
use string_oram::{Scheme, Simulation, SystemConfig};
use string_oram_bench::{print_header, print_row};
use trace_synth::{by_name, TraceGenerator};

fn iters() -> u64 {
    std::env::var("STRING_ORAM_MICRO_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

/// Times `f` over the iteration budget (plus a 10 % warm-up) and prints
/// one row with the mean ns/op.
fn bench<F: FnMut(u64)>(name: &str, mut f: F) {
    let n = iters();
    for i in 0..n / 10 + 1 {
        f(i);
    }
    let start = Instant::now();
    for i in 0..n {
        f(i);
    }
    let ns = start.elapsed().as_nanos() as f64 / n as f64;
    print_row(name, &[format!("{ns:>10.0} ns/op")]);
}

fn bench_protocol_access() {
    for (name, cfg) in [
        ("ring_baseline", RingConfig::hpca_baseline()),
        ("ring_cb", RingConfig::hpca_default()),
    ] {
        let mut oram = RingOram::new(cfg, 1);
        bench(name, |i| {
            std::hint::black_box(oram.access(BlockId(i % 4096)));
        });
    }
}

fn bench_dram_issue() {
    let geometry = DramGeometry::test_medium();
    let timing = TimingParams::ddr3_1600();
    bench("dram_act_rd_pre", |_| {
        let mut dram = DramModule::new(geometry.clone(), timing.clone());
        let loc = DramLocation {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 5,
            column: 1,
        };
        let t = dram.timing().clone();
        dram.issue(DramCommand::activate(loc), 0).unwrap();
        dram.issue(DramCommand::read(loc), t.t_rcd).unwrap();
        let pre_at = t.t_ras.max(t.t_rcd + t.t_rtp);
        dram.issue(DramCommand::precharge(loc), pre_at).unwrap();
        std::hint::black_box(dram.stats().total_commands());
    });
}

fn bench_scheduler_tick() {
    for (name, policy) in [
        ("sched_txn_64req", SchedulerPolicy::TransactionBased),
        ("sched_pb_64req", SchedulerPolicy::proactive()),
    ] {
        let geometry = DramGeometry::test_medium();
        let mapping = AddressMapping::hpca_default(&geometry);
        bench(name, |_| {
            let dram = DramModule::new(geometry.clone(), TimingParams::ddr3_1600());
            let mut ctrl = MemoryController::new(dram, mapping.clone(), policy, 64);
            for i in 0..64u64 {
                ctrl.try_enqueue(
                    RequestSpec {
                        addr: dram_sim::PhysAddr(i * 4096 * 7),
                        is_write: i % 3 == 0,
                        txn: TxnId(i / 16),
                    },
                    0,
                )
                .unwrap();
            }
            let mut cycle = 0;
            while ctrl.pending() > 0 {
                ctrl.tick(cycle);
                cycle += 1;
            }
            std::hint::black_box(cycle);
        });
    }
}

fn bench_trace_generation() {
    let spec = by_name("libq").unwrap();
    bench("trace_libq_1k", |i| {
        let mut g = TraceGenerator::new(spec.clone(), 5 + i, 0);
        std::hint::black_box(g.take_records(1000));
    });
}

fn bench_data_path() {
    let mut oram = RingOram::new(RingConfig::test_small(), 3);
    oram.enable_encryption(0xFEED);
    let data = [7u8; 64];
    bench("wr_rd_block_64b", |i| {
        let id = BlockId(i % 128);
        let _ = oram.write_block(id, &data);
        std::hint::black_box(oram.read_block(id).1);
    });
}

fn bench_crypto() {
    let cipher = BlockCipher::new(42);
    let data = [9u8; 64];
    bench("seal_open_64b", |nonce| {
        let sealed = cipher.seal(nonce, &data);
        std::hint::black_box(cipher.open(&sealed).expect("well formed"));
    });
}

fn bench_recursive_access() {
    let mut rec = RecursiveOram::new(RecursiveConfig::test_small(), 5);
    // Keep the program working set well under the data tree's spare real
    // capacity (cold pre-load takes ~70 % of it).
    bench("recursive_3maps", |i| {
        std::hint::black_box(rec.access(BlockId(i % 128)));
    });
}

fn bench_collections() {
    let mut map = ObliviousMap::new(RingConfig::test_small(), 256, 1);
    for i in 0..32u32 {
        map.put(format!("k{i}").as_bytes(), b"value").expect("room");
    }
    bench("map_get", |i| {
        std::hint::black_box(map.get(format!("k{}", i % 64).as_bytes()).expect("sized"));
    });
}

fn bench_system_step() {
    let cfg = SystemConfig::hpca_default(Scheme::All);
    let spec = by_name("black").unwrap();
    let traces = (0..cfg.cores)
        .map(|c| TraceGenerator::new(spec.clone(), 1, c as u32).take_records(100_000))
        .collect();
    let mut sim = Simulation::new(cfg, traces);
    bench("system_step", |_| {
        sim.step();
        std::hint::black_box(sim.cycles());
    });
}

fn main() {
    print_header("Microbenchmarks (mean over self-timed iterations)");
    bench_protocol_access();
    bench_dram_issue();
    bench_scheduler_tick();
    bench_trace_generation();
    bench_data_path();
    bench_crypto();
    bench_recursive_access();
    bench_collections();
    bench_system_step();
}
