//! Criterion microbenchmarks of the individual substrates: protocol access
//! planning, DRAM command issue, scheduler ticks and trace generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, DramCommand, DramLocation, DramModule};
use mem_sched::{MemoryController, RequestSpec, SchedulerPolicy, TxnId};
use oram_collections::ObliviousMap;
use ring_oram::crypto::BlockCipher;
use ring_oram::recursive::{RecursiveConfig, RecursiveOram};
use ring_oram::{BlockId, RingConfig, RingOram};
use string_oram::{Scheme, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator};

fn bench_protocol_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    for (name, cfg) in [
        ("ring_access_baseline", RingConfig::hpca_baseline()),
        ("ring_access_cb", RingConfig::hpca_default()),
    ] {
        group.bench_function(name, |b| {
            let mut oram = RingOram::new(cfg.clone(), 1);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                std::hint::black_box(oram.access(BlockId(i % 4096)))
            });
        });
    }
    group.finish();
}

fn bench_dram_issue(c: &mut Criterion) {
    c.bench_function("dram/act_read_pre_cycle", |b| {
        let geometry = DramGeometry::test_medium();
        let timing = TimingParams::ddr3_1600();
        b.iter_batched(
            || DramModule::new(geometry.clone(), timing.clone()),
            |mut dram| {
                let loc = DramLocation {
                    channel: 0,
                    rank: 0,
                    bank: 0,
                    row: 5,
                    column: 1,
                };
                let t = dram.timing().clone();
                dram.issue(DramCommand::activate(loc), 0).unwrap();
                dram.issue(DramCommand::read(loc), t.t_rcd).unwrap();
                let pre_at = t.t_ras.max(t.t_rcd + t.t_rtp);
                dram.issue(DramCommand::precharge(loc), pre_at).unwrap();
                std::hint::black_box(dram.stats().total_commands())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_scheduler_tick(c: &mut Criterion) {
    for (name, policy) in [
        ("sched/txn_based_64req", SchedulerPolicy::TransactionBased),
        ("sched/proactive_64req", SchedulerPolicy::proactive()),
    ] {
        c.bench_function(name, |b| {
            let geometry = DramGeometry::test_medium();
            let mapping = AddressMapping::hpca_default(&geometry);
            b.iter_batched(
                || {
                    let dram =
                        DramModule::new(geometry.clone(), TimingParams::ddr3_1600());
                    let mut ctrl =
                        MemoryController::new(dram, mapping.clone(), policy, 64);
                    for i in 0..64u64 {
                        ctrl.try_enqueue(
                            RequestSpec {
                                addr: dram_sim::PhysAddr(i * 4096 * 7),
                                is_write: i % 3 == 0,
                                txn: TxnId(i / 16),
                            },
                            0,
                        )
                        .unwrap();
                    }
                    ctrl
                },
                |mut ctrl| {
                    let mut cycle = 0;
                    while ctrl.pending() > 0 {
                        ctrl.tick(cycle);
                        cycle += 1;
                    }
                    std::hint::black_box(cycle)
                },
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace/libq_1k_records", |b| {
        let spec = by_name("libq").unwrap();
        b.iter_batched(
            || TraceGenerator::new(spec.clone(), 5, 0),
            |mut g| std::hint::black_box(g.take_records(1000)),
            BatchSize::SmallInput,
        );
    });
}

fn bench_data_path(c: &mut Criterion) {
    c.bench_function("protocol/write_read_block_64b", |b| {
        let mut oram = RingOram::new(RingConfig::test_small(), 3);
        oram.enable_encryption(0xFEED);
        let data = [7u8; 64];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = BlockId(i % 128);
            let _ = oram.write_block(id, &data);
            std::hint::black_box(oram.read_block(id).1)
        });
    });
}

fn bench_crypto(c: &mut Criterion) {
    c.bench_function("crypto/seal_open_64b", |b| {
        let cipher = BlockCipher::new(42);
        let data = [9u8; 64];
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            let sealed = cipher.seal(nonce, &data);
            std::hint::black_box(cipher.open(&sealed).expect("well formed"))
        });
    });
}

fn bench_recursive_access(c: &mut Criterion) {
    c.bench_function("protocol/recursive_access_3maps", |b| {
        let mut rec = RecursiveOram::new(RecursiveConfig::test_small(), 5);
        // Keep the program working set well under the data tree's spare
        // real capacity (cold pre-load takes ~70 % of it).
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(rec.access(BlockId(i % 128)))
        });
    });
}

fn bench_collections(c: &mut Criterion) {
    c.bench_function("collections/map_get", |b| {
        let mut map = ObliviousMap::new(RingConfig::test_small(), 256, 1);
        for i in 0..32u32 {
            map.put(format!("k{i}").as_bytes(), b"value").expect("room");
        }
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            std::hint::black_box(map.get(format!("k{}", i % 64).as_bytes()))
        });
    });
}

fn bench_system_step(c: &mut Criterion) {
    c.bench_function("system/step_paper_default", |b| {
        let cfg = SystemConfig::hpca_default(Scheme::All);
        let spec = by_name("black").unwrap();
        let traces = (0..cfg.cores)
            .map(|c| TraceGenerator::new(spec.clone(), 1, c as u32).take_records(100_000))
            .collect();
        let mut sim = Simulation::new(cfg, traces);
        b.iter(|| {
            sim.step();
            std::hint::black_box(sim.cycles())
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_protocol_access, bench_dram_issue, bench_scheduler_tick,
              bench_trace_generation, bench_data_path, bench_crypto,
              bench_recursive_access, bench_collections, bench_system_step
);
criterion_main!(micro);
