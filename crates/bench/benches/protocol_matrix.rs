//! Cross-protocol arena: throughput and latency of every protocol the
//! pipeline hosts (Ring+CB, plain Ring, Path, Circuit) over both memory
//! backends, recorded to `BENCH_protocol_matrix.json` at the repo root
//! (schema in `EXPERIMENTS.md`; the committed copy is re-validated by the
//! bench lib's tests and the CI smoke step).
//!
//! One simulated core keeps the access order a pure function of the trace,
//! so each protocol's access digest must agree across backends — the
//! emitted document carries the digests and `validate_protocol_matrix`
//! enforces the equality, making every regeneration of this file a
//! differential run, not just a measurement.
//!
//! The numbers quantify what the paper's §II background argues: Path
//! ORAM's full-path read+write traffic costs multiples of Ring ORAM's
//! selective reads, Circuit ORAM trades Path's bandwidth for deterministic
//! two-pass evictions, and the Compact Bucket layout rides on Ring at no
//! protocol-level cost (its wins are in the DRAM row behavior).
//!
//! `STRING_ORAM_MATRIX_ACCESSES` scales the per-core trace (default 2000);
//! `STRING_ORAM_BENCH_JSON` overrides the output path (CI smoke writes to
//! a scratch file instead of the committed matrix).

use std::time::Instant;

use string_oram::{
    BackendKind, ProtocolKind, Scheme, SimReport, Simulation, SystemConfig, VerifyConfig,
};
use string_oram_bench::json::Value;
use string_oram_bench::{traces_for, validate_protocol_matrix};

const WORKLOAD: &str = "black";
const TRACE_SEED: u64 = 11;

fn records_per_core() -> usize {
    std::env::var("STRING_ORAM_MATRIX_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

fn out_path() -> String {
    std::env::var("STRING_ORAM_BENCH_JSON").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_protocol_matrix.json"
        )
        .to_string()
    })
}

fn cfg_for(protocol: ProtocolKind, backend: BackendKind) -> SystemConfig {
    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.protocol = protocol;
    cfg.backend = backend;
    // One core: the access sequence is then a pure function of the trace,
    // so the digest must agree across backends (multi-core interleaving
    // legitimately depends on per-core stall times).
    cfg.cores = 1;
    // Measurement configuration: no conformance tracing on the hot path.
    cfg.verify = VerifyConfig::off();
    cfg
}

struct Point {
    protocol: ProtocolKind,
    backend_name: &'static str,
    report: SimReport,
    digest: u64,
    wall_s: f64,
}

fn measure(protocol: ProtocolKind, backend: BackendKind, name: &'static str) -> Point {
    let cfg = cfg_for(protocol, backend);
    let traces = traces_for(&cfg, WORKLOAD, records_per_core(), TRACE_SEED);
    let mut sim = Simulation::new(cfg, traces);
    sim.set_label(format!("matrix/{protocol}/{name}"));
    let t = Instant::now();
    let report = sim.run(u64::MAX).expect("matrix run completes");
    Point {
        protocol,
        backend_name: name,
        report,
        digest: sim.access_digest(),
        wall_s: t.elapsed().as_secs_f64(),
    }
}

/// Finite-checked number: a NaN/inf measurement is a harness bug, not a
/// value to serialize ([`Value`]'s `TryFrom<f64>` refuses non-finite).
fn num(n: f64) -> Value {
    Value::try_from(n).expect("bench measurements are finite")
}

fn point_json(p: &Point) -> Value {
    let accesses = p.report.oram_accesses;
    Value::object(vec![
        ("protocol", p.protocol.label().into()),
        ("backend", p.backend_name.into()),
        ("oram_accesses", accesses.into()),
        ("run_wall_ms", num(p.wall_s * 1e3)),
        ("accesses_per_sec", num(accesses as f64 / p.wall_s)),
        (
            "mean_latency_cycles",
            num(p.report.total_cycles as f64 / accesses as f64),
        ),
        ("p99_latency_cycles", p.report.read_latency.p99.into()),
        (
            "digest",
            format!("{:#018X}", p.digest).replacen("0X", "0x", 1).into(),
        ),
    ])
}

fn main() {
    let records = records_per_core();
    println!("# protocol_matrix: {records} records, 1 core, ALL scheme, workload {WORKLOAD}");
    println!(
        "{:>9} {:>16} {:>9} {:>11} {:>11} {:>9} {:>19}",
        "protocol", "backend", "wall ms", "acc/s", "mean cyc", "p99 cyc", "digest"
    );

    let mut points = Vec::new();
    for protocol in ProtocolKind::ALL {
        let mut digests = Vec::new();
        for (backend, name) in [
            (BackendKind::CycleAccurate, "cycle-accurate"),
            (BackendKind::FastFunctional, "fast-functional"),
        ] {
            let p = measure(protocol, backend, name);
            println!(
                "{:>9} {:>16} {:>9.1} {:>11.0} {:>11.1} {:>9} {:>19}",
                p.protocol.label(),
                p.backend_name,
                p.wall_s * 1e3,
                p.report.oram_accesses as f64 / p.wall_s,
                p.report.total_cycles as f64 / p.report.oram_accesses as f64,
                p.report.read_latency.p99,
                format!("{:#018X}", p.digest).replacen("0X", "0x", 1),
            );
            digests.push(p.digest);
            points.push(point_json(&p));
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{protocol}: backends disagree on the access digest"
        );
    }

    let doc = Value::object(vec![
        ("bench", "protocol_matrix".into()),
        ("schema_version", 1usize.into()),
        ("workload", WORKLOAD.into()),
        ("scheme", "All".into()),
        ("records_per_core", records.into()),
        ("cores", 1usize.into()),
        (
            "master_seed",
            cfg_for(ProtocolKind::RingCb, BackendKind::FastFunctional)
                .seed
                .into(),
        ),
        ("points", Value::Array(points)),
    ]);
    validate_protocol_matrix(&doc).expect("emitted document matches the documented schema");
    let path = out_path();
    std::fs::write(&path, format!("{doc}\n")).expect("write matrix");
    println!("\nwrote {path}");
}
