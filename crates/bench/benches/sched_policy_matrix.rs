//! Scheduler-policy arena: every command-scheduling policy in `mem-sched`'s
//! policy lab (FR-FCFS transaction baseline, Proactive Bank, read-over-write,
//! speculative window, fixed cadence) over both memory backends and two
//! workload mixes, recorded to `BENCH_sched_policy.json` at the repo root
//! (schema in `EXPERIMENTS.md`; the committed copy is re-validated by the
//! bench lib's tests and the CI smoke step).
//!
//! One simulated core keeps the access order a pure function of the trace,
//! so *every* policy × backend point of a workload must agree on the access
//! digest — the command scheduler may move PRE/ACT and reorder within a
//! transaction, never change what the ORAM controller requests. The emitted
//! document carries the digests and `validate_sched_policy` enforces the
//! equality, making every regeneration a 10-way differential run.
//!
//! The numbers quantify the paper's §IV argument: the transaction-based
//! baseline leaves banks idle waiting for the next transaction's commands,
//! Proactive Bank fills those slots with early PRE/ACT, and the two
//! generalizations (deferred write drains, deeper speculation windows) trade
//! the same idle slots differently. At full size the run asserts the
//! headline inline: read-over-write or speculative-window beats Proactive
//! Bank on mean cycles for at least one workload mix.
//!
//! `STRING_ORAM_POLICY_ACCESSES` scales the per-core trace (default 1500);
//! `STRING_ORAM_BENCH_JSON` overrides the output path (CI smoke writes to a
//! scratch file instead of the committed matrix).

use std::time::Instant;

use mem_sched::SchedulerPolicy;
use string_oram::{BackendKind, Scheme, SimReport, Simulation, SystemConfig, VerifyConfig};
use string_oram_bench::json::Value;
use string_oram_bench::{traces_for, validate_sched_policy};

const WORKLOADS: [&str; 2] = ["black", "stream"];
const TRACE_SEED: u64 = 11;

/// Every order-preserving policy, baseline first (the insecure
/// unconstrained ablation is deliberately absent: it has no digest to pin).
const POLICIES: [SchedulerPolicy; 5] = [
    SchedulerPolicy::TransactionBased,
    SchedulerPolicy::ProactiveBank { lookahead: 1 },
    SchedulerPolicy::ReadOverWrite { drain_bound: 8 },
    SchedulerPolicy::SpeculativeWindow { window: 4 },
    SchedulerPolicy::FixedCadence { period: 2 },
];

fn records_per_core() -> usize {
    std::env::var("STRING_ORAM_POLICY_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500)
}

fn out_path() -> String {
    std::env::var("STRING_ORAM_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched_policy.json").to_string()
    })
}

fn cfg_for(policy: SchedulerPolicy, backend: BackendKind) -> SystemConfig {
    let mut cfg = SystemConfig::hpca_default(Scheme::All);
    cfg.sched_policy = policy;
    cfg.backend = backend;
    // One core: the access sequence is then a pure function of the trace,
    // so the digest must agree across every policy and backend.
    cfg.cores = 1;
    // Four transactions in flight: with the blocking default (MLP 1) the
    // queue never holds more than the current and the next transaction, so
    // every k-lookahead policy collapses to Proactive Bank and fixed
    // cadence has nothing to pace. MLP 4 is inside the `ablation_mlp`
    // range and gives the lab a real speculation window.
    cfg.core_mlp = 4;
    // Measurement configuration: no conformance tracing on the hot path.
    cfg.verify = VerifyConfig::off();
    cfg
}

struct Point {
    policy: SchedulerPolicy,
    backend_name: &'static str,
    workload: &'static str,
    report: SimReport,
    digest: u64,
    wall_s: f64,
}

impl Point {
    fn mean_cycles(&self) -> f64 {
        self.report.total_cycles as f64 / self.report.oram_accesses as f64
    }
}

fn measure(
    policy: SchedulerPolicy,
    backend: BackendKind,
    name: &'static str,
    workload: &'static str,
) -> Point {
    let cfg = cfg_for(policy, backend);
    let traces = traces_for(&cfg, workload, records_per_core(), TRACE_SEED);
    let mut sim = Simulation::new(cfg, traces);
    sim.set_label(format!("sched/{}/{name}/{workload}", policy.name()));
    let t = Instant::now();
    let report = sim.run(u64::MAX).expect("policy run completes");
    Point {
        policy,
        backend_name: name,
        workload,
        report,
        digest: sim.access_digest(),
        wall_s: t.elapsed().as_secs_f64(),
    }
}

/// Finite-checked number: a NaN/inf measurement is a harness bug, not a
/// value to serialize ([`Value`]'s `TryFrom<f64>` refuses non-finite).
fn num(n: f64) -> Value {
    Value::try_from(n).expect("bench measurements are finite")
}

fn hex(digest: u64) -> String {
    format!("{digest:#018X}").replacen("0X", "0x", 1)
}

fn point_json(p: &Point) -> Value {
    Value::object(vec![
        ("policy", p.policy.name().into()),
        ("backend", p.backend_name.into()),
        ("workload", p.workload.into()),
        ("oram_accesses", p.report.oram_accesses.into()),
        ("run_wall_ms", num(p.wall_s * 1e3)),
        ("mean_cycles_per_access", num(p.mean_cycles())),
        ("bank_idle_proportion", num(p.report.bank_idle_proportion)),
        (
            "pending_bank_idle_proportion",
            num(p.report.pending_bank_idle_proportion),
        ),
        (
            "early_precharge_fraction",
            num(p.report.early_precharge_fraction),
        ),
        (
            "early_activate_fraction",
            num(p.report.early_activate_fraction),
        ),
        ("deferred_writes", p.report.deferred_writes.into()),
        ("withheld_issue_slots", p.report.withheld_issue_slots.into()),
        ("digest", hex(p.digest).into()),
    ])
}

fn main() {
    let records = records_per_core();
    println!("# sched_policy: {records} records, 1 core, ALL scheme, workloads {WORKLOADS:?}");
    println!(
        "{:>8} {:>18} {:>16} {:>9} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "workload",
        "policy",
        "backend",
        "wall ms",
        "mean cyc",
        "idle %",
        "pidle %",
        "ePRE %",
        "eACT %",
        "defer wr",
        "withheld"
    );

    let mut points = Vec::new();
    // (workload, policy name, cycle-accurate mean cycles) for the headline.
    let mut ca_means: Vec<(&str, &str, f64)> = Vec::new();
    for workload in WORKLOADS {
        let mut digests = Vec::new();
        for policy in POLICIES {
            for (backend, name) in [
                (BackendKind::CycleAccurate, "cycle-accurate"),
                (BackendKind::FastFunctional, "fast-functional"),
            ] {
                let p = measure(policy, backend, name, workload);
                println!(
                    "{:>8} {:>18} {:>16} {:>9.1} {:>10.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9} {:>9}",
                    p.workload,
                    p.policy.name(),
                    p.backend_name,
                    p.wall_s * 1e3,
                    p.mean_cycles(),
                    p.report.bank_idle_proportion * 100.0,
                    p.report.pending_bank_idle_proportion * 100.0,
                    p.report.early_precharge_fraction * 100.0,
                    p.report.early_activate_fraction * 100.0,
                    p.report.deferred_writes,
                    p.report.withheld_issue_slots,
                );
                if matches!(backend, BackendKind::CycleAccurate) {
                    ca_means.push((workload, policy.name(), p.mean_cycles()));
                }
                digests.push(p.digest);
                points.push(point_json(&p));
            }
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{workload}: policies/backends disagree on the access digest"
        );
    }

    // The headline the policy lab exists to measure: on at least one
    // workload mix, one of the generalized policies beats Proactive Bank on
    // mean cycles. Only asserted at representative trace sizes — short
    // smoke runs are warm-up-dominated and legitimately noisy.
    if records >= 1000 {
        let mean_of = |workload: &str, policy: &str| -> f64 {
            ca_means
                .iter()
                .find(|(w, p, _)| *w == workload && *p == policy)
                .map(|(_, _, m)| *m)
                .expect("cycle-accurate point present")
        };
        let challenger_wins = WORKLOADS.iter().any(|w| {
            let pb = mean_of(w, "proactive-bank");
            mean_of(w, "read-over-write") < pb || mean_of(w, "speculative-window") < pb
        });
        assert!(
            challenger_wins,
            "neither read-over-write nor speculative-window beat proactive-bank \
             on any workload mix: {ca_means:?}"
        );
    }

    let doc = Value::object(vec![
        ("bench", "sched_policy".into()),
        ("schema_version", 1usize.into()),
        ("scheme", "All".into()),
        ("records_per_core", records.into()),
        ("cores", 1usize.into()),
        (
            "master_seed",
            cfg_for(
                SchedulerPolicy::TransactionBased,
                BackendKind::FastFunctional,
            )
            .seed
            .into(),
        ),
        ("points", Value::Array(points)),
    ]);
    validate_sched_policy(&doc).expect("emitted document matches the documented schema");
    let path = out_path();
    std::fs::write(&path, format!("{doc}\n")).expect("write sched policy matrix");
    println!("\nwrote {path}");
}
