//! Service load matrix: the `oram-service` front-end under an overload
//! storm, over every submission mode × memory backend pair, recorded to
//! `BENCH_service_load.json` at the repo root (schema in `EXPERIMENTS.md`;
//! the committed copy is re-validated by the bench lib's tests and the CI
//! smoke step).
//!
//! The storm is the same ≥4× one the robustness suite uses: two heavy
//! tenants plus a diurnal one, arrival rates far above the submission
//! rate, deadlines short enough that deep queues expire. Each cell reports
//! per-tenant outcomes (p50/p99/p999, shed and timeout rates), the
//! governor's transition counts, and the padding cost of the fixed-rate
//! cadence versus best-effort.
//!
//! Exit gates: every run must audit clean (zero violations) and resolve
//! every arrival exactly once; the fixed-rate schedule digest must agree
//! across backends (the envelope is a pure function of the clock — memory
//! timing may change *what completes when*, never *when the service
//! submits*). Both gates are also baked into `validate_service_load`, so
//! the committed artifact re-proves them on every test run.
//!
//! `STRING_ORAM_SERVICE_HORIZON` scales the arrival window (default
//! 12000 cycles); `STRING_ORAM_BENCH_JSON` overrides the output path (CI
//! smoke writes to a scratch file instead of the committed artifact).

use std::time::{Duration, Instant};

use oram_service::{OramService, ServiceConfig, SubmissionPolicy, TenantSpec};
use string_oram::{BackendKind, ServiceSummary};
use string_oram_bench::json::Value;
use string_oram_bench::validate_service_load;
use trace_synth::ArrivalSpec;

fn horizon() -> u64 {
    std::env::var("STRING_ORAM_SERVICE_HORIZON")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000)
}

fn out_path() -> String {
    std::env::var("STRING_ORAM_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service_load.json").to_string()
    })
}

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("alpha", ArrivalSpec::steady(24.0)),
        TenantSpec::new("beta", ArrivalSpec::bursty(12.0, 4.0)),
        TenantSpec::new("gamma", ArrivalSpec::diurnal(8.0, 4_000, 0.8)),
    ]
}

fn cfg_for(policy: SubmissionPolicy, backend: BackendKind) -> ServiceConfig {
    let mut cfg = ServiceConfig::test_small(tenants(), horizon());
    cfg.system.backend = backend;
    cfg.policy = policy;
    cfg.deadline_cycles = 3_000;
    cfg.retry_budget = 1;
    // Watermarks under which the storm climbs the whole ladder (see
    // tests/service_robustness.rs for why the defaults cap fill below
    // shed_enter on slow ramps).
    cfg.governor.degrade_enter = 0.5;
    cfg.governor.degrade_exit = 0.25;
    cfg.governor.shed_enter = 0.8;
    cfg.governor.shed_exit = 0.4;
    cfg.governor.degraded_quota = 0.9;
    cfg
}

struct Cell {
    mode: &'static str,
    backend: &'static str,
    summary: ServiceSummary,
    wall: Duration,
}

fn measure(policy: SubmissionPolicy, backend: BackendKind, backend_name: &'static str) -> Cell {
    let cfg = cfg_for(policy, backend);
    let mode = cfg.policy.label();
    let mut service = OramService::new(cfg).expect("valid config");
    let start = Instant::now();
    let report = service.run().expect("service terminates");
    let wall = start.elapsed();
    if !report.violations.is_empty() {
        println!(
            "FAIL: {mode}/{backend_name} violations: {:?}",
            report.violations
        );
        std::process::exit(1);
    }
    let summary = report.service.expect("service summary attached");
    for t in &summary.tenants {
        if t.resolved() != t.arrivals {
            println!(
                "FAIL: {mode}/{backend_name} tenant {} resolved {} of {} arrivals",
                t.tenant,
                t.resolved(),
                t.arrivals
            );
            std::process::exit(1);
        }
    }
    Cell {
        mode,
        backend: backend_name,
        summary,
        wall,
    }
}

/// Finite-checked number: a NaN/inf measurement is a harness bug, not a
/// value to serialize ([`Value`]'s `TryFrom<f64>` refuses non-finite).
fn num(n: f64) -> Value {
    Value::try_from(n).expect("bench measurements are finite")
}

fn cell_json(cell: &Cell) -> Value {
    let s = &cell.summary;
    let arrivals: u64 = s.tenants.iter().map(|t| t.arrivals).sum();
    let rejected: u64 = s
        .tenants
        .iter()
        .map(string_oram::TenantSummary::rejected)
        .sum();
    let timed_out: u64 = s.tenants.iter().map(|t| t.timed_out).sum();
    let rate = |n: u64| {
        if arrivals == 0 {
            0.0
        } else {
            n as f64 / arrivals as f64
        }
    };
    Value::object(vec![
        ("mode", cell.mode.into()),
        ("backend", cell.backend.into()),
        ("policy", s.policy.as_str().into()),
        ("ticks", s.ticks.into()),
        ("real_accesses", s.real_accesses.into()),
        ("padding_accesses", s.padding_accesses.into()),
        ("padding_overhead", num(s.padding_overhead())),
        ("shed_rate", num(rate(rejected))),
        ("timeout_rate", num(rate(timed_out))),
        ("run_wall_ms", num(cell.wall.as_secs_f64() * 1e3)),
        (
            "governor_degraded_entries",
            s.governor.degraded_entries.into(),
        ),
        ("governor_shed_entries", s.governor.shed_entries.into()),
        ("governor_recoveries", s.governor.recoveries.into()),
        (
            "schedule_digest",
            format!("{:#018X}", s.schedule_digest)
                .replacen("0X", "0x", 1)
                .into(),
        ),
        (
            "tenants",
            Value::Array(
                s.tenants
                    .iter()
                    .map(|t| {
                        Value::object(vec![
                            ("tenant", t.tenant.as_str().into()),
                            ("arrivals", t.arrivals.into()),
                            ("completed", t.completed.into()),
                            ("timed_out", t.timed_out.into()),
                            ("rejected", t.rejected().into()),
                            ("p50", t.latency.p50.into()),
                            ("p99", t.latency.p99.into()),
                            ("p999", t.latency.p999.into()),
                            ("queue_high_water", t.queue_depth_high_water.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let horizon = horizon();
    println!("# service_load: 3-tenant overload storm, horizon {horizon} cycles");
    println!(
        "{:<12} {:<16} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8} {:>10}",
        "mode", "backend", "ticks", "real", "pad", "shed%", "t/o%", "wall ms", "digest"
    );

    let mut cells = Vec::new();
    for (backend, backend_name) in [
        (BackendKind::CycleAccurate, "cycle-accurate"),
        (BackendKind::FastFunctional, "fast-functional"),
    ] {
        for policy in [
            SubmissionPolicy::BestEffort { batch: 4 },
            SubmissionPolicy::FixedRate {
                interval: 256,
                batch: 1,
            },
        ] {
            let cell = measure(policy, backend, backend_name);
            let s = &cell.summary;
            let arrivals: u64 = s.tenants.iter().map(|t| t.arrivals).sum();
            let rejected: u64 = s
                .tenants
                .iter()
                .map(string_oram::TenantSummary::rejected)
                .sum();
            let timed_out: u64 = s.tenants.iter().map(|t| t.timed_out).sum();
            println!(
                "{:<12} {:<16} {:>8} {:>7} {:>7} {:>6.1}% {:>7.1}% {:>8.2} {:#018x}",
                cell.mode,
                cell.backend,
                s.ticks,
                s.real_accesses,
                s.padding_accesses,
                100.0 * rejected as f64 / arrivals as f64,
                100.0 * timed_out as f64 / arrivals as f64,
                cell.wall.as_secs_f64() * 1e3,
                s.schedule_digest,
            );
            cells.push(cell);
        }
    }

    // Cross-backend timing-channel gate: identical fixed-rate envelopes.
    let fixed: Vec<&Cell> = cells.iter().filter(|c| c.mode == "fixed-rate").collect();
    if fixed
        .windows(2)
        .any(|w| w[0].summary.schedule_digest != w[1].summary.schedule_digest)
    {
        println!("FAIL: fixed-rate schedule digests disagree across backends");
        std::process::exit(1);
    }
    println!("PASS: fixed-rate envelope identical across backends, all runs audit clean");

    let doc = Value::object(vec![
        ("bench", "service_load".into()),
        ("schema_version", 1usize.into()),
        (
            "master_seed",
            cfg_for(
                SubmissionPolicy::BestEffort { batch: 4 },
                BackendKind::CycleAccurate,
            )
            .system
            .seed
            .into(),
        ),
        ("horizon", horizon.into()),
        ("tenants", tenants().len().into()),
        (
            "points",
            Value::Array(cells.iter().map(cell_json).collect()),
        ),
    ]);
    validate_service_load(&doc).expect("emitted document matches the documented schema");
    let path = out_path();
    std::fs::write(&path, format!("{doc}\n")).expect("write service load");
    println!("wrote {path}");
}
