//! Shard-scaling trajectory: throughput of the sharded parallel engine at
//! `N ∈ {1, 2, 4, 8}` shards over both memory backends, recorded to
//! `BENCH_shard_scaling.json` at the repo root (schema in
//! `EXPERIMENTS.md`; the committed copy is re-validated by the bench
//! lib's tests and the CI smoke step).
//!
//! Two timings are recorded per point, because CI containers are often
//! core-starved and a thread-per-shard run cannot speed up on one core:
//!
//! * **measured** — wall-clock of the real threaded [`ShardedSimulation`]
//!   run on this host (honest, host-dependent);
//! * **projected** — each shard re-run *in isolation* and timed
//!   individually; the projected parallel makespan is the slowest shard's
//!   isolated wall (what the threaded run approaches given `N` free
//!   cores). `host_parallelism` records how many cores this host actually
//!   had, so readers can tell which number is meaningful.
//!
//! The serial re-run doubles as a determinism check: its merged digest
//! must equal the threaded run's, or the merge is interleaving-sensitive.
//!
//! `STRING_ORAM_SHARD_ACCESSES` scales the per-core trace (default 2000);
//! `STRING_ORAM_BENCH_JSON` overrides the output path (CI smoke writes to
//! a scratch file instead of the committed trajectory).

use std::time::{Duration, Instant};

use string_oram::{BackendKind, Scheme, ShardedSimulation, SimReport, SystemConfig, VerifyConfig};
use string_oram_bench::json::Value;
use string_oram_bench::{traces_for, validate_shard_scaling};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKLOAD: &str = "black";
const TRACE_SEED: u64 = 11;

fn records_per_core() -> usize {
    std::env::var("STRING_ORAM_SHARD_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

fn out_path() -> String {
    std::env::var("STRING_ORAM_BENCH_JSON").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_shard_scaling.json"
        )
        .to_string()
    })
}

fn cfg_for(backend: BackendKind, shards: usize) -> SystemConfig {
    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.backend = backend;
    cfg.shards = shards;
    // Measurement configuration: no conformance tracing on the hot path.
    cfg.verify = VerifyConfig::off();
    cfg
}

fn build(backend: BackendKind, shards: usize, records: usize) -> ShardedSimulation {
    let cfg = cfg_for(backend, shards);
    let traces = traces_for(&cfg, WORKLOAD, records, TRACE_SEED);
    ShardedSimulation::new(cfg, traces)
}

struct Point {
    shards: usize,
    report: SimReport,
    digest: u64,
    measured: Duration,
    shard_walls: Vec<Duration>,
}

fn measure(backend: BackendKind, shards: usize, records: usize) -> Point {
    // The real threaded run.
    let mut threaded = build(backend, shards, records);
    let start = Instant::now();
    let report = threaded.run(u64::MAX).expect("threaded run completes");
    let measured = start.elapsed();

    // Each shard in isolation, for the projected parallel makespan.
    let mut serial = build(backend, shards, records);
    let shard_walls: Vec<Duration> = serial
        .shards_mut()
        .iter_mut()
        .map(|shard| {
            let t = Instant::now();
            shard.run(u64::MAX).expect("isolated shard completes");
            t.elapsed()
        })
        .collect();
    assert_eq!(
        serial.merged_digest(),
        threaded.merged_digest(),
        "serial and threaded runs must merge to the same digest"
    );

    Point {
        shards,
        report,
        digest: threaded.merged_digest(),
        measured,
        shard_walls,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn point_json(p: &Point, records: usize, cores: usize) -> Value {
    let accesses = (records * cores) as f64;
    let projected = p.shard_walls.iter().max().copied().unwrap_or_default();
    Value::object(vec![
        ("shards", p.shards.into()),
        ("oram_accesses", p.report.oram_accesses.into()),
        (
            "merged_digest",
            format!("{:#018X}", p.digest).replacen("0X", "0x", 1).into(),
        ),
        ("total_cycles", p.report.total_cycles.into()),
        ("makespan_cycles", p.report.makespan_cycles.into()),
        ("measured_wall_ms", ms(p.measured).into()),
        (
            "measured_accesses_per_sec",
            (accesses / p.measured.as_secs_f64()).into(),
        ),
        (
            "shard_wall_ms",
            Value::Array(p.shard_walls.iter().map(|w| ms(*w).into()).collect()),
        ),
        ("projected_parallel_ms", ms(projected).into()),
        (
            "projected_accesses_per_sec",
            (accesses / projected.as_secs_f64()).into(),
        ),
    ])
}

fn main() {
    let records = records_per_core();
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let cores = cfg_for(BackendKind::FastFunctional, 1).cores;
    println!("# shard_scaling: {records} records/core x {cores} cores, ALL scheme, host_parallelism={host}");

    let mut backends = Vec::new();
    let mut functional_projected: Vec<(usize, f64)> = Vec::new();
    for (backend, name) in [
        (BackendKind::CycleAccurate, "cycle-accurate"),
        (BackendKind::FastFunctional, "fast-functional"),
    ] {
        println!("\n{name}");
        println!(
            "{:>7} {:>14} {:>14} {:>15} {:>15}",
            "shards", "measured ms", "projected ms", "meas acc/s", "proj acc/s"
        );
        let mut points = Vec::new();
        for shards in SHARD_COUNTS {
            let p = measure(backend, shards, records);
            let projected = p.shard_walls.iter().max().copied().unwrap_or_default();
            let accesses = p.report.oram_accesses as f64;
            let proj_rate = accesses / projected.as_secs_f64();
            println!(
                "{:>7} {:>14.3} {:>14.3} {:>15.0} {:>15.0}",
                shards,
                ms(p.measured),
                ms(projected),
                accesses / p.measured.as_secs_f64(),
                proj_rate,
            );
            if backend == BackendKind::FastFunctional {
                functional_projected.push((shards, proj_rate));
            }
            points.push(point_json(&p, records, cores));
        }
        backends.push(Value::object(vec![
            ("backend", name.into()),
            ("points", Value::Array(points)),
        ]));
    }

    let doc = Value::object(vec![
        ("bench", "shard_scaling".into()),
        ("schema_version", 1usize.into()),
        ("host_parallelism", host.into()),
        ("workload", WORKLOAD.into()),
        ("scheme", "All".into()),
        ("records_per_core", records.into()),
        ("cores", cores.into()),
        (
            "master_seed",
            cfg_for(BackendKind::FastFunctional, 1).seed.into(),
        ),
        ("backends", Value::Array(backends)),
    ]);
    validate_shard_scaling(&doc).expect("emitted document matches the documented schema");
    let path = out_path();
    std::fs::write(&path, format!("{doc}\n")).expect("write trajectory");
    println!("\nwrote {path}");

    // Scaling acceptance: with 4 shards the functional engine's projected
    // throughput (the slowest shard's isolated wall) must be at least 2x
    // the 1-shard run. Projected, not measured: a one-core CI container
    // cannot show threaded speedup, and fabricating one would be worse.
    let rate = |n: usize| {
        functional_projected
            .iter()
            .find(|(s, _)| *s == n)
            .map(|(_, r)| *r)
            .expect("rate recorded")
    };
    let speedup = rate(4) / rate(1);
    println!("functional projected speedup at 4 shards: {speedup:.2}x (bound: >= 2.00x)");
    if speedup >= 2.0 {
        println!("PASS: 4-shard projected throughput >= 2x single-shard");
    } else {
        println!("FAIL: projected speedup only {speedup:.2}x");
        std::process::exit(1);
    }
}
