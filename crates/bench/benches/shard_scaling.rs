//! Shard-scaling trajectory: throughput of the sharded parallel engine at
//! `N ∈ {1, 2, 4, 8}` shards over both memory backends, recorded to
//! `BENCH_shard_scaling.json` at the repo root (schema in
//! `EXPERIMENTS.md`; the committed copy is re-validated by the bench
//! lib's tests and the CI smoke step).
//!
//! Setup and run are timed **separately**: construction (position maps,
//! backend state, per-shard trace partitioning — parallelized across
//! worker threads in `ShardedSimulation`) is a one-time cost that must not
//! pollute the steady-state throughput numbers, and conversely a fast
//! steady state must not hide a setup phase that scales badly with `N`.
//!
//! Two run timings are recorded per point, because CI containers are often
//! core-starved and a thread-per-shard run cannot speed up on one core:
//!
//! * **measured** — wall-clock of the real threaded [`ShardedSimulation`]
//!   run on this host (honest, host-dependent);
//! * **projected** — each shard re-run *in isolation* and timed
//!   individually; the projected parallel makespan is the slowest shard's
//!   isolated wall (what the threaded run approaches given `N` free
//!   cores). `host_parallelism` records how many cores this host actually
//!   had, so readers can tell which number is meaningful.
//!
//! The serial re-run doubles as a determinism check: its merged digest
//! must equal the threaded run's, or the merge is interleaving-sensitive.
//!
//! `STRING_ORAM_SHARD_ACCESSES` scales the per-core trace (default 25000,
//! i.e. 50k accesses over the two simulated cores);
//! `STRING_ORAM_BENCH_JSON` overrides the output path (CI smoke writes to
//! a scratch file instead of the committed trajectory).
//!
//! Exit gates: the functional 4-shard point must show a projected
//! throughput >= 2x the 1-shard run, and — at full trace sizes (>=
//! [`MEASURED_GATE_MIN_RECORDS`] records/core, where thread and setup
//! overheads are amortized) — a *measured* run-phase speedup >= 2.5x.
//! The CI `perf-smoke` job runs this bench at the default size and relies
//! on these gates.

use std::time::{Duration, Instant};

use string_oram::{BackendKind, Scheme, ShardedSimulation, SimReport, SystemConfig, VerifyConfig};
use string_oram_bench::json::Value;
use string_oram_bench::{traces_for, validate_shard_scaling};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKLOAD: &str = "black";
const TRACE_SEED: u64 = 11;

/// Smallest per-core trace at which the measured-speedup gate applies:
/// below this, sub-second runs are dominated by thread spawn and cache
/// warm-up and the measured numbers are noise, not signal.
const MEASURED_GATE_MIN_RECORDS: usize = 10_000;

fn records_per_core() -> usize {
    std::env::var("STRING_ORAM_SHARD_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25_000)
}

fn out_path() -> String {
    std::env::var("STRING_ORAM_BENCH_JSON").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_shard_scaling.json"
        )
        .to_string()
    })
}

fn cfg_for(backend: BackendKind, shards: usize) -> SystemConfig {
    let mut cfg = SystemConfig::test_small(Scheme::All);
    cfg.backend = backend;
    cfg.shards = shards;
    // Measurement configuration: no conformance tracing on the hot path.
    cfg.verify = VerifyConfig::off();
    cfg
}

fn build(backend: BackendKind, shards: usize, records: usize) -> ShardedSimulation {
    let cfg = cfg_for(backend, shards);
    let traces = traces_for(&cfg, WORKLOAD, records, TRACE_SEED);
    ShardedSimulation::new(cfg, traces)
}

struct Point {
    shards: usize,
    report: SimReport,
    digest: u64,
    /// Wall-clock of constructing the threaded engine (trace generation
    /// excluded; shard construction itself is parallel for `N > 1`).
    setup: Duration,
    /// Wall-clock of the threaded run, setup excluded.
    run: Duration,
    shard_walls: Vec<Duration>,
}

fn measure(backend: BackendKind, shards: usize, records: usize) -> Point {
    // Trace synthesis is workload input, not engine cost: keep it outside
    // the setup timer.
    let cfg = cfg_for(backend, shards);
    let traces = traces_for(&cfg, WORKLOAD, records, TRACE_SEED);

    // Setup phase: parallel shard construction.
    let t = Instant::now();
    let mut threaded = ShardedSimulation::new(cfg, traces);
    let setup = t.elapsed();

    // Run phase: the real threaded run.
    let start = Instant::now();
    let report = threaded.run(u64::MAX).expect("threaded run completes");
    let run = start.elapsed();

    // Each shard in isolation, for the projected parallel makespan.
    let mut serial = build(backend, shards, records);
    let shard_walls: Vec<Duration> = serial
        .shards_mut()
        .iter_mut()
        .map(|shard| {
            let t = Instant::now();
            shard.run(u64::MAX).expect("isolated shard completes");
            t.elapsed()
        })
        .collect();
    assert_eq!(
        serial.merged_digest(),
        threaded.merged_digest(),
        "serial and threaded runs must merge to the same digest"
    );

    Point {
        shards,
        report,
        digest: threaded.merged_digest(),
        setup,
        run,
        shard_walls,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Finite-checked number: a NaN/inf measurement is a harness bug, not a
/// value to serialize ([`Value`]'s `TryFrom<f64>` refuses non-finite).
fn num(n: f64) -> Value {
    Value::try_from(n).expect("bench measurements are finite")
}

fn point_json(p: &Point, records: usize, cores: usize, baseline_run: Duration) -> Value {
    let accesses = (records * cores) as f64;
    let projected = p.shard_walls.iter().max().copied().unwrap_or_default();
    Value::object(vec![
        ("shards", p.shards.into()),
        ("oram_accesses", p.report.oram_accesses.into()),
        (
            "merged_digest",
            format!("{:#018X}", p.digest).replacen("0X", "0x", 1).into(),
        ),
        ("total_cycles", p.report.total_cycles.into()),
        ("makespan_cycles", p.report.makespan_cycles.into()),
        ("setup_wall_ms", num(ms(p.setup))),
        ("run_wall_ms", num(ms(p.run))),
        // Historical alias of run_wall_ms (setup was never inside this
        // timer); kept so older consumers of the trajectory still parse.
        ("measured_wall_ms", num(ms(p.run))),
        (
            "measured_speedup_vs_n1",
            num(baseline_run.as_secs_f64() / p.run.as_secs_f64()),
        ),
        (
            "measured_accesses_per_sec",
            num(accesses / p.run.as_secs_f64()),
        ),
        (
            "shard_wall_ms",
            Value::Array(p.shard_walls.iter().map(|w| num(ms(*w))).collect()),
        ),
        ("projected_parallel_ms", num(ms(projected))),
        (
            "projected_accesses_per_sec",
            num(accesses / projected.as_secs_f64()),
        ),
    ])
}

fn main() {
    let records = records_per_core();
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let cores = cfg_for(BackendKind::FastFunctional, 1).cores;
    println!("# shard_scaling: {records} records/core x {cores} cores, ALL scheme, host_parallelism={host}");

    let mut backends = Vec::new();
    let mut functional_projected: Vec<(usize, f64)> = Vec::new();
    let mut functional_measured: Vec<(usize, f64)> = Vec::new();
    for (backend, name) in [
        (BackendKind::CycleAccurate, "cycle-accurate"),
        (BackendKind::FastFunctional, "fast-functional"),
    ] {
        println!("\n{name}");
        println!(
            "{:>7} {:>11} {:>11} {:>13} {:>9} {:>13} {:>13}",
            "shards", "setup ms", "run ms", "projected ms", "speedup", "meas acc/s", "proj acc/s"
        );
        let points: Vec<Point> = SHARD_COUNTS
            .iter()
            .map(|&shards| measure(backend, shards, records))
            .collect();
        let baseline_run = points[0].run;
        let mut json_points = Vec::new();
        for p in &points {
            let projected = p.shard_walls.iter().max().copied().unwrap_or_default();
            let accesses = p.report.oram_accesses as f64;
            let proj_rate = accesses / projected.as_secs_f64();
            let speedup = baseline_run.as_secs_f64() / p.run.as_secs_f64();
            println!(
                "{:>7} {:>11.3} {:>11.3} {:>13.3} {:>8.2}x {:>13.0} {:>13.0}",
                p.shards,
                ms(p.setup),
                ms(p.run),
                ms(projected),
                speedup,
                accesses / p.run.as_secs_f64(),
                proj_rate,
            );
            if backend == BackendKind::FastFunctional {
                functional_projected.push((p.shards, proj_rate));
                functional_measured.push((p.shards, speedup));
            }
            json_points.push(point_json(p, records, cores, baseline_run));
        }
        backends.push(Value::object(vec![
            ("backend", name.into()),
            ("points", Value::Array(json_points)),
        ]));
    }

    let doc = Value::object(vec![
        ("bench", "shard_scaling".into()),
        ("schema_version", 2usize.into()),
        ("host_parallelism", host.into()),
        ("workload", WORKLOAD.into()),
        ("scheme", "All".into()),
        ("records_per_core", records.into()),
        ("cores", cores.into()),
        (
            "master_seed",
            cfg_for(BackendKind::FastFunctional, 1).seed.into(),
        ),
        ("backends", Value::Array(backends)),
    ]);
    validate_shard_scaling(&doc).expect("emitted document matches the documented schema");
    let path = out_path();
    std::fs::write(&path, format!("{doc}\n")).expect("write trajectory");
    println!("\nwrote {path}");

    // Scaling acceptance, projected: with 4 shards the functional engine's
    // projected throughput (the slowest shard's isolated wall) must be at
    // least 2x the 1-shard run — this holds even on a one-core container.
    let rate = |n: usize| {
        functional_projected
            .iter()
            .find(|(s, _)| *s == n)
            .map(|(_, r)| *r)
            .expect("rate recorded")
    };
    let speedup = rate(4) / rate(1);
    println!("functional projected speedup at 4 shards: {speedup:.2}x (bound: >= 2.00x)");
    if speedup < 2.0 {
        println!("FAIL: projected speedup only {speedup:.2}x");
        std::process::exit(1);
    }
    println!("PASS: 4-shard projected throughput >= 2x single-shard");

    // Scaling acceptance, measured: at full trace sizes the *measured*
    // run-phase wall at 4 shards must beat the 1-shard run by 2.5x. This
    // holds even core-starved, because sharding shrinks per-shard trees
    // (shallower paths, smaller position maps) — the work itself drops.
    let measured = functional_measured
        .iter()
        .find(|(s, _)| *s == 4)
        .map(|(_, r)| *r)
        .expect("measured speedup recorded");
    if records >= MEASURED_GATE_MIN_RECORDS {
        println!("functional measured speedup at 4 shards: {measured:.2}x (bound: >= 2.50x)");
        if measured < 2.5 {
            println!("FAIL: measured run-phase speedup only {measured:.2}x");
            std::process::exit(1);
        }
        println!("PASS: 4-shard measured run-phase wall >= 2.5x faster than single-shard");
    } else {
        println!(
            "note: measured speedup {measured:.2}x at {records} records/core — gate skipped \
             below {MEASURED_GATE_MIN_RECORDS} records/core (overhead-dominated)"
        );
    }
}
