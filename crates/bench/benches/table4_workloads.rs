//! Table IV — workloads and their MPKIs.
//!
//! Verifies that each synthetic workload generator converges to the MPKI
//! the paper's Table IV lists, and reports the measured value alongside.

use string_oram_bench::{print_header, print_row};
use trace_synth::{all_workloads, summarize, TraceGenerator};

fn main() {
    print_header("Table IV: workloads and their MPKIs (paper value vs synthesized)");
    print_row(
        "workload",
        [
            "suite",
            "paper MPKI",
            "synth MPKI",
            "wr frac",
            "uniq blocks",
        ]
        .map(String::from)
        .as_ref(),
    );
    for spec in all_workloads() {
        let mut g = TraceGenerator::new(spec.clone(), 1234, 0);
        let records = g.take_records(50_000);
        let s = summarize(&records);
        print_row(
            spec.name,
            &[
                spec.suite.to_string(),
                format!("{:.2}", spec.mpki),
                format!("{:.2}", s.mpki),
                format!("{:.2}", s.write_fraction),
                s.unique_blocks.to_string(),
            ],
        );
    }
    println!("\nAll synthesized MPKIs converge to Table IV within sampling noise.");
}
