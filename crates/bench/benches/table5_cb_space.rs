//! Table V — CB configurations and corresponding space saving
//! (Z = 8, S = 12, L = 23).

use string_oram::table5_rows;
use string_oram_bench::{print_header, print_row};

fn main() {
    print_header("Table V: CB configurations and space saving (Z=8, S=12, L=23)");
    print_row(
        "config",
        ["Y (CB rate)", "total GiB", "dummy %", "saved vs base"]
            .map(String::from)
            .as_ref(),
    );
    let rows = table5_rows();
    let base = rows[0].total_bytes() as f64;
    for row in &rows {
        print_row(
            &row.label,
            &[
                format!("Y={}", row.y),
                format!("{:.1}", row.total_gib()),
                format!("{:.1}%", row.dummy_percentage() * 100.0),
                format!("{:.1}%", (1.0 - row.total_bytes() as f64 / base) * 100.0),
            ],
        );
    }
    println!(
        "\nPaper reference: totals 20/18/16/14/12 GB; dummy percentage \
         60/55.6/50/42.9/33.3% — Y=8 reclaims 40% of the allocation."
    );
}
