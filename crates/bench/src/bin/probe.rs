//! Quick timing probe: how fast does a full-scale (paper-default) run go?

use std::time::Instant;
use string_oram::Scheme;
use string_oram_bench::run_scheme;

fn main() {
    for scheme in [Scheme::Baseline, Scheme::All] {
        let t0 = Instant::now();
        let r = run_scheme(scheme, "black", 200);
        let dt = t0.elapsed();
        println!(
            "{scheme}: {} accesses, {} cycles, {} reqs, wall {:.2}s ({:.0} cycles/s)",
            r.oram_accesses,
            r.total_cycles,
            r.requests_completed,
            dt.as_secs_f64(),
            r.total_cycles as f64 / dt.as_secs_f64()
        );
        println!(
            "  read-conflict {:.1}% evict-conflict {:.1}% idle {:.1}% earlyPRE {:.1}% greens/read {:.2}",
            r.row_class(ring_oram::OpKind::ReadPath).conflict_rate() * 100.0,
            r.row_class(ring_oram::OpKind::Eviction).conflict_rate() * 100.0,
            r.pending_bank_idle_proportion * 100.0,
            r.early_precharge_fraction * 100.0,
            r.protocol.greens_per_read()
        );
    }
}
