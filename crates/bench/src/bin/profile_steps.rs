//! Coarse wall-time attribution of the simulation loop, via feature-free
//! manual instrumentation: run components in isolation.

use std::time::Instant;

fn main() {
    // 1. DRAM tick alone.
    let geometry = dram_sim::geometry::DramGeometry::hpca_default();
    let timing = dram_sim::timing::TimingParams::ddr3_1600();
    let mut dram = dram_sim::DramModule::new(geometry, timing);
    let t0 = Instant::now();
    for c in 0..2_000_000u64 {
        dram.tick(c);
    }
    println!(
        "dram.tick: {:.0} ns/tick",
        t0.elapsed().as_nanos() as f64 / 2e6
    );

    // 2. Full system step with empty queues (CPU-bound phase).
    let cfg = string_oram::SystemConfig::hpca_default(string_oram::Scheme::Baseline);
    let spec = trace_synth::by_name("black").unwrap();
    let traces = (0..cfg.cores)
        .map(|c| trace_synth::TraceGenerator::new(spec.clone(), 1, c as u32).take_records(400))
        .collect();
    let mut sim = string_oram::Simulation::new(cfg, traces);
    let t0 = Instant::now();
    let mut steps = 0u64;
    while !sim.is_finished() && steps < 3_000_000 {
        sim.step();
        steps += 1;
    }
    println!(
        "sim.step: {:.0} ns/step over {steps} steps",
        t0.elapsed().as_nanos() as f64 / steps as f64
    );
}
