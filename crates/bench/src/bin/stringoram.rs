//! `stringoram` — command-line driver for one-off simulations.
//!
//! ```text
//! stringoram [--workload NAME] [--scheme baseline|cb|pb|all]
//!            [--accesses N] [--y N] [--stash N] [--levels N]
//!            [--seed N] [--layout subtree|naive] [--page open|closed]
//!            [--trace FILE.usimm] [--list-workloads]
//! ```
//!
//! Runs the paper-default system with the given overrides and prints the
//! full report. `--trace` replaces the synthetic workload with a USIMM
//! format trace file (each core replays the same trace).

use std::process::ExitCode;

use mem_sched::PagePolicy;
use ring_oram::OpKind;
use string_oram::{LayoutKind, Scheme, Simulation, SystemConfig};
use trace_synth::{all_workloads, by_name, usimm, TraceGenerator, TraceRecord};

struct Options {
    workload: String,
    scheme: Scheme,
    accesses: usize,
    y: Option<u32>,
    stash: Option<usize>,
    levels: Option<u32>,
    seed: u64,
    layout: LayoutKind,
    page: PagePolicy,
    trace: Option<String>,
    load: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            workload: "black".into(),
            scheme: Scheme::All,
            accesses: 400,
            y: None,
            stash: None,
            levels: None,
            seed: 42,
            layout: LayoutKind::Subtree,
            page: PagePolicy::Open,
            trace: None,
            load: None,
        }
    }
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--workload" | "-w" => opts.workload = value("--workload")?,
            "--scheme" | "-s" => {
                opts.scheme = match value("--scheme")?.to_lowercase().as_str() {
                    "baseline" => Scheme::Baseline,
                    "cb" => Scheme::Cb,
                    "pb" => Scheme::Pb,
                    "all" => Scheme::All,
                    other => return Err(format!("unknown scheme {other:?}")),
                }
            }
            "--accesses" | "-n" => {
                opts.accesses = value("--accesses")?
                    .parse()
                    .map_err(|e| format!("bad --accesses: {e}"))?;
            }
            "--y" => {
                opts.y = Some(value("--y")?.parse().map_err(|e| format!("bad --y: {e}"))?);
            }
            "--stash" => {
                opts.stash = Some(
                    value("--stash")?
                        .parse()
                        .map_err(|e| format!("bad --stash: {e}"))?,
                );
            }
            "--levels" => {
                opts.levels = Some(
                    value("--levels")?
                        .parse()
                        .map_err(|e| format!("bad --levels: {e}"))?,
                );
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--layout" => {
                opts.layout = match value("--layout")?.to_lowercase().as_str() {
                    "subtree" => LayoutKind::Subtree,
                    "naive" => LayoutKind::Naive,
                    other => return Err(format!("unknown layout {other:?}")),
                }
            }
            "--page" => {
                opts.page = match value("--page")?.to_lowercase().as_str() {
                    "open" => PagePolicy::Open,
                    "closed" => PagePolicy::Closed,
                    other => return Err(format!("unknown page policy {other:?}")),
                }
            }
            "--trace" => opts.trace = Some(value("--trace")?),
            "--load" => {
                opts.load = Some(
                    value("--load")?
                        .parse()
                        .map_err(|e| format!("bad --load: {e}"))?,
                );
            }
            "--list-workloads" => {
                for w in all_workloads() {
                    println!("{:<8} {:<9} MPKI {:.2}", w.name, w.suite, w.mpki);
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!(
                    "usage: stringoram [--workload NAME] [--scheme baseline|cb|pb|all]\n\
                     \x20                 [--accesses N] [--y N] [--stash N] [--levels N]\n\
                     \x20                 [--seed N] [--layout subtree|naive] [--page open|closed]\n\
                     \x20                 [--trace FILE.usimm] [--list-workloads]"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = SystemConfig::hpca_default(opts.scheme);
    cfg.seed = opts.seed;
    cfg.layout = opts.layout;
    cfg.page_policy = opts.page;
    if let Some(y) = opts.y {
        cfg.ring.y = y;
    }
    if let Some(stash) = opts.stash {
        cfg.ring.stash_capacity = stash;
    }
    if let Some(levels) = opts.levels {
        cfg.ring.levels = levels;
    }
    if let Some(load) = opts.load {
        cfg.load_factor = load;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("error: invalid configuration: {e}");
        return ExitCode::FAILURE;
    }

    let traces: Vec<Vec<TraceRecord>> = match &opts.trace {
        Some(path) => {
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match usimm::parse(std::io::BufReader::new(file)) {
                Ok(t) => (0..cfg.cores).map(|_| t.clone()).collect(),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let Some(spec) = by_name(&opts.workload) else {
                eprintln!(
                    "error: unknown workload {:?} (try --list-workloads)",
                    opts.workload
                );
                return ExitCode::FAILURE;
            };
            (0..cfg.cores)
                .map(|c| {
                    TraceGenerator::new(spec.clone(), opts.seed, c as u32)
                        .take_records(opts.accesses)
                })
                .collect()
        }
    };

    let mut sim = Simulation::new(cfg, traces);
    sim.set_label(format!("{}/{}", opts.workload, opts.scheme));
    let r = match sim.run(u64::MAX) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("run             {}", r.label);
    println!("cycles          {}", r.total_cycles);
    println!("instructions    {}", r.instructions);
    println!("oram accesses   {}", r.oram_accesses);
    println!("mem requests    {}", r.requests_completed);
    println!(
        "txns            {:?}",
        r.transactions_by_kind.iter().collect::<Vec<_>>()
    );
    println!(
        "cycles by kind  read {} | evict {} | reshuffle {} | other {}",
        r.cycles_by_kind.read,
        r.cycles_by_kind.evict,
        r.cycles_by_kind.reshuffle,
        r.cycles_by_kind.other
    );
    for kind in [OpKind::ReadPath, OpKind::Eviction, OpKind::EarlyReshuffle] {
        let c = r.row_class(kind);
        if c.total() > 0 {
            println!(
                "{:<15} hit {:>6.1}% | miss {:>6.1}% | conflict {:>6.1}%",
                format!("rowbuf {}", kind.label()),
                c.hits as f64 / c.total() as f64 * 100.0,
                c.misses as f64 / c.total() as f64 * 100.0,
                c.conflict_rate() * 100.0
            );
        }
    }
    println!(
        "queue waits     read {:.1} cyc | write {:.1} cyc | occupancy {:.1}",
        r.mean_read_queue_wait, r.mean_write_queue_wait, r.mean_queue_occupancy
    );
    println!(
        "bank idle       {:.1}% overall | {:.1}% while work pending",
        r.bank_idle_proportion * 100.0,
        r.pending_bank_idle_proportion * 100.0
    );
    println!(
        "PB early        PRE {:.1}% | ACT {:.1}%",
        r.early_precharge_fraction * 100.0,
        r.early_activate_fraction * 100.0
    );
    println!(
        "energy          {:.1} uJ total | channel imbalance {:.3}",
        r.energy.total_uj(),
        r.channel_imbalance
    );
    println!(
        "read latency    p50 {} | p95 {} | p99 {} | max {} cycles",
        r.read_latency.p50, r.read_latency.p95, r.read_latency.p99, r.read_latency.max
    );
    println!(
        "protocol        greens/read {:.3} | early reshuffles {} | bg evictions {} | stash peak {}",
        r.protocol.greens_per_read(),
        r.protocol.early_reshuffles,
        r.protocol.background_evictions,
        r.protocol.stash_samples.iter().max().copied().unwrap_or(0)
    );
    ExitCode::SUCCESS
}
