//! A minimal JSON value model, emitter and parser — enough to write and
//! re-validate the committed bench trajectories (`BENCH_*.json`) without
//! pulling a serialization crate into the offline workspace.
//!
//! The dialect is deliberately small: objects, arrays, strings (with the
//! standard escapes), finite numbers, booleans and `null`. That covers
//! everything the bench emitters produce; anything outside it is a parse
//! error, which is exactly what the CI structure check wants.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or to-be-emitted JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Emission is exact: `parse(emit(x))` returns `x`
    /// bit for bit (Rust's shortest-roundtrip `f64` formatting, with
    /// integral values up to 2^53 written without a decimal point and
    /// `-0.0` keeping its sign). Construct from floats via `TryFrom<f64>`,
    /// which rejects NaN and infinities — JSON cannot represent them.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap), so emission is canonical.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn object(pairs: Vec<(&str, Value)>) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key`, when `self` is an object holding it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, when `self` is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, when `self` is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, when `self` is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

/// Error for a float that JSON cannot represent: NaN or an infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteNumber;

impl fmt::Display for NonFiniteNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON cannot represent a non-finite number (NaN or infinity)"
        )
    }
}

impl std::error::Error for NonFiniteNumber {}

impl TryFrom<f64> for Value {
    type Error = NonFiniteNumber;

    fn try_from(v: f64) -> Result<Self, NonFiniteNumber> {
        if v.is_finite() {
            Ok(Value::Number(v))
        } else {
            Err(NonFiniteNumber)
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn write_indented(f: &mut fmt::Formatter<'_>, v: &Value, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Null => write!(f, "null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => {
            if !n.is_finite() {
                // `TryFrom<f64>` refuses these; a hand-built non-finite
                // Number fails emission rather than writing invalid JSON.
                return Err(fmt::Error);
            }
            if *n == 0.0 && n.is_sign_negative() {
                // The integral fast path below would go through i64 and
                // strip the sign; "-0" parses back to -0.0 exactly.
                write!(f, "-0")
            } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                write!(f, "{}", *n as i64)
            } else {
                write!(f, "{n}")
            }
        }
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) if items.is_empty() => write!(f, "[]"),
        Value::Array(items) => {
            writeln!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                write!(f, "{inner}")?;
                write_indented(f, item, indent + 1)?;
                writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
            }
            write!(f, "{pad}]")
        }
        Value::Object(m) if m.is_empty() => write!(f, "{{}}"),
        Value::Object(m) => {
            writeln!(f, "{{")?;
            for (i, (k, val)) in m.iter().enumerate() {
                write!(f, "{inner}")?;
                write_escaped(f, k)?;
                write!(f, ": ")?;
                write_indented(f, val, indent + 1)?;
                writeln!(f, "{}", if i + 1 < m.len() { "," } else { "" })?;
            }
            write!(f, "{pad}}}")
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_indented(f, self, 0)
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number at byte {start}"));
    }
    Ok(Value::Number(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape".to_string())?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + len)
                    .ok_or("truncated UTF-8 sequence".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let v = Value::object(vec![
            ("name", "shard_scaling".into()),
            ("count", 4u64.into()),
            ("ratio", Value::Number(2.5)),
            (
                "points",
                Value::Array(vec![Value::object(vec![("shards", 1u64.into())])]),
            ),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_rejects_garbage() {
        let v = parse(r#"{"s": "a\"b\nA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\nA");
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("1e999").is_err(), "infinite numbers are rejected");
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Value::from(12u64).to_string(), "12");
        assert_eq!(Value::Number(0.5).to_string(), "0.5");
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Value::try_from(bad), Err(NonFiniteNumber));
        }
        assert!(Value::try_from(0.0).is_ok());
        assert!(Value::try_from(f64::MAX).is_ok());
        // A hand-built non-finite Number fails emission instead of writing
        // invalid JSON.
        use std::fmt::Write;
        let mut out = String::new();
        assert!(write!(out, "{}", Value::Number(f64::NAN)).is_err());
        assert!(write!(out, "{}", Value::Number(f64::INFINITY)).is_err());
        // And the parser refuses the textual spellings.
        assert!(parse("NaN").is_err());
        assert!(parse("Infinity").is_err());
        assert!(parse("-Infinity").is_err());
    }

    /// Property: every finite `f64` round-trips **exactly** through the
    /// emitter and parser — `to_bits` equality, which is stricter than
    /// `==` (it distinguishes `-0.0` from `0.0`). Runs a fixed list of
    /// awkward values plus a deterministic xorshift sweep over raw bit
    /// patterns.
    #[test]
    fn float_numbers_roundtrip_exactly() {
        let mut cases: Vec<f64> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -0.1,
            core::f64::consts::PI,
            f64::MIN,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324,             // smallest subnormal
            9007199254740992.0, // 2^53: last exactly-integral fast-path value
            -9007199254740992.0,
            9007199254740993.0, // 2^53 + 1 (rounds to 2^53; still a value)
            1e300,
            1e-300,
            -2.5,
            1234567890.123456,
        ];
        // Deterministic xorshift64 over raw bit patterns: exercises
        // subnormals, extreme exponents and full-precision mantissas.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..1000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = f64::from_bits(state);
            if x.is_finite() {
                cases.push(x);
            }
        }
        for &x in &cases {
            let v = Value::try_from(x).expect("finite");
            let text = v.to_string();
            let y = parse(&text)
                .unwrap_or_else(|e| panic!("emitted {text} does not parse: {e}"))
                .as_f64()
                .expect("number");
            assert_eq!(
                y.to_bits(),
                x.to_bits(),
                "{x:?} emitted as {text} parsed back as {y:?}"
            );
            // Same inside a document, where numbers sit between structure.
            let doc = Value::object(vec![
                ("x", Value::Number(x)),
                ("a", Value::Array(vec![Value::Number(x)])),
            ]);
            let back = parse(&doc.to_string()).expect("document parses");
            for key in ["x", "a"] {
                let got = match key {
                    "x" => back.get("x").unwrap().as_f64().unwrap(),
                    _ => back.get("a").unwrap().as_array().unwrap()[0]
                        .as_f64()
                        .unwrap(),
                };
                assert_eq!(got.to_bits(), x.to_bits(), "key {key} for {x:?}");
            }
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
    }
}
