//! # string-oram-bench — experiment harnesses for the HPCA 2021 figures
//!
//! Each `[[bench]]` target regenerates one table or figure of the paper
//! (see `DESIGN.md` §5 for the index), printing paper-style rows to stdout.
//! Shared machinery lives here: workload runners, result tables and
//! normalization helpers.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::io::Write;
use std::sync::Mutex;

use string_oram::{Scheme, SimReport, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

/// Open CSV sink for the current table, when `STRING_ORAM_CSV_DIR` is set.
static CSV_SINK: Mutex<Option<std::fs::File>> = Mutex::new(None);

fn slugify(title: &str) -> String {
    title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
        .chars()
        .take(60)
        .collect()
}

/// Default number of ORAM accesses (trace records) per core for figure
/// harness runs. Override with the `STRING_ORAM_ACCESSES` environment
/// variable to trade accuracy for time.
#[must_use]
pub fn accesses_per_core() -> usize {
    std::env::var("STRING_ORAM_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

/// Generates the per-core traces for a workload under a config.
#[must_use]
pub fn traces_for(
    cfg: &SystemConfig,
    workload: &str,
    n: usize,
    seed: u64,
) -> Vec<Vec<TraceRecord>> {
    let spec = by_name(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    (0..cfg.cores)
        .map(|c| TraceGenerator::new(spec.clone(), seed, c as u32).take_records(n))
        .collect()
}

/// Warm-up accesses per core before measurement begins (default 0).
/// Set `STRING_ORAM_WARMUP=<n>` to exclude the first `n` accesses per core
/// from every figure's counters — useful for steady-state rates such as
/// greens/read.
#[must_use]
pub fn warmup_per_core() -> usize {
    std::env::var("STRING_ORAM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs `workload` under `cfg` for `n` accesses per core (plus any
/// configured warm-up, which is excluded from the report).
///
/// # Panics
///
/// Panics if the simulation exceeds its generous cycle budget (wedged).
#[must_use]
pub fn run_config(cfg: SystemConfig, workload: &str, n: usize, label: &str) -> SimReport {
    let warmup = warmup_per_core();
    let cores = cfg.cores;
    let traces = traces_for(&cfg, workload, n + warmup, 0xBEEF);
    let mut sim = Simulation::new(cfg, traces);
    sim.set_label(label);
    if warmup > 0 {
        let warm_accesses = (warmup * cores) as u64;
        while sim.oram_accesses() < warm_accesses && !sim.is_finished() {
            sim.step();
        }
        sim.begin_measurement();
    }
    while !sim.is_finished() {
        sim.step();
    }
    sim.report()
}

/// Runs `workload` under the paper's default configuration for a scheme.
/// When `STRING_ORAM_SEEDS=k` (k > 1) is set, the run is repeated over `k`
/// trace seeds and the report of the *median-cycles* run is returned, for
/// noise-robust figures.
#[must_use]
pub fn run_scheme(scheme: Scheme, workload: &str, n: usize) -> SimReport {
    let seeds: u64 = std::env::var("STRING_ORAM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut reports: Vec<SimReport> = (0..seeds.max(1))
        .map(|s| {
            let cfg = SystemConfig::hpca_default(scheme);
            let traces = traces_for(&cfg, workload, n, 0xBEEF ^ (s * 0x9E37));
            let mut sim = Simulation::new(cfg, traces);
            sim.set_label(format!("{workload}/{scheme}"));
            sim.run(u64::MAX).expect("simulation completes")
        })
        .collect();
    reports.sort_by_key(|r| r.total_cycles);
    reports.swap_remove(reports.len() / 2)
}

/// The paper's ten workload names, figure order.
#[must_use]
pub fn workload_names() -> Vec<&'static str> {
    trace_synth::all_workloads()
        .iter()
        .map(|w| w.name)
        .collect()
}

/// Prints a separator + centered title, figure-style. When the
/// `STRING_ORAM_CSV_DIR` environment variable names a directory, every
/// subsequent [`print_row`] is also appended to
/// `<dir>/<slug-of-title>.csv` for plotting.
pub fn print_header(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
    let mut sink = CSV_SINK.lock().expect("csv sink");
    *sink = std::env::var("STRING_ORAM_CSV_DIR").ok().and_then(|dir| {
        std::fs::create_dir_all(&dir).ok()?;
        let path = std::path::Path::new(&dir).join(format!("{}.csv", slugify(title)));
        std::fs::File::create(path).ok()
    });
}

/// Prints one table row: a label column then fixed-width value columns.
/// Mirrored to the active CSV sink, if any (see [`print_header`]).
pub fn print_row(label: &str, values: &[String]) {
    print!("{label:<12}");
    for v in values {
        print!(" {v:>12}");
    }
    println!();
    if let Some(f) = CSV_SINK.lock().expect("csv sink").as_mut() {
        let mut line = String::from(label);
        for v in values {
            line.push(',');
            // Strip display-only decorations for machine consumption.
            line.push_str(v.trim().trim_end_matches('%'));
        }
        let _ = writeln!(f, "{line}");
    }
}

/// Geometric mean of strictly positive values (the paper reports GEOMEAN
/// bars); returns 0.0 for an empty slice.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn workload_names_complete() {
        assert_eq!(workload_names().len(), 10);
    }

    #[test]
    fn small_run_smoke() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        let r = run_config(cfg, "stream", 20, "smoke");
        assert_eq!(r.oram_accesses, 40);
    }
}
