//! # string-oram-bench — experiment harnesses for the HPCA 2021 figures
//!
//! Each `[[bench]]` target regenerates one table or figure of the paper
//! (see `DESIGN.md` §5 for the index), printing paper-style rows to stdout.
//! Shared machinery lives here: workload runners, result tables and
//! normalization helpers.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod json;

use std::io::Write;
use std::sync::Mutex;

use json::Value;

use string_oram::{Scheme, SimReport, Simulation, SystemConfig};
use trace_synth::{by_name, TraceGenerator, TraceRecord};

/// Open CSV sink for the current table, when `STRING_ORAM_CSV_DIR` is set.
static CSV_SINK: Mutex<Option<std::fs::File>> = Mutex::new(None);

fn slugify(title: &str) -> String {
    title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
        .chars()
        .take(60)
        .collect()
}

/// Default number of ORAM accesses (trace records) per core for figure
/// harness runs. Override with the `STRING_ORAM_ACCESSES` environment
/// variable to trade accuracy for time.
#[must_use]
pub fn accesses_per_core() -> usize {
    std::env::var("STRING_ORAM_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

/// Generates the per-core traces for a workload under a config.
#[must_use]
pub fn traces_for(
    cfg: &SystemConfig,
    workload: &str,
    n: usize,
    seed: u64,
) -> Vec<Vec<TraceRecord>> {
    let spec = by_name(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    (0..cfg.cores)
        .map(|c| TraceGenerator::new(spec.clone(), seed, c as u32).take_records(n))
        .collect()
}

/// Warm-up accesses per core before measurement begins (default 0).
/// Set `STRING_ORAM_WARMUP=<n>` to exclude the first `n` accesses per core
/// from every figure's counters — useful for steady-state rates such as
/// greens/read.
#[must_use]
pub fn warmup_per_core() -> usize {
    std::env::var("STRING_ORAM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs `workload` under `cfg` for `n` accesses per core (plus any
/// configured warm-up, which is excluded from the report).
///
/// # Panics
///
/// Panics if the simulation exceeds its generous cycle budget (wedged).
#[must_use]
pub fn run_config(cfg: SystemConfig, workload: &str, n: usize, label: &str) -> SimReport {
    let warmup = warmup_per_core();
    let cores = cfg.cores;
    let traces = traces_for(&cfg, workload, n + warmup, 0xBEEF);
    let mut sim = Simulation::new(cfg, traces);
    sim.set_label(label);
    if warmup > 0 {
        let warm_accesses = (warmup * cores) as u64;
        while sim.oram_accesses() < warm_accesses && !sim.is_finished() {
            sim.step();
        }
        sim.begin_measurement();
    }
    while !sim.is_finished() {
        sim.step();
    }
    sim.report()
}

/// Runs `workload` under the paper's default configuration for a scheme.
/// When `STRING_ORAM_SEEDS=k` (k > 1) is set, the run is repeated over `k`
/// trace seeds and the report of the *median-cycles* run is returned, for
/// noise-robust figures.
#[must_use]
pub fn run_scheme(scheme: Scheme, workload: &str, n: usize) -> SimReport {
    let seeds: u64 = std::env::var("STRING_ORAM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut reports: Vec<SimReport> = (0..seeds.max(1))
        .map(|s| {
            let cfg = SystemConfig::hpca_default(scheme);
            let traces = traces_for(&cfg, workload, n, 0xBEEF ^ (s * 0x9E37));
            let mut sim = Simulation::new(cfg, traces);
            sim.set_label(format!("{workload}/{scheme}"));
            sim.run(u64::MAX).expect("simulation completes")
        })
        .collect();
    reports.sort_by_key(|r| r.total_cycles);
    reports.swap_remove(reports.len() / 2)
}

/// The paper's ten workload names, figure order.
#[must_use]
pub fn workload_names() -> Vec<&'static str> {
    trace_synth::all_workloads()
        .iter()
        .map(|w| w.name)
        .collect()
}

/// Prints a separator + centered title, figure-style. When the
/// `STRING_ORAM_CSV_DIR` environment variable names a directory, every
/// subsequent [`print_row`] is also appended to
/// `<dir>/<slug-of-title>.csv` for plotting.
pub fn print_header(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
    let mut sink = CSV_SINK.lock().expect("csv sink");
    *sink = std::env::var("STRING_ORAM_CSV_DIR").ok().and_then(|dir| {
        std::fs::create_dir_all(&dir).ok()?;
        let path = std::path::Path::new(&dir).join(format!("{}.csv", slugify(title)));
        std::fs::File::create(path).ok()
    });
}

/// Prints one table row: a label column then fixed-width value columns.
/// Mirrored to the active CSV sink, if any (see [`print_header`]).
pub fn print_row(label: &str, values: &[String]) {
    print!("{label:<12}");
    for v in values {
        print!(" {v:>12}");
    }
    println!();
    if let Some(f) = CSV_SINK.lock().expect("csv sink").as_mut() {
        let mut line = String::from(label);
        for v in values {
            line.push(',');
            // Strip display-only decorations for machine consumption.
            line.push_str(v.trim().trim_end_matches('%'));
        }
        let _ = writeln!(f, "{line}");
    }
}

fn require<'a>(obj: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing \"{key}\""))
}

fn require_u64(obj: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    require(obj, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" is not a non-negative integer"))
}

fn require_positive(obj: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    match require(obj, key, ctx)?.as_f64() {
        Some(n) if n > 0.0 => Ok(n),
        _ => Err(format!("{ctx}: \"{key}\" is not a positive number")),
    }
}

/// Validates a parsed `BENCH_shard_scaling.json` document against the
/// schema documented in `EXPERIMENTS.md` — required keys, types, shard
/// counts that are powers of two, per-shard wall arrays of matching
/// length, and a well-formed 16-hex-digit merged digest. It does not judge
/// how *fast* the recorded numbers are, but it does enforce one physical
/// consistency bound: the measured threaded wall cannot exceed the summed
/// isolated shard walls beyond a noise allowance (`x1.25 + 2ms`), because
/// the threaded run does strictly no more simulation work than running
/// every shard back to back — a larger measured wall means the timers or
/// the threading are broken, not the machine slow.
///
/// # Errors
///
/// A message naming the first offending key or element.
pub fn validate_shard_scaling(doc: &Value) -> Result<(), String> {
    let ctx = "shard_scaling";
    match require(doc, "bench", ctx)?.as_str() {
        Some("shard_scaling") => {}
        _ => return Err(format!("{ctx}: \"bench\" must be \"shard_scaling\"")),
    }
    require_u64(doc, "schema_version", ctx)?;
    if require_u64(doc, "host_parallelism", ctx)? == 0 {
        return Err(format!("{ctx}: \"host_parallelism\" must be >= 1"));
    }
    require(doc, "workload", ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"workload\" is not a string"))?;
    require(doc, "scheme", ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"scheme\" is not a string"))?;
    require_u64(doc, "records_per_core", ctx)?;
    require_u64(doc, "cores", ctx)?;
    require_u64(doc, "master_seed", ctx)?;

    let backends = require(doc, "backends", ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}: \"backends\" is not an array"))?;
    if backends.is_empty() {
        return Err(format!("{ctx}: \"backends\" is empty"));
    }
    for entry in backends {
        let name = require(entry, "backend", ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: backend name is not a string"))?
            .to_string();
        if !matches!(name.as_str(), "cycle-accurate" | "fast-functional") {
            return Err(format!("{ctx}: unknown backend \"{name}\""));
        }
        let points = require(entry, "points", &name)?
            .as_array()
            .ok_or_else(|| format!("{name}: \"points\" is not an array"))?;
        if points.is_empty() {
            return Err(format!("{name}: \"points\" is empty"));
        }
        for point in points {
            let shards = require_u64(point, "shards", &name)?;
            let pctx = format!("{name}/shards={shards}");
            if shards == 0 || !shards.is_power_of_two() {
                return Err(format!("{pctx}: shard count is not a power of two"));
            }
            require_u64(point, "oram_accesses", &pctx)?;
            require_u64(point, "total_cycles", &pctx)?;
            require_u64(point, "makespan_cycles", &pctx)?;
            require_positive(point, "setup_wall_ms", &pctx)?;
            require_positive(point, "run_wall_ms", &pctx)?;
            let measured = require_positive(point, "measured_wall_ms", &pctx)?;
            require_positive(point, "measured_speedup_vs_n1", &pctx)?;
            require_positive(point, "measured_accesses_per_sec", &pctx)?;
            require_positive(point, "projected_parallel_ms", &pctx)?;
            require_positive(point, "projected_accesses_per_sec", &pctx)?;
            let digest = require(point, "merged_digest", &pctx)?
                .as_str()
                .ok_or_else(|| format!("{pctx}: \"merged_digest\" is not a string"))?;
            let hex = digest
                .strip_prefix("0x")
                .ok_or_else(|| format!("{pctx}: digest lacks 0x prefix"))?;
            if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(format!("{pctx}: digest is not 16 hex digits"));
            }
            let walls = require(point, "shard_wall_ms", &pctx)?
                .as_array()
                .ok_or_else(|| format!("{pctx}: \"shard_wall_ms\" is not an array"))?;
            if walls.len() as u64 != shards {
                return Err(format!(
                    "{pctx}: {} per-shard walls for {shards} shards",
                    walls.len()
                ));
            }
            if !walls
                .iter()
                .all(|w| matches!(w.as_f64(), Some(n) if n > 0.0))
            {
                return Err(format!("{pctx}: non-positive per-shard wall"));
            }
            let wall_sum: f64 = walls.iter().filter_map(Value::as_f64).sum();
            let bound = wall_sum * 1.25 + 2.0;
            if measured > bound {
                return Err(format!(
                    "{pctx}: measured wall {measured:.3}ms exceeds the summed isolated shard \
                     walls {wall_sum:.3}ms beyond tolerance ({bound:.3}ms) — the threaded run \
                     does no more work than all shards serially"
                ));
            }
        }
    }
    Ok(())
}

/// Validates a parsed `BENCH_protocol_matrix.json` document against the
/// schema documented in `EXPERIMENTS.md`: every protocol × backend pair
/// present exactly once (4 protocols × 2 backends = 8 points), positive
/// finite rates and latencies (the hand-rolled JSON layer cannot even
/// represent NaN/inf, and the positivity checks reject any sentinel that
/// would stand in for one), well-formed 16-hex-digit access digests, and —
/// the protocol-layer security property — the same protocol's digest equal
/// across both backends, because memory timing may change *when* things
/// happen but never *what* the bus observes.
///
/// # Errors
///
/// A message naming the first offending key or element.
pub fn validate_protocol_matrix(doc: &Value) -> Result<(), String> {
    const PROTOCOLS: [&str; 4] = ["ring-cb", "ring", "path", "circuit"];
    const BACKENDS: [&str; 2] = ["cycle-accurate", "fast-functional"];
    let ctx = "protocol_matrix";
    match require(doc, "bench", ctx)?.as_str() {
        Some("protocol_matrix") => {}
        _ => return Err(format!("{ctx}: \"bench\" must be \"protocol_matrix\"")),
    }
    require_u64(doc, "schema_version", ctx)?;
    require(doc, "workload", ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"workload\" is not a string"))?;
    require(doc, "scheme", ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"scheme\" is not a string"))?;
    require_u64(doc, "records_per_core", ctx)?;
    require_u64(doc, "cores", ctx)?;
    require_u64(doc, "master_seed", ctx)?;

    let points = require(doc, "points", ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}: \"points\" is not an array"))?;
    let mut seen: Vec<(String, String)> = Vec::new();
    let mut digests: Vec<(String, String)> = Vec::new();
    for point in points {
        let protocol = require(point, "protocol", ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"protocol\" is not a string"))?
            .to_string();
        if !PROTOCOLS.contains(&protocol.as_str()) {
            return Err(format!("{ctx}: unknown protocol \"{protocol}\""));
        }
        let backend = require(point, "backend", ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"backend\" is not a string"))?
            .to_string();
        if !BACKENDS.contains(&backend.as_str()) {
            return Err(format!("{ctx}: unknown backend \"{backend}\""));
        }
        let pctx = format!("{protocol}/{backend}");
        if seen.contains(&(protocol.clone(), backend.clone())) {
            return Err(format!("{pctx}: duplicate point"));
        }
        if require_u64(point, "oram_accesses", &pctx)? == 0 {
            return Err(format!("{pctx}: \"oram_accesses\" must be >= 1"));
        }
        require_positive(point, "run_wall_ms", &pctx)?;
        require_positive(point, "accesses_per_sec", &pctx)?;
        require_positive(point, "mean_latency_cycles", &pctx)?;
        let p99 = require_u64(point, "p99_latency_cycles", &pctx)?;
        if p99 == 0 {
            return Err(format!("{pctx}: \"p99_latency_cycles\" must be >= 1"));
        }
        let digest = require(point, "digest", &pctx)?
            .as_str()
            .ok_or_else(|| format!("{pctx}: \"digest\" is not a string"))?;
        let hex = digest
            .strip_prefix("0x")
            .ok_or_else(|| format!("{pctx}: digest lacks 0x prefix"))?;
        if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!("{pctx}: digest is not 16 hex digits"));
        }
        if let Some((_, other)) = digests.iter().find(|(p, _)| *p == protocol) {
            if other != digest {
                return Err(format!(
                    "{pctx}: digest {digest} disagrees with the other backend's {other} — \
                     the bus-visible sequence must be timing-independent"
                ));
            }
        } else {
            digests.push((protocol.clone(), digest.to_string()));
        }
        seen.push((protocol, backend));
    }
    if seen.len() != PROTOCOLS.len() * BACKENDS.len() {
        return Err(format!(
            "{ctx}: {} points, expected exactly {} (every protocol x backend pair once)",
            seen.len(),
            PROTOCOLS.len() * BACKENDS.len()
        ));
    }
    Ok(())
}

fn require_fraction(obj: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    let v = require(obj, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" is not a number"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("{ctx}: \"{key}\" must be in [0, 1], got {v}"));
    }
    Ok(v)
}

fn require_digest(obj: &Value, key: &str, ctx: &str) -> Result<String, String> {
    let digest = require(obj, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"{key}\" is not a string"))?;
    let hex = digest
        .strip_prefix("0x")
        .ok_or_else(|| format!("{ctx}: \"{key}\" lacks 0x prefix"))?;
    if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("{ctx}: \"{key}\" is not 16 hex digits"));
    }
    Ok(digest.to_string())
}

/// Validates a parsed `BENCH_service_load.json` document against the
/// schema documented in `EXPERIMENTS.md`: every submission mode × backend
/// pair present exactly once (2 × 2 = 4 points), per-tenant conservation
/// (each arrival resolved exactly once as completed, timed out or
/// rejected — the serving layer's exactly-once guarantee, checked in the
/// committed artifact itself), ordered latency percentiles, no padding
/// under best-effort, and — the timing-channel property — identical
/// fixed-rate schedule digests across backends, because the fixed-rate
/// submission envelope is a pure function of the clock and may not depend
/// on memory timing any more than on tenant load.
///
/// # Errors
///
/// A message naming the first offending key or element.
pub fn validate_service_load(doc: &Value) -> Result<(), String> {
    const MODES: [&str; 2] = ["best-effort", "fixed-rate"];
    const BACKENDS: [&str; 2] = ["cycle-accurate", "fast-functional"];
    let ctx = "service_load";
    match require(doc, "bench", ctx)?.as_str() {
        Some("service_load") => {}
        _ => return Err(format!("{ctx}: \"bench\" must be \"service_load\"")),
    }
    require_u64(doc, "schema_version", ctx)?;
    require_u64(doc, "master_seed", ctx)?;
    if require_u64(doc, "horizon", ctx)? == 0 {
        return Err(format!("{ctx}: \"horizon\" must be >= 1"));
    }
    let tenant_count = require_u64(doc, "tenants", ctx)?;
    if tenant_count == 0 {
        return Err(format!("{ctx}: \"tenants\" must be >= 1"));
    }

    let points = require(doc, "points", ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}: \"points\" is not an array"))?;
    let mut seen: Vec<(String, String)> = Vec::new();
    let mut fixed_rate_digest: Option<String> = None;
    for point in points {
        let mode = require(point, "mode", ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"mode\" is not a string"))?
            .to_string();
        if !MODES.contains(&mode.as_str()) {
            return Err(format!("{ctx}: unknown mode \"{mode}\""));
        }
        let backend = require(point, "backend", ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"backend\" is not a string"))?
            .to_string();
        if !BACKENDS.contains(&backend.as_str()) {
            return Err(format!("{ctx}: unknown backend \"{backend}\""));
        }
        let pctx = format!("{mode}/{backend}");
        if seen.contains(&(mode.clone(), backend.clone())) {
            return Err(format!("{pctx}: duplicate point"));
        }
        require(point, "policy", &pctx)?
            .as_str()
            .ok_or_else(|| format!("{pctx}: \"policy\" is not a string"))?;
        if require_u64(point, "ticks", &pctx)? == 0 {
            return Err(format!("{pctx}: \"ticks\" must be >= 1"));
        }
        let real = require_u64(point, "real_accesses", &pctx)?;
        let padding = require_u64(point, "padding_accesses", &pctx)?;
        if real + padding == 0 {
            return Err(format!("{pctx}: no accesses were dispatched"));
        }
        if mode == "best-effort" && padding != 0 {
            return Err(format!(
                "{pctx}: best-effort submission never pads, got {padding} cover accesses"
            ));
        }
        require_fraction(point, "padding_overhead", &pctx)?;
        require_fraction(point, "shed_rate", &pctx)?;
        require_fraction(point, "timeout_rate", &pctx)?;
        require_positive(point, "run_wall_ms", &pctx)?;
        require_u64(point, "governor_degraded_entries", &pctx)?;
        require_u64(point, "governor_shed_entries", &pctx)?;
        require_u64(point, "governor_recoveries", &pctx)?;
        let digest = require_digest(point, "schedule_digest", &pctx)?;
        if mode == "fixed-rate" {
            match &fixed_rate_digest {
                Some(other) if *other != digest => {
                    return Err(format!(
                        "{pctx}: schedule digest {digest} disagrees with the other backend's \
                         {other} — the fixed-rate envelope must be a pure function of the clock"
                    ));
                }
                Some(_) => {}
                None => fixed_rate_digest = Some(digest),
            }
        }
        let tenants = require(point, "tenants", &pctx)?
            .as_array()
            .ok_or_else(|| format!("{pctx}: \"tenants\" is not an array"))?;
        if tenants.len() as u64 != tenant_count {
            return Err(format!(
                "{pctx}: {} tenant rows for {tenant_count} tenants",
                tenants.len()
            ));
        }
        for tenant in tenants {
            let name = require(tenant, "tenant", &pctx)?
                .as_str()
                .ok_or_else(|| format!("{pctx}: tenant name is not a string"))?
                .to_string();
            let tctx = format!("{pctx}/{name}");
            let arrivals = require_u64(tenant, "arrivals", &tctx)?;
            let completed = require_u64(tenant, "completed", &tctx)?;
            let timed_out = require_u64(tenant, "timed_out", &tctx)?;
            let rejected = require_u64(tenant, "rejected", &tctx)?;
            if completed + timed_out + rejected != arrivals {
                return Err(format!(
                    "{tctx}: {completed} completed + {timed_out} timed out + {rejected} \
                     rejected != {arrivals} arrivals — every request must resolve exactly once"
                ));
            }
            let p50 = require_u64(tenant, "p50", &tctx)?;
            let p99 = require_u64(tenant, "p99", &tctx)?;
            let p999 = require_u64(tenant, "p999", &tctx)?;
            if p50 > p99 || p99 > p999 {
                return Err(format!(
                    "{tctx}: percentiles out of order (p50 {p50}, p99 {p99}, p999 {p999})"
                ));
            }
            require_u64(tenant, "queue_high_water", &tctx)?;
        }
        seen.push((mode, backend));
    }
    if seen.len() != MODES.len() * BACKENDS.len() {
        return Err(format!(
            "{ctx}: {} points, expected exactly {} (every mode x backend pair once)",
            seen.len(),
            MODES.len() * BACKENDS.len()
        ));
    }
    Ok(())
}

/// Validates a parsed `BENCH_sched_policy.json` document against the
/// schema documented in `EXPERIMENTS.md`: every policy × backend × workload
/// triple present exactly once (5 policies × 2 backends × 2 workloads = 20
/// points), positive wall times and mean cycles, rates inside `[0, 1]`,
/// well-formed 16-hex-digit access digests, and the scheduling-policy
/// contract itself:
///
/// * within a workload, **every** point carries the same access digest —
///   command scheduling may never change what the ORAM controller requests;
/// * the transaction-based baseline never issues early prep, on any
///   backend;
/// * fast-functional points carry all-zero scheduler metrics (there is no
///   command scheduler behind that backend to measure);
/// * on the cycle-accurate backend, Proactive Bank's early-PRE rate sits
///   inside the measured band `[0.50, 0.85]` — the paper's Fig. 8 shape
///   (≈57–59 % of precharges issued early under its blocking-core
///   configuration) shifted up to ≈72–74 % by the bench's MLP-4 cores,
///   which keep the lookahead window occupied more often — while
///   speculative-window issues early prep, read-over-write defers writes,
///   and fixed-cadence withholds issue slots.
///
/// # Errors
///
/// A message naming the first offending key or element.
pub fn validate_sched_policy(doc: &Value) -> Result<(), String> {
    const POLICIES: [&str; 5] = [
        "fr-fcfs",
        "proactive-bank",
        "read-over-write",
        "speculative-window",
        "fixed-cadence",
    ];
    const BACKENDS: [&str; 2] = ["cycle-accurate", "fast-functional"];
    const WORKLOADS: [&str; 2] = ["black", "stream"];
    const PB_EARLY_PRE_BAND: (f64, f64) = (0.50, 0.85);
    let ctx = "sched_policy";
    match require(doc, "bench", ctx)?.as_str() {
        Some("sched_policy") => {}
        _ => return Err(format!("{ctx}: \"bench\" must be \"sched_policy\"")),
    }
    require_u64(doc, "schema_version", ctx)?;
    require(doc, "scheme", ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"scheme\" is not a string"))?;
    require_u64(doc, "records_per_core", ctx)?;
    require_u64(doc, "cores", ctx)?;
    require_u64(doc, "master_seed", ctx)?;

    let points = require(doc, "points", ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}: \"points\" is not an array"))?;
    let mut seen: Vec<(String, String, String)> = Vec::new();
    let mut digests: Vec<(String, String)> = Vec::new();
    for point in points {
        let policy = require(point, "policy", ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"policy\" is not a string"))?
            .to_string();
        if !POLICIES.contains(&policy.as_str()) {
            return Err(format!("{ctx}: unknown policy \"{policy}\""));
        }
        let backend = require(point, "backend", ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"backend\" is not a string"))?
            .to_string();
        if !BACKENDS.contains(&backend.as_str()) {
            return Err(format!("{ctx}: unknown backend \"{backend}\""));
        }
        let workload = require(point, "workload", ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: \"workload\" is not a string"))?
            .to_string();
        if !WORKLOADS.contains(&workload.as_str()) {
            return Err(format!("{ctx}: unknown workload \"{workload}\""));
        }
        let pctx = format!("{workload}/{policy}/{backend}");
        let triple = (workload.clone(), policy.clone(), backend.clone());
        if seen.contains(&triple) {
            return Err(format!("{pctx}: duplicate point"));
        }
        if require_u64(point, "oram_accesses", &pctx)? == 0 {
            return Err(format!("{pctx}: \"oram_accesses\" must be >= 1"));
        }
        require_positive(point, "run_wall_ms", &pctx)?;
        require_positive(point, "mean_cycles_per_access", &pctx)?;
        let idle = require_fraction(point, "bank_idle_proportion", &pctx)?;
        let pending_idle = require_fraction(point, "pending_bank_idle_proportion", &pctx)?;
        let early_pre = require_fraction(point, "early_precharge_fraction", &pctx)?;
        let early_act = require_fraction(point, "early_activate_fraction", &pctx)?;
        let deferred = require_u64(point, "deferred_writes", &pctx)?;
        let withheld = require_u64(point, "withheld_issue_slots", &pctx)?;
        let digest = require_digest(point, "digest", &pctx)?;
        if let Some((_, other)) = digests.iter().find(|(w, _)| *w == workload) {
            if *other != digest {
                return Err(format!(
                    "{pctx}: digest {digest} disagrees with the workload's {other} — \
                     a command-scheduling policy must not change the access sequence"
                ));
            }
        } else {
            digests.push((workload.clone(), digest));
        }
        if policy == "fr-fcfs" && early_pre + early_act != 0.0 {
            return Err(format!(
                "{pctx}: the transaction-based baseline cannot issue early prep"
            ));
        }
        if backend == "fast-functional"
            && (idle != 0.0
                || pending_idle != 0.0
                || early_pre != 0.0
                || early_act != 0.0
                || deferred != 0
                || withheld != 0)
        {
            return Err(format!(
                "{pctx}: the functional backend has no command scheduler, all \
                 scheduler metrics must be zero"
            ));
        }
        if backend == "cycle-accurate" {
            match policy.as_str() {
                "proactive-bank" => {
                    let (lo, hi) = PB_EARLY_PRE_BAND;
                    if !(lo..=hi).contains(&early_pre) {
                        return Err(format!(
                            "{pctx}: early-PRE rate {early_pre:.3} outside the measured \
                             Proactive Bank band [{lo}, {hi}]"
                        ));
                    }
                }
                "speculative-window" if early_pre + early_act == 0.0 => {
                    return Err(format!(
                        "{pctx}: speculative-window never issued early prep"
                    ));
                }
                "read-over-write" if deferred == 0 => {
                    return Err(format!("{pctx}: read-over-write never deferred a write"));
                }
                "fixed-cadence" if withheld == 0 => {
                    return Err(format!(
                        "{pctx}: fixed-cadence never withheld an issue slot"
                    ));
                }
                _ => {}
            }
        }
        seen.push(triple);
    }
    let expected = POLICIES.len() * BACKENDS.len() * WORKLOADS.len();
    if seen.len() != expected {
        return Err(format!(
            "{ctx}: {} points, expected exactly {expected} (every workload x policy x \
             backend triple once)",
            seen.len()
        ));
    }
    Ok(())
}

/// Geometric mean of strictly positive values (the paper reports GEOMEAN
/// bars); returns 0.0 for an empty slice.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn workload_names_complete() {
        assert_eq!(workload_names().len(), 10);
    }

    #[test]
    fn small_run_smoke() {
        let cfg = SystemConfig::test_small(Scheme::Baseline);
        let r = run_config(cfg, "stream", 20, "smoke");
        assert_eq!(r.oram_accesses, 40);
    }

    fn minimal_trajectory() -> String {
        r#"{
            "bench": "shard_scaling", "schema_version": 2,
            "host_parallelism": 1, "workload": "black", "scheme": "All",
            "records_per_core": 2000, "cores": 2, "master_seed": 219966046,
            "backends": [{
                "backend": "fast-functional",
                "points": [{
                    "shards": 2, "oram_accesses": 4000,
                    "merged_digest": "0x8FEFA68912F2C2F5",
                    "total_cycles": 10, "makespan_cycles": 6,
                    "setup_wall_ms": 0.4, "run_wall_ms": 1.5,
                    "measured_wall_ms": 1.5, "measured_speedup_vs_n1": 1.9,
                    "measured_accesses_per_sec": 100.0,
                    "shard_wall_ms": [0.7, 0.8],
                    "projected_parallel_ms": 0.8,
                    "projected_accesses_per_sec": 200.0
                }]
            }]
        }"#
        .to_string()
    }

    #[test]
    fn shard_scaling_schema_accepts_the_documented_shape() {
        let doc = json::parse(&minimal_trajectory()).unwrap();
        validate_shard_scaling(&doc).unwrap();
    }

    #[test]
    fn shard_scaling_schema_rejects_structural_damage() {
        let good = minimal_trajectory();
        for (needle, replacement, why) in [
            ("\"shards\": 2", "\"shards\": 3", "non-power-of-two shards"),
            ("[0.7, 0.8]", "[0.7]", "wall array shorter than shards"),
            ("[0.7, 0.8]", "[0.7, 0.0]", "non-positive wall"),
            ("0x8FEFA68912F2C2F5", "8FEFA68912F2C2F5", "digest prefix"),
            ("0x8FEFA68912F2C2F5", "0x8FEF", "digest length"),
            (
                "\"host_parallelism\": 1",
                "\"host_parallelism\": 0",
                "zero parallelism",
            ),
            ("shard_scaling\"", "other_bench\"", "wrong bench name"),
            (
                "\"backend\": \"fast-functional\"",
                "\"backend\": \"gpu\"",
                "unknown backend",
            ),
            (
                "\"measured_wall_ms\": 1.5",
                "\"measured_wall_ms\": -1",
                "negative wall",
            ),
            (
                "\"setup_wall_ms\": 0.4",
                "\"setup_wall_ms\": 0",
                "zero setup wall",
            ),
            (
                "\"measured_speedup_vs_n1\": 1.9",
                "\"measured_speedup_vs_n1\": 0",
                "zero measured speedup",
            ),
            (
                "\"measured_wall_ms\": 1.5",
                "\"measured_wall_ms\": 4.0",
                "measured wall beyond summed shard walls",
            ),
        ] {
            let damaged = good.replacen(needle, replacement, 1);
            assert_ne!(damaged, good, "{why}: replacement did not apply");
            let doc = json::parse(&damaged).unwrap();
            assert!(
                validate_shard_scaling(&doc).is_err(),
                "{why} must be rejected"
            );
        }
        // Dropping any required point key is rejected too.
        let doc = json::parse(&good.replacen("\"total_cycles\": 10,", "", 1)).unwrap();
        assert!(validate_shard_scaling(&doc).is_err());
    }

    fn minimal_matrix() -> String {
        let point = |protocol: &str, backend: &str, digest: &str| {
            format!(
                r#"{{"protocol": "{protocol}", "backend": "{backend}",
                    "oram_accesses": 4000, "run_wall_ms": 12.5,
                    "accesses_per_sec": 320000.0, "mean_latency_cycles": 410.2,
                    "p99_latency_cycles": 1290, "digest": "{digest}"}}"#
            )
        };
        let mut points = Vec::new();
        for (protocol, digest) in [
            ("ring-cb", "0x8FEFA68912F2C2F5"),
            ("ring", "0x0235AE479E4FDF7D"),
            ("path", "0x2716F910C160FDEB"),
            ("circuit", "0x24AA6473F951AB26"),
        ] {
            for backend in ["cycle-accurate", "fast-functional"] {
                points.push(point(protocol, backend, digest));
            }
        }
        format!(
            r#"{{"bench": "protocol_matrix", "schema_version": 1,
                "workload": "black", "scheme": "All", "records_per_core": 2000,
                "cores": 1, "master_seed": 219966046,
                "points": [{}]}}"#,
            points.join(", ")
        )
    }

    #[test]
    fn protocol_matrix_schema_accepts_the_documented_shape() {
        let doc = json::parse(&minimal_matrix()).unwrap();
        validate_protocol_matrix(&doc).unwrap();
    }

    #[test]
    fn protocol_matrix_schema_rejects_structural_damage() {
        let good = minimal_matrix();
        for (needle, replacement, why) in [
            ("protocol_matrix\"", "other_bench\"", "wrong bench name"),
            ("\"ring-cb\"", "\"gpu-oram\"", "unknown protocol"),
            ("\"cycle-accurate\"", "\"gpu\"", "unknown backend"),
            (
                "\"backend\": \"fast-functional\"",
                "\"backend\": \"cycle-accurate\"",
                "duplicate protocol x backend pair",
            ),
            ("0x8FEFA68912F2C2F5", "8FEFA68912F2C2F5", "digest prefix"),
            ("0x0235AE479E4FDF7D", "0x0235", "digest length"),
            (
                "\"p99_latency_cycles\": 1290, \"digest\": \"0x2716F910C160FDEB\"",
                "\"p99_latency_cycles\": 1290, \"digest\": \"0x2716F910C160FDEC\"",
                "same-protocol digests diverging across backends",
            ),
            (
                "\"run_wall_ms\": 12.5",
                "\"run_wall_ms\": 0",
                "zero wall time",
            ),
            (
                "\"accesses_per_sec\": 320000.0",
                "\"accesses_per_sec\": -3.0",
                "negative rate",
            ),
            (
                "\"mean_latency_cycles\": 410.2",
                "\"mean_latency_cycles\": 0",
                "zero mean latency",
            ),
            (
                "\"p99_latency_cycles\": 1290",
                "\"p99_latency_cycles\": 0",
                "zero p99 latency",
            ),
            (
                "\"oram_accesses\": 4000",
                "\"oram_accesses\": 0",
                "zero accesses",
            ),
        ] {
            let damaged = good.replacen(needle, replacement, 1);
            assert_ne!(damaged, good, "{why}: replacement did not apply");
            let doc = json::parse(&damaged).unwrap();
            assert!(
                validate_protocol_matrix(&doc).is_err(),
                "{why} must be rejected"
            );
        }
        // A missing pair (7 points) and a missing required key are both
        // rejected.
        let last_point_start = good.rfind("{\"protocol\"").unwrap();
        let truncated = format!(
            "{}]}}",
            good[..last_point_start].trim_end().trim_end_matches(','),
        );
        let doc = json::parse(&truncated).unwrap();
        assert!(validate_protocol_matrix(&doc).is_err());
        let doc = json::parse(&good.replacen("\"oram_accesses\": 4000,", "", 1)).unwrap();
        assert!(validate_protocol_matrix(&doc).is_err());
    }

    /// The committed matrix at the repo root must always parse and satisfy
    /// the schema (regenerate with `cargo bench --bench protocol_matrix`
    /// after intentional changes).
    #[test]
    fn committed_protocol_matrix_is_valid() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_protocol_matrix.json"
        );
        let text = std::fs::read_to_string(path).expect("BENCH_protocol_matrix.json is committed");
        let doc = json::parse(&text).expect("matrix parses");
        validate_protocol_matrix(&doc).expect("matrix matches schema");
    }

    fn minimal_service_load() -> String {
        let point = |mode: &str, backend: &str, padding: u64, digest: &str| {
            format!(
                r#"{{
                    "mode": "{mode}", "backend": "{backend}",
                    "policy": "{mode}/batch=4", "ticks": 20000,
                    "real_accesses": 400, "padding_accesses": {padding},
                    "padding_overhead": 0.1, "shed_rate": 0.2,
                    "timeout_rate": 0.05, "run_wall_ms": 12.5,
                    "governor_degraded_entries": 1, "governor_shed_entries": 1,
                    "governor_recoveries": 1,
                    "schedule_digest": "{digest}",
                    "tenants": [{{
                        "tenant": "alpha", "arrivals": 100, "completed": 70,
                        "timed_out": 10, "rejected": 20,
                        "p50": 500, "p99": 900, "p999": 950,
                        "queue_high_water": 64
                    }}]
                }}"#
            )
        };
        format!(
            r#"{{
                "bench": "service_load", "schema_version": 1,
                "master_seed": 219966046, "horizon": 12000, "tenants": 1,
                "points": [{}, {}, {}, {}]
            }}"#,
            point("best-effort", "cycle-accurate", 0, "0x1111111111111111"),
            point("best-effort", "fast-functional", 0, "0x2222222222222222"),
            point("fixed-rate", "cycle-accurate", 40, "0x3333333333333333"),
            point("fixed-rate", "fast-functional", 40, "0x3333333333333333"),
        )
    }

    #[test]
    fn service_load_schema_accepts_the_documented_shape() {
        let doc = json::parse(&minimal_service_load()).unwrap();
        validate_service_load(&doc).unwrap();
    }

    #[test]
    fn service_load_schema_rejects_structural_damage() {
        let good = minimal_service_load();
        for (needle, replacement, why) in [
            (
                "\"completed\": 70",
                "\"completed\": 71",
                "broken exactly-once conservation",
            ),
            ("\"p99\": 900", "\"p99\": 9000", "percentiles out of order"),
            (
                "\"padding_accesses\": 0",
                "\"padding_accesses\": 7",
                "padding under best-effort",
            ),
            (
                "0x3333333333333333",
                "0x4444444444444444",
                "fixed-rate digest disagreement across backends",
            ),
            (
                "\"shed_rate\": 0.2",
                "\"shed_rate\": 1.5",
                "rate outside [0, 1]",
            ),
            (
                "\"tenants\": 1,",
                "\"tenants\": 2,",
                "tenant count mismatch",
            ),
            (
                "\"mode\": \"fixed-rate\", \"backend\": \"fast-functional\"",
                "\"mode\": \"best-effort\", \"backend\": \"cycle-accurate\"",
                "duplicate mode x backend pair",
            ),
        ] {
            let damaged = good.replacen(needle, replacement, 1);
            assert_ne!(good, damaged, "damage \"{why}\" did not apply");
            let doc = json::parse(&damaged).unwrap();
            assert!(
                validate_service_load(&doc).is_err(),
                "validator accepted {why}"
            );
        }
    }

    /// The committed service-load artifact at the repo root must always
    /// parse and satisfy the schema (regenerate with
    /// `cargo bench --bench service_load` after intentional changes).
    #[test]
    fn committed_service_load_is_valid() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service_load.json");
        let text = std::fs::read_to_string(path).expect("BENCH_service_load.json is committed");
        let doc = json::parse(&text).expect("service load parses");
        validate_service_load(&doc).expect("service load matches schema");
    }

    fn minimal_sched_policy() -> String {
        let point = |workload: &str, policy: &str, backend: &str| {
            let cycle_accurate = backend == "cycle-accurate";
            let early_pre = match (policy, cycle_accurate) {
                ("proactive-bank", true) => 0.58,
                ("speculative-window", true) => 0.61,
                _ => 0.0,
            };
            let early_act = if early_pre > 0.0 { 0.55 } else { 0.0 };
            let idle = if cycle_accurate { 0.5 } else { 0.0 };
            let deferred = u64::from(policy == "read-over-write" && cycle_accurate) * 40;
            let withheld = u64::from(policy == "fixed-cadence" && cycle_accurate) * 90;
            format!(
                r#"{{"policy": "{policy}", "backend": "{backend}",
                    "workload": "{workload}", "oram_accesses": 400,
                    "run_wall_ms": 8.25, "mean_cycles_per_access": 410.2,
                    "bank_idle_proportion": {idle},
                    "pending_bank_idle_proportion": {idle},
                    "early_precharge_fraction": {early_pre},
                    "early_activate_fraction": {early_act},
                    "deferred_writes": {deferred},
                    "withheld_issue_slots": {withheld},
                    "digest": "0x8FEFA68912F2C2F5"}}"#
            )
        };
        let mut points = Vec::new();
        for workload in ["black", "stream"] {
            for policy in [
                "fr-fcfs",
                "proactive-bank",
                "read-over-write",
                "speculative-window",
                "fixed-cadence",
            ] {
                for backend in ["cycle-accurate", "fast-functional"] {
                    points.push(point(workload, policy, backend));
                }
            }
        }
        format!(
            r#"{{"bench": "sched_policy", "schema_version": 1,
                "scheme": "All", "records_per_core": 400, "cores": 1,
                "master_seed": 219966046, "points": [{}]}}"#,
            points.join(", ")
        )
    }

    #[test]
    fn sched_policy_schema_accepts_the_documented_shape() {
        let doc = json::parse(&minimal_sched_policy()).unwrap();
        validate_sched_policy(&doc).unwrap();
    }

    #[test]
    fn sched_policy_schema_rejects_structural_damage() {
        let good = minimal_sched_policy();
        for (needle, replacement, why) in [
            ("sched_policy\"", "other_bench\"", "wrong bench name"),
            ("\"fr-fcfs\"", "\"round-robin\"", "unknown policy"),
            ("\"cycle-accurate\"", "\"gpu\"", "unknown backend"),
            (
                "\"workload\": \"black\"",
                "\"workload\": \"mcf\"",
                "unknown workload",
            ),
            (
                "\"backend\": \"fast-functional\"",
                "\"backend\": \"cycle-accurate\"",
                "duplicate workload x policy x backend triple",
            ),
            (
                "0x8FEFA68912F2C2F5\"}, {\"policy\": \"proactive-bank\"",
                "0x8FEFA68912F2C2F6\"}, {\"policy\": \"proactive-bank\"",
                "digest diverging within a workload",
            ),
            ("0x8FEFA68912F2C2F5", "8FEFA68912F2C2F5", "digest prefix"),
            (
                "\"early_precharge_fraction\": 0.58",
                "\"early_precharge_fraction\": 0.13",
                "Proactive Bank early-PRE rate off the measured band",
            ),
            (
                "\"early_precharge_fraction\": 0,",
                "\"early_precharge_fraction\": 0.2,",
                "baseline issuing early prep",
            ),
            (
                "\"deferred_writes\": 40",
                "\"deferred_writes\": 0",
                "read-over-write never deferring",
            ),
            (
                "\"withheld_issue_slots\": 90",
                "\"withheld_issue_slots\": 0",
                "fixed-cadence never withholding",
            ),
            (
                "\"run_wall_ms\": 8.25",
                "\"run_wall_ms\": 0",
                "zero wall time",
            ),
            (
                "\"mean_cycles_per_access\": 410.2",
                "\"mean_cycles_per_access\": -1",
                "negative mean cycles",
            ),
            (
                "\"bank_idle_proportion\": 0.5",
                "\"bank_idle_proportion\": 1.5",
                "rate outside [0, 1]",
            ),
            (
                "\"oram_accesses\": 400",
                "\"oram_accesses\": 0",
                "zero accesses",
            ),
        ] {
            let damaged = good.replacen(needle, replacement, 1);
            assert_ne!(damaged, good, "{why}: replacement did not apply");
            let doc = json::parse(&damaged).unwrap();
            assert!(
                validate_sched_policy(&doc).is_err(),
                "{why} must be rejected"
            );
        }
        // A nonzero scheduler metric on a functional-backend point is
        // rejected (the last point is stream/fixed-cadence/fast-functional,
        // which has no command scheduler behind it).
        let needle = "\"withheld_issue_slots\": 0,";
        let idx = good.rfind(needle).unwrap();
        let damaged = format!(
            "{}\"withheld_issue_slots\": 3,{}",
            &good[..idx],
            &good[idx + needle.len()..]
        );
        let doc = json::parse(&damaged).unwrap();
        assert!(
            validate_sched_policy(&doc).is_err(),
            "scheduler metrics on the functional backend must be rejected"
        );
        // A missing triple (19 points) and a missing required key are both
        // rejected.
        let last_point_start = good.rfind("{\"policy\"").unwrap();
        let truncated = format!(
            "{}]}}",
            good[..last_point_start].trim_end().trim_end_matches(','),
        );
        let doc = json::parse(&truncated).unwrap();
        assert!(validate_sched_policy(&doc).is_err());
        let doc = json::parse(&good.replacen("\"oram_accesses\": 400,", "", 1)).unwrap();
        assert!(validate_sched_policy(&doc).is_err());
    }

    /// The committed policy matrix at the repo root must always parse and
    /// satisfy the schema (regenerate with
    /// `cargo bench --bench sched_policy_matrix` after intentional changes).
    #[test]
    fn committed_sched_policy_is_valid() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched_policy.json");
        let text = std::fs::read_to_string(path).expect("BENCH_sched_policy.json is committed");
        let doc = json::parse(&text).expect("sched policy matrix parses");
        validate_sched_policy(&doc).expect("sched policy matrix matches schema");
    }

    /// The committed bench trajectory at the repo root must always parse
    /// and satisfy the schema the docs promise (regenerate with
    /// `cargo bench --bench shard_scaling` after intentional changes).
    #[test]
    fn committed_shard_scaling_trajectory_is_valid() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_shard_scaling.json"
        );
        let text = std::fs::read_to_string(path).expect("BENCH_shard_scaling.json is committed");
        let doc = json::parse(&text).expect("trajectory parses");
        validate_shard_scaling(&doc).expect("trajectory matches schema");
    }
}
