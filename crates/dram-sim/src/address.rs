//! Physical address interpretation.
//!
//! The memory controller splits a flat physical byte address into DRAM
//! coordinates (channel, rank, bank, row, column) by slicing bit fields. The
//! *order* of the fields — which bits map to which coordinate — determines
//! how consecutive addresses spread over the module and therefore how much
//! channel/bank parallelism and row-buffer locality an access stream sees.
//!
//! The paper fixes the order to `row:bank:column:rank:channel:offset`
//! (most-significant field first), which combined with the subtree data
//! layout maximizes row-buffer locality for tree-based ORAM (Ren et al.).

use crate::geometry::DramGeometry;

/// A flat physical byte address.
///
/// Newtype so that physical addresses cannot be confused with ORAM block
/// indices or program addresses at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// Decoded DRAM coordinates of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Column (cache-line) index within the row.
    pub column: u32,
}

impl DramLocation {
    /// A flat identifier for the (channel, rank, bank) triple, useful as a
    /// key for per-bank bookkeeping.
    #[must_use]
    pub fn bank_key(&self, geometry: &DramGeometry) -> u32 {
        (self.channel * geometry.ranks_per_channel + self.rank) * geometry.banks_per_rank
            + self.bank
    }
}

/// One bit-field of the address mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// Byte offset within a column (cache line); never reaches the DRAM.
    Offset,
    /// Channel select bits.
    Channel,
    /// Rank select bits.
    Rank,
    /// Column select bits.
    Column,
    /// Bank select bits.
    Bank,
    /// Row select bits.
    Row,
}

/// Bit-field address mapping: a permutation of [`Field`]s from least- to
/// most-significant, with widths derived from a [`DramGeometry`].
///
/// # Examples
///
/// ```
/// use dram_sim::address::{AddressMapping, PhysAddr};
/// use dram_sim::geometry::DramGeometry;
///
/// let g = DramGeometry::hpca_default();
/// let m = AddressMapping::hpca_default(&g);
/// // Consecutive cache lines stripe across the four channels first.
/// assert_eq!(m.decode(PhysAddr(0)).channel, 0);
/// assert_eq!(m.decode(PhysAddr(64)).channel, 1);
/// assert_eq!(m.decode(PhysAddr(128)).channel, 2);
/// assert_eq!(m.decode(PhysAddr(256)).channel, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMapping {
    /// Fields from least significant to most significant.
    order_lsb_first: Vec<Field>,
    /// Bit width of each field, parallel to `order_lsb_first`.
    widths: Vec<u32>,
    /// Precomputed per-coordinate extraction, for the branch-free decode
    /// on the per-request hot path.
    plan: DecodePlan,
    geometry: DramGeometry,
}

/// `(shift, mask)` of each coordinate within a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct DecodePlan {
    channel: (u32, u64),
    rank: (u32, u64),
    column: (u32, u64),
    bank: (u32, u64),
    row: (u32, u64),
}

impl DecodePlan {
    fn new(order_lsb_first: &[Field], widths: &[u32]) -> Self {
        let mut plan = Self::default();
        let mut shift = 0u32;
        for (field, &width) in order_lsb_first.iter().zip(widths) {
            let part = (shift, (1u64 << width) - 1);
            match field {
                Field::Offset => {}
                Field::Channel => plan.channel = part,
                Field::Rank => plan.rank = part,
                Field::Column => plan.column = part,
                Field::Bank => plan.bank = part,
                Field::Row => plan.row = part,
            }
            shift += width;
        }
        plan
    }
}

impl AddressMapping {
    /// Builds a mapping with the given field order (least-significant field
    /// first). Field widths are derived from `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if `order_lsb_first` is not a permutation of all six fields or
    /// if the geometry fails [`DramGeometry::validate`].
    #[must_use]
    pub fn new(geometry: &DramGeometry, order_lsb_first: &[Field]) -> Self {
        if let Err(e) = geometry.validate() {
            panic!("invalid DramGeometry: {e}");
        }
        assert_eq!(order_lsb_first.len(), 6, "mapping must list all 6 fields");
        for f in [
            Field::Offset,
            Field::Channel,
            Field::Rank,
            Field::Column,
            Field::Bank,
            Field::Row,
        ] {
            assert!(
                order_lsb_first.contains(&f),
                "mapping must contain {f:?} exactly once"
            );
        }
        let widths: Vec<u32> = order_lsb_first
            .iter()
            .map(|f| Self::field_width(geometry, *f))
            .collect();
        Self {
            plan: DecodePlan::new(order_lsb_first, &widths),
            order_lsb_first: order_lsb_first.to_vec(),
            widths,
            geometry: geometry.clone(),
        }
    }

    /// The paper's mapping, `row:bank:column:rank:channel:offset` written
    /// most-significant-first — i.e. offset in the lowest bits, then channel,
    /// rank, column, bank, and row on top.
    #[must_use]
    pub fn hpca_default(geometry: &DramGeometry) -> Self {
        Self::new(
            geometry,
            &[
                Field::Offset,
                Field::Channel,
                Field::Rank,
                Field::Column,
                Field::Bank,
                Field::Row,
            ],
        )
    }

    /// A row-interleaved mapping (`channel:rank:bank:row:column:offset`
    /// MSB-first) that sacrifices channel parallelism for naive contiguity;
    /// used by the layout ablation.
    #[must_use]
    pub fn sequential(geometry: &DramGeometry) -> Self {
        Self::new(
            geometry,
            &[
                Field::Offset,
                Field::Column,
                Field::Row,
                Field::Bank,
                Field::Rank,
                Field::Channel,
            ],
        )
    }

    fn field_width(g: &DramGeometry, f: Field) -> u32 {
        let count: u64 = match f {
            Field::Offset => u64::from(g.column_bytes),
            Field::Channel => u64::from(g.channels),
            Field::Rank => u64::from(g.ranks_per_channel),
            Field::Column => u64::from(g.columns_per_row),
            Field::Bank => u64::from(g.banks_per_rank),
            Field::Row => g.rows_per_bank,
        };
        count.trailing_zeros()
    }

    /// Total number of significant address bits.
    #[must_use]
    pub fn address_bits(&self) -> u32 {
        self.widths.iter().sum()
    }

    /// Geometry the mapping was built for.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Decodes a physical address into DRAM coordinates.
    ///
    /// Address bits above [`Self::address_bits`] wrap around (the simulated
    /// module aliases, which is harmless because the layout layer guarantees
    /// in-range addresses).
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> DramLocation {
        let a = addr.0;
        let part = |(shift, mask): (u32, u64)| (a >> shift) & mask;
        DramLocation {
            channel: part(self.plan.channel) as u32,
            rank: part(self.plan.rank) as u32,
            bank: part(self.plan.bank) as u32,
            row: part(self.plan.row),
            column: part(self.plan.column) as u32,
        }
    }

    /// Encodes DRAM coordinates back into a physical address (offset 0).
    ///
    /// Inverse of [`Self::decode`] for in-range coordinates.
    #[must_use]
    pub fn encode(&self, loc: &DramLocation) -> PhysAddr {
        let mut addr = 0u64;
        let mut shift = 0u32;
        for (field, width) in self.order_lsb_first.iter().zip(&self.widths) {
            let v = match field {
                Field::Offset => 0,
                Field::Channel => u64::from(loc.channel),
                Field::Rank => u64::from(loc.rank),
                Field::Column => u64::from(loc.column),
                Field::Bank => u64::from(loc.bank),
                Field::Row => loc.row,
            };
            debug_assert!(v < (1u64 << width) || *width == 0, "{field:?} out of range");
            addr |= v << shift;
            shift += width;
        }
        PhysAddr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_pair() -> (DramGeometry, AddressMapping) {
        let g = DramGeometry::hpca_default();
        let m = AddressMapping::hpca_default(&g);
        (g, m)
    }

    #[test]
    fn address_bits_match_capacity() {
        let (g, m) = default_pair();
        assert_eq!(1u64 << m.address_bits(), g.capacity_bytes());
    }

    #[test]
    fn consecutive_lines_stripe_channels() {
        let (_, m) = default_pair();
        for i in 0..8u64 {
            let loc = m.decode(PhysAddr(i * 64));
            assert_eq!(loc.channel, (i % 4) as u32, "line {i}");
            assert_eq!(loc.column, (i / 4) as u32, "line {i}");
            assert_eq!(loc.row, 0);
            assert_eq!(loc.bank, 0);
        }
    }

    #[test]
    fn bank_changes_after_columns_exhaust() {
        let (g, m) = default_pair();
        // One full row set across all channels:
        let row_set = g.row_bytes() * u64::from(g.channels);
        let last_of_bank0 = m.decode(PhysAddr(row_set - 64));
        let first_of_bank1 = m.decode(PhysAddr(row_set));
        assert_eq!(last_of_bank0.bank, 0);
        assert_eq!(first_of_bank1.bank, 1);
        assert_eq!(first_of_bank1.row, 0);
        assert_eq!(first_of_bank1.column, 0);
    }

    #[test]
    fn row_changes_after_banks_exhaust() {
        let (g, m) = default_pair();
        let per_row_index = g.row_bytes() * u64::from(g.channels) * u64::from(g.banks_per_rank);
        let loc = m.decode(PhysAddr(per_row_index));
        assert_eq!(loc.row, 1);
        assert_eq!(loc.bank, 0);
        assert_eq!(loc.channel, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (_, m) = default_pair();
        let loc = DramLocation {
            channel: 3,
            rank: 0,
            bank: 5,
            row: 12345,
            column: 55,
        };
        assert_eq!(m.decode(m.encode(&loc)), loc);
    }

    #[test]
    fn sequential_mapping_keeps_channel_in_msbs() {
        let g = DramGeometry::hpca_default();
        let m = AddressMapping::sequential(&g);
        // The first channel's worth of capacity stays in channel 0.
        let quarter = g.capacity_bytes() / u64::from(g.channels);
        assert_eq!(m.decode(PhysAddr(0)).channel, 0);
        assert_eq!(m.decode(PhysAddr(quarter - 64)).channel, 0);
        assert_eq!(m.decode(PhysAddr(quarter)).channel, 1);
    }

    #[test]
    fn bank_key_is_unique_per_bank() {
        let (g, m) = default_pair();
        let mut seen = std::collections::HashSet::new();
        for channel in 0..g.channels {
            for bank in 0..g.banks_per_rank {
                let loc = DramLocation {
                    channel,
                    rank: 0,
                    bank,
                    row: 0,
                    column: 0,
                };
                // Round-trip through an address to confirm the key survives.
                let decoded = m.decode(m.encode(&loc));
                assert!(seen.insert(decoded.bank_key(&g)), "duplicate key");
            }
        }
        assert_eq!(seen.len(), g.total_banks() as usize);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr(0x40).to_string(), "0x40");
    }

    #[test]
    #[should_panic(expected = "mapping must list all 6 fields")]
    fn incomplete_mapping_panics() {
        let g = DramGeometry::hpca_default();
        let _ = AddressMapping::new(&g, &[Field::Offset, Field::Row]);
    }
}
