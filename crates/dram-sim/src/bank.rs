//! Per-bank state machine and timing bookkeeping.

use crate::command::IssueError;
use crate::timing::TimingParams;

/// State of one DRAM bank: the open row (if any) plus the earliest cycles at
/// which each command class becomes legal again, derived from the timing
/// constraints of previously issued commands.
///
/// The bank does not know about rank- or channel-level constraints (tRRD,
/// tFAW, data bus); those live in [`crate::rank::Rank`] and
/// [`crate::channel::Channel`].
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row, or `None` when precharged.
    open_row: Option<u64>,
    /// Earliest cycle an ACT may issue (tRP after PRE, tRC after ACT).
    next_act: u64,
    /// Earliest cycle a PRE may issue (tRAS after ACT, tRTP after RD, tWR
    /// after the end of a write burst).
    next_pre: u64,
    /// Earliest cycle a RD may issue (tRCD after ACT).
    next_rd: u64,
    /// Earliest cycle a WR may issue (tRCD after ACT).
    next_wr: u64,
    /// End of the bank's most recent busy window (for idle accounting).
    busy_until: u64,
    /// Total cycles this bank has been busy (union of command windows).
    busy_cycles: u64,
    /// Number of ACTs issued (row opens) — one per row-buffer miss/conflict.
    activations: u64,
}

impl Bank {
    /// A fresh, precharged bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Currently open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Total busy cycles accumulated so far (union of command windows).
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of ACT commands this bank has executed.
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// End of the bank's most recent busy window: the bank is executing a
    /// command (or restoring/refreshing) until this cycle.
    #[must_use]
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Checks whether an ACT for `row` may issue at `cycle`.
    ///
    /// # Errors
    ///
    /// [`IssueError::BankNotPrecharged`] when a row is open, or
    /// [`IssueError::BankTiming`] when tRP/tRC have not elapsed.
    pub fn can_activate(&self, cycle: u64) -> Result<(), IssueError> {
        if self.open_row.is_some() {
            return Err(IssueError::BankNotPrecharged);
        }
        if cycle < self.next_act {
            return Err(IssueError::BankTiming {
                ready_at: self.next_act,
            });
        }
        Ok(())
    }

    /// Checks whether a PRE may issue at `cycle`.
    ///
    /// # Errors
    ///
    /// [`IssueError::BankClosed`] when already precharged, or
    /// [`IssueError::BankTiming`] when tRAS/tRTP/tWR have not elapsed.
    pub fn can_precharge(&self, cycle: u64) -> Result<(), IssueError> {
        if self.open_row.is_none() {
            return Err(IssueError::BankClosed);
        }
        if cycle < self.next_pre {
            return Err(IssueError::BankTiming {
                ready_at: self.next_pre,
            });
        }
        Ok(())
    }

    /// Checks whether a column command for `row` may issue at `cycle`.
    ///
    /// # Errors
    ///
    /// [`IssueError::BankClosed`], [`IssueError::RowMismatch`] or
    /// [`IssueError::BankTiming`] (tRCD pending).
    pub fn can_column(&self, cycle: u64, row: u64, is_write: bool) -> Result<(), IssueError> {
        match self.open_row {
            None => return Err(IssueError::BankClosed),
            Some(open) if open != row => return Err(IssueError::RowMismatch { open_row: open }),
            Some(_) => {}
        }
        let ready = if is_write { self.next_wr } else { self.next_rd };
        if cycle < ready {
            return Err(IssueError::BankTiming { ready_at: ready });
        }
        Ok(())
    }

    /// Applies an ACT issued at `cycle` for `row`.
    ///
    /// # Panics
    ///
    /// Debug-panics if [`Self::can_activate`] would fail.
    pub fn apply_activate(&mut self, cycle: u64, row: u64, t: &TimingParams) {
        debug_assert!(self.can_activate(cycle).is_ok(), "illegal ACT");
        self.open_row = Some(row);
        self.next_rd = cycle + t.t_rcd;
        self.next_wr = cycle + t.t_rcd;
        self.next_pre = self.next_pre.max(cycle + t.t_ras);
        self.next_act = cycle + t.t_rc;
        self.activations += 1;
        self.credit_busy(cycle, cycle + t.t_rcd);
    }

    /// Applies a PRE issued at `cycle`.
    ///
    /// # Panics
    ///
    /// Debug-panics if [`Self::can_precharge`] would fail.
    pub fn apply_precharge(&mut self, cycle: u64, t: &TimingParams) {
        debug_assert!(self.can_precharge(cycle).is_ok(), "illegal PRE");
        self.open_row = None;
        self.next_act = self.next_act.max(cycle + t.t_rp);
        self.credit_busy(cycle, cycle + t.t_rp);
    }

    /// Applies a RD issued at `cycle`; returns the cycle at which the last
    /// data beat leaves the bank.
    ///
    /// # Panics
    ///
    /// Debug-panics if [`Self::can_column`] would fail.
    pub fn apply_read(&mut self, cycle: u64, t: &TimingParams) -> u64 {
        debug_assert!(
            self.open_row.is_some() && cycle >= self.next_rd,
            "illegal RD"
        );
        let data_end = cycle + t.cl + t.t_burst;
        self.next_pre = self.next_pre.max(cycle + t.t_rtp);
        // tCCD for same-bank back-to-back columns (rank enforces cross-bank).
        self.next_rd = self.next_rd.max(cycle + t.t_ccd);
        self.next_wr = self.next_wr.max(cycle + t.t_ccd);
        self.credit_busy(cycle, data_end);
        data_end
    }

    /// Applies a WR issued at `cycle`; returns the cycle at which the last
    /// data beat has been written into the row buffer.
    ///
    /// # Panics
    ///
    /// Debug-panics if [`Self::can_column`] would fail.
    pub fn apply_write(&mut self, cycle: u64, t: &TimingParams) -> u64 {
        debug_assert!(
            self.open_row.is_some() && cycle >= self.next_wr,
            "illegal WR"
        );
        let data_end = cycle + t.cwl + t.t_burst;
        self.next_pre = self.next_pre.max(data_end + t.t_wr);
        self.next_rd = self.next_rd.max(cycle + t.t_ccd);
        self.next_wr = self.next_wr.max(cycle + t.t_ccd);
        self.credit_busy(cycle, data_end);
        data_end
    }

    /// Injects a weak-row stall at `cycle`, immediately after an ACT: the
    /// freshly opened row needs `stall` extra restore cycles before column
    /// commands or a precharge may target it. The row stays open and no
    /// state machine transition happens — the fault is timing-only, so
    /// every subsequently legal command sequence stays legal.
    pub(crate) fn inject_stall(&mut self, cycle: u64, stall: u64) {
        debug_assert!(self.open_row.is_some(), "stall only follows an ACT");
        self.next_rd += stall;
        self.next_wr += stall;
        self.next_pre += stall;
        self.credit_busy(cycle, self.next_rd);
    }

    /// Forces the bank into the precharged state at `cycle` and blocks it
    /// until `until` (used by the refresh model).
    pub fn force_refresh(&mut self, cycle: u64, until: u64) {
        self.open_row = None;
        self.next_act = self.next_act.max(until);
        self.credit_busy(cycle, until);
    }

    /// Extends the bank's busy window to cover `[from, to)`, accumulating
    /// only the non-overlapping part so overlapping command windows are not
    /// double counted.
    fn credit_busy(&mut self, from: u64, to: u64) {
        let start = from.max(self.busy_until);
        if to > start {
            self.busy_cycles += to - start;
        }
        self.busy_until = self.busy_until.max(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::test_fast()
    }

    #[test]
    fn fresh_bank_accepts_act_only() {
        let b = Bank::new();
        assert!(b.can_activate(0).is_ok());
        assert_eq!(b.can_precharge(0), Err(IssueError::BankClosed));
        assert_eq!(b.can_column(0, 0, false), Err(IssueError::BankClosed));
    }

    #[test]
    fn act_opens_row_and_blocks_second_act() {
        let mut b = Bank::new();
        b.apply_activate(0, 5, &t());
        assert_eq!(b.open_row(), Some(5));
        assert_eq!(b.can_activate(1), Err(IssueError::BankNotPrecharged));
    }

    #[test]
    fn trcd_gates_column_commands() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp);
        assert_eq!(
            b.can_column(tp.t_rcd - 1, 5, false),
            Err(IssueError::BankTiming { ready_at: tp.t_rcd })
        );
        assert!(b.can_column(tp.t_rcd, 5, false).is_ok());
    }

    #[test]
    fn row_mismatch_reports_open_row() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp);
        assert_eq!(
            b.can_column(tp.t_rcd, 6, false),
            Err(IssueError::RowMismatch { open_row: 5 })
        );
    }

    #[test]
    fn tras_gates_precharge() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp);
        assert_eq!(
            b.can_precharge(tp.t_ras - 1),
            Err(IssueError::BankTiming { ready_at: tp.t_ras })
        );
        assert!(b.can_precharge(tp.t_ras).is_ok());
    }

    #[test]
    fn precharge_then_trp_gates_act() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp);
        b.apply_precharge(tp.t_ras, &tp);
        assert!(b.open_row().is_none());
        // next ACT limited by both tRC (from ACT) and tRP (from PRE).
        let ready = (tp.t_ras + tp.t_rp).max(tp.t_rc);
        assert_eq!(
            b.can_activate(ready - 1),
            Err(IssueError::BankTiming { ready_at: ready })
        );
        assert!(b.can_activate(ready).is_ok());
    }

    #[test]
    fn write_recovery_gates_precharge() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp);
        let wr_cycle = tp.t_rcd;
        let data_end = b.apply_write(wr_cycle, &tp);
        assert_eq!(data_end, wr_cycle + tp.cwl + tp.t_burst);
        let pre_ready = data_end + tp.t_wr;
        assert_eq!(
            b.can_precharge(pre_ready - 1),
            Err(IssueError::BankTiming {
                ready_at: pre_ready
            })
        );
        assert!(b.can_precharge(pre_ready).is_ok());
    }

    #[test]
    fn read_returns_data_after_cl_plus_burst() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp);
        let end = b.apply_read(tp.t_rcd, &tp);
        assert_eq!(end, tp.t_rcd + tp.cl + tp.t_burst);
    }

    #[test]
    fn tccd_spaces_back_to_back_reads() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp);
        b.apply_read(tp.t_rcd, &tp);
        let ready = tp.t_rcd + tp.t_ccd;
        assert_eq!(
            b.can_column(ready - 1, 5, false),
            Err(IssueError::BankTiming { ready_at: ready })
        );
        assert!(b.can_column(ready, 5, false).is_ok());
    }

    #[test]
    fn busy_cycles_do_not_double_count_overlap() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp); // busy [0, t_rcd)
        b.apply_read(tp.t_rcd, &tp); // busy [t_rcd, t_rcd+cl+burst)
        let expected = tp.t_rcd + tp.cl + tp.t_burst;
        assert_eq!(b.busy_cycles(), expected);
    }

    #[test]
    fn refresh_closes_row_and_blocks_act() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 5, &tp);
        b.force_refresh(50, 70);
        assert!(b.open_row().is_none());
        assert_eq!(
            b.can_activate(69),
            Err(IssueError::BankTiming { ready_at: 70 })
        );
        assert!(b.can_activate(70).is_ok());
    }

    #[test]
    fn activation_counter_increments() {
        let mut b = Bank::new();
        let tp = t();
        b.apply_activate(0, 1, &tp);
        b.apply_precharge(tp.t_ras, &tp);
        b.apply_activate(tp.t_rc.max(tp.t_ras + tp.t_rp), 2, &tp);
        assert_eq!(b.activations(), 2);
    }
}
