//! Per-channel shared-bus constraints.
//!
//! All ranks of a channel share one command bus (one command per cycle) and
//! one data bus (one burst at a time, with a turnaround penalty between
//! bursts of opposite direction).

use crate::command::IssueError;
use crate::rank::Rank;
use crate::timing::TimingParams;

/// Direction of the most recent data-bus burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusDir {
    Idle,
    Read,
    Write,
}

/// One memory channel: its ranks plus command/data bus occupancy.
#[derive(Debug, Clone)]
pub struct Channel {
    ranks: Vec<Rank>,
    /// Cycle at which the current data-bus burst ends.
    data_busy_until: u64,
    /// Direction of the last burst, for the turnaround penalty.
    last_dir: BusDir,
    /// Cycle of the last command issued on the command bus.
    last_cmd_cycle: Option<u64>,
    /// Total data-bus busy cycles (utilization statistic).
    data_busy_cycles: u64,
}

impl Channel {
    /// Creates a channel with `ranks` ranks of `banks_per_rank` banks split
    /// into `bank_groups` groups.
    #[must_use]
    pub fn new(ranks: u32, banks_per_rank: u32, bank_groups: u32, t: &TimingParams) -> Self {
        Self {
            ranks: (0..ranks)
                .map(|_| Rank::with_groups(banks_per_rank, bank_groups, t))
                .collect(),
            data_busy_until: 0,
            last_dir: BusDir::Idle,
            last_cmd_cycle: None,
            data_busy_cycles: 0,
        }
    }

    /// Immutable access to a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn rank(&self, rank: u32) -> &Rank {
        &self.ranks[rank as usize]
    }

    /// Mutable access to a rank (crate-internal).
    pub(crate) fn rank_mut(&mut self, rank: u32) -> &mut Rank {
        &mut self.ranks[rank as usize]
    }

    /// Number of ranks on the channel.
    #[must_use]
    pub fn rank_count(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Total cycles the data bus has carried bursts.
    #[must_use]
    pub fn data_busy_cycles(&self) -> u64 {
        self.data_busy_cycles
    }

    /// Advances per-rank housekeeping (refresh) to `cycle`.
    pub fn tick(&mut self, cycle: u64, t: &TimingParams) {
        for r in &mut self.ranks {
            r.tick(cycle, t);
        }
    }

    /// Checks the one-command-per-cycle command-bus constraint.
    ///
    /// # Errors
    ///
    /// [`IssueError::RankTiming`] with `ready_at` of the next free slot.
    pub fn can_use_cmd_bus(&self, cycle: u64) -> Result<(), IssueError> {
        match self.last_cmd_cycle {
            Some(c) if c == cycle => Err(IssueError::RankTiming {
                ready_at: cycle + 1,
            }),
            _ => Ok(()),
        }
    }

    /// Records a command-bus slot consumed at `cycle`.
    pub fn use_cmd_bus(&mut self, cycle: u64) {
        debug_assert!(self.can_use_cmd_bus(cycle).is_ok());
        self.last_cmd_cycle = Some(cycle);
    }

    /// Checks whether a burst of the given direction, starting its data phase
    /// at `data_start`, fits on the data bus.
    ///
    /// # Errors
    ///
    /// [`IssueError::DataBusBusy`] carrying the earliest legal start.
    pub fn can_burst(
        &self,
        data_start: u64,
        is_write: bool,
        t: &TimingParams,
    ) -> Result<(), IssueError> {
        let dir = if is_write {
            BusDir::Write
        } else {
            BusDir::Read
        };
        let mut earliest = self.data_busy_until;
        if self.last_dir != BusDir::Idle && self.last_dir != dir {
            earliest += t.t_turnaround;
        }
        if data_start < earliest {
            Err(IssueError::DataBusBusy { ready_at: earliest })
        } else {
            Ok(())
        }
    }

    /// Reserves the data bus for a burst of `t.t_burst` cycles starting at
    /// `data_start`.
    pub fn reserve_burst(&mut self, data_start: u64, is_write: bool, t: &TimingParams) {
        debug_assert!(self.can_burst(data_start, is_write, t).is_ok());
        self.data_busy_until = data_start + t.t_burst;
        self.last_dir = if is_write {
            BusDir::Write
        } else {
            BusDir::Read
        };
        self.data_busy_cycles += t.t_burst;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::test_fast()
    }

    #[test]
    fn cmd_bus_one_per_cycle() {
        let mut c = Channel::new(1, 4, 1, &t());
        assert!(c.can_use_cmd_bus(10).is_ok());
        c.use_cmd_bus(10);
        assert_eq!(
            c.can_use_cmd_bus(10),
            Err(IssueError::RankTiming { ready_at: 11 })
        );
        assert!(c.can_use_cmd_bus(11).is_ok());
    }

    #[test]
    fn data_bus_serializes_bursts() {
        let tp = t();
        let mut c = Channel::new(1, 4, 1, &tp);
        c.reserve_burst(10, false, &tp);
        assert_eq!(
            c.can_burst(10 + tp.t_burst - 1, false, &tp),
            Err(IssueError::DataBusBusy {
                ready_at: 10 + tp.t_burst
            })
        );
        assert!(c.can_burst(10 + tp.t_burst, false, &tp).is_ok());
    }

    #[test]
    fn turnaround_penalty_on_direction_change() {
        let tp = t();
        let mut c = Channel::new(1, 4, 1, &tp);
        c.reserve_burst(10, false, &tp);
        let end = 10 + tp.t_burst;
        // Same direction: ok right after.
        assert!(c.can_burst(end, false, &tp).is_ok());
        // Opposite direction: extra turnaround.
        assert_eq!(
            c.can_burst(end, true, &tp),
            Err(IssueError::DataBusBusy {
                ready_at: end + tp.t_turnaround
            })
        );
        assert!(c.can_burst(end + tp.t_turnaround, true, &tp).is_ok());
    }

    #[test]
    fn busy_cycles_accumulate() {
        let tp = t();
        let mut c = Channel::new(1, 4, 1, &tp);
        c.reserve_burst(0, false, &tp);
        c.reserve_burst(100, true, &tp);
        assert_eq!(c.data_busy_cycles(), 2 * tp.t_burst);
    }

    #[test]
    fn tick_reaches_all_ranks() {
        let tp = t();
        let mut c = Channel::new(2, 4, 1, &tp);
        c.tick(tp.t_refi, &tp);
        assert_eq!(c.rank(0).refreshes(), 1);
        assert_eq!(c.rank(1).refreshes(), 1);
    }
}
