//! DRAM commands as issued on the command bus.

use crate::address::DramLocation;

/// The kind of a DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Open (`ACT`) a row: copy it into the bank's row buffer.
    Activate,
    /// Close (`PRE`) the open row: restore the row buffer to the array.
    Precharge,
    /// Read (`RD`) a column from the open row buffer.
    Read,
    /// Write (`WR`) a column into the open row buffer.
    Write,
}

impl CommandKind {
    /// Whether the command transfers data on the data bus.
    #[must_use]
    pub fn carries_data(self) -> bool {
        matches!(self, Self::Read | Self::Write)
    }

    /// Short mnemonic used in traces and reports (`ACT`, `PRE`, `RD`, `WR`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Self::Activate => "ACT",
            Self::Precharge => "PRE",
            Self::Read => "RD",
            Self::Write => "WR",
        }
    }
}

impl std::fmt::Display for CommandKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A fully specified DRAM command: what to do and where.
///
/// For [`CommandKind::Precharge`] only the bank coordinates are meaningful;
/// for [`CommandKind::Activate`] the row is the row to open; for column
/// commands the row must match the bank's open row and `column` selects the
/// cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCommand {
    /// Command type.
    pub kind: CommandKind,
    /// Target coordinates.
    pub loc: DramLocation,
}

impl DramCommand {
    /// Creates an ACT command opening `loc.row` in `loc`'s bank.
    #[must_use]
    pub fn activate(loc: DramLocation) -> Self {
        Self {
            kind: CommandKind::Activate,
            loc,
        }
    }

    /// Creates a PRE command closing `loc`'s bank.
    #[must_use]
    pub fn precharge(loc: DramLocation) -> Self {
        Self {
            kind: CommandKind::Precharge,
            loc,
        }
    }

    /// Creates a RD command for `loc`'s column.
    #[must_use]
    pub fn read(loc: DramLocation) -> Self {
        Self {
            kind: CommandKind::Read,
            loc,
        }
    }

    /// Creates a WR command for `loc`'s column.
    #[must_use]
    pub fn write(loc: DramLocation) -> Self {
        Self {
            kind: CommandKind::Write,
            loc,
        }
    }
}

impl std::fmt::Display for DramCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ch{} rk{} bk{} row{} col{}",
            self.kind,
            self.loc.channel,
            self.loc.rank,
            self.loc.bank,
            self.loc.row,
            self.loc.column
        )
    }
}

/// Why a command could not be issued at a given cycle.
///
/// Returned by `DramModule::can_issue`; schedulers treat any error as "try
/// again later (or try another command)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueError {
    /// The bank has a row open but ACT was requested.
    BankNotPrecharged,
    /// A column command or PRE targeted a closed bank.
    BankClosed,
    /// A column command targeted a bank whose open row differs.
    RowMismatch {
        /// The row currently latched in the row buffer.
        open_row: u64,
    },
    /// A bank-level timing parameter has not elapsed yet.
    BankTiming {
        /// Earliest cycle at which the command becomes legal.
        ready_at: u64,
    },
    /// A rank-level constraint (tRRD, tFAW, tWTR) has not elapsed.
    RankTiming {
        /// Earliest cycle at which the command becomes legal.
        ready_at: u64,
    },
    /// The shared data bus is occupied for the burst window.
    DataBusBusy {
        /// Earliest cycle at which the burst could start being scheduled.
        ready_at: u64,
    },
    /// The rank is executing a refresh.
    RefreshInProgress {
        /// Cycle at which the refresh completes.
        ready_at: u64,
    },
    /// Coordinates exceed the configured geometry.
    OutOfRange,
}

impl IssueError {
    /// The earliest cycle hint carried by the error, if any.
    #[must_use]
    pub fn ready_at(&self) -> Option<u64> {
        match self {
            Self::BankTiming { ready_at }
            | Self::RankTiming { ready_at }
            | Self::DataBusBusy { ready_at }
            | Self::RefreshInProgress { ready_at } => Some(*ready_at),
            _ => None,
        }
    }
}

impl std::fmt::Display for IssueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BankNotPrecharged => write!(f, "bank already has an open row"),
            Self::BankClosed => write!(f, "bank has no open row"),
            Self::RowMismatch { open_row } => {
                write!(f, "open row {open_row} does not match command row")
            }
            Self::BankTiming { ready_at } => {
                write!(f, "bank timing not met (ready at cycle {ready_at})")
            }
            Self::RankTiming { ready_at } => {
                write!(f, "rank timing not met (ready at cycle {ready_at})")
            }
            Self::DataBusBusy { ready_at } => {
                write!(f, "data bus busy (ready at cycle {ready_at})")
            }
            Self::RefreshInProgress { ready_at } => {
                write!(f, "refresh in progress (done at cycle {ready_at})")
            }
            Self::OutOfRange => write!(f, "coordinates out of configured geometry"),
        }
    }
}

impl std::error::Error for IssueError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::DramLocation;

    fn loc() -> DramLocation {
        DramLocation {
            channel: 1,
            rank: 0,
            bank: 2,
            row: 7,
            column: 3,
        }
    }

    #[test]
    fn data_commands_carry_data() {
        assert!(CommandKind::Read.carries_data());
        assert!(CommandKind::Write.carries_data());
        assert!(!CommandKind::Activate.carries_data());
        assert!(!CommandKind::Precharge.carries_data());
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(DramCommand::activate(loc()).kind, CommandKind::Activate);
        assert_eq!(DramCommand::precharge(loc()).kind, CommandKind::Precharge);
        assert_eq!(DramCommand::read(loc()).kind, CommandKind::Read);
        assert_eq!(DramCommand::write(loc()).kind, CommandKind::Write);
    }

    #[test]
    fn display_includes_coordinates() {
        let s = DramCommand::read(loc()).to_string();
        assert!(s.contains("RD"));
        assert!(s.contains("ch1"));
        assert!(s.contains("row7"));
    }

    #[test]
    fn ready_at_extraction() {
        assert_eq!(IssueError::BankTiming { ready_at: 5 }.ready_at(), Some(5));
        assert_eq!(IssueError::BankClosed.ready_at(), None);
    }

    #[test]
    fn errors_display_nonempty() {
        for e in [
            IssueError::BankNotPrecharged,
            IssueError::BankClosed,
            IssueError::RowMismatch { open_row: 1 },
            IssueError::BankTiming { ready_at: 2 },
            IssueError::RankTiming { ready_at: 3 },
            IssueError::DataBusBusy { ready_at: 4 },
            IssueError::RefreshInProgress { ready_at: 5 },
            IssueError::OutOfRange,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
