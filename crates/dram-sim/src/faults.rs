//! Deterministic DRAM-level fault injection.
//!
//! Two fault classes are modeled, both purely *timing-side*: they delay
//! commands but never change which commands are legal in what order, so
//! every run with faults enabled still passes the JEDEC shadow checkers
//! (slower than a lower bound is always legal).
//!
//! * **Refresh storms** — a refresh whose tRFC is stretched by an integer
//!   factor, modeling row-degradation-driven extended refresh (or refresh
//!   postponement debt being paid back all at once).
//! * **Weak rows** — an activation that needs extra restore time before
//!   column commands may follow, modeling marginal cells. Persistent stuck
//!   bits are *not* modeled here: a stuck cell corrupts data, not timing,
//!   and surfaces at the ORAM layer as a ciphertext integrity fault (see
//!   `ring-oram`'s resilience layer).
//!
//! Every decision derives from a stateless splitmix64 mix of the
//! configured seed and a deterministic counter, so a given seed replays
//! the identical fault schedule on every run.

/// Configuration for DRAM fault injection; see the module docs for the
/// fault model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramFaultConfig {
    /// Seed for the fault schedule (independent of all protocol RNGs).
    pub seed: u64,
    /// Probability that any given refresh becomes a storm.
    pub storm_rate: f64,
    /// Multiplier applied to tRFC during a storm (≥ 1).
    pub storm_factor: u64,
    /// Probability that an ACT hits a weak row.
    pub weak_row_rate: f64,
    /// Extra cycles a weak row needs before column commands and precharge
    /// become legal.
    pub weak_row_stall: u64,
}

impl DramFaultConfig {
    /// Checks rates are probabilities and the storm factor is usable.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("storm_rate", self.storm_rate),
            ("weak_row_rate", self.weak_row_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if self.storm_rate > 0.0 && self.storm_factor < 1 {
            return Err("storm_factor must be >= 1 when storms are enabled".into());
        }
        Ok(())
    }
}

/// Finalizer of splitmix64: a full-avalanche 64-bit mixer.
#[must_use]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a mixed word to a uniform f64 in [0, 1) using its top 53 bits.
#[must_use]
pub(crate) fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(DramFaultConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_rates_rejected() {
        let cfg = DramFaultConfig {
            storm_rate: 1.5,
            ..DramFaultConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = DramFaultConfig {
            storm_rate: 0.5,
            storm_factor: 0,
            ..DramFaultConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        let p = u01(mix64(12345));
        assert!((0.0..1.0).contains(&p));
    }
}
