//! Physical organization of the simulated memory module.

/// Geometry of a DRAM-based main memory: how many channels, ranks, banks,
/// rows and columns exist, and how large each addressable unit is.
///
/// The defaults mirror Table II of the paper: 4 channels, 1 rank per channel,
/// 8 banks per rank, a 4 KiB row buffer holding 64 cache lines of 64 B.
///
/// # Examples
///
/// ```
/// use dram_sim::geometry::DramGeometry;
///
/// let g = DramGeometry::hpca_default();
/// assert_eq!(g.channels, 4);
/// assert_eq!(g.row_bytes(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramGeometry {
    /// Independent channels, each with its own command/address/data buses.
    pub channels: u32,
    /// Ranks sharing each channel's buses.
    pub ranks_per_channel: u32,
    /// Banks per rank (independently schedulable arrays).
    pub banks_per_rank: u32,
    /// Bank groups per rank (DDR4+; 1 disables bank-group timing). Banks
    /// `b` belong to group `b % bank_groups`.
    pub bank_groups: u32,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Columns per row, where one column is one cache line ("cachelines" in
    /// the paper's Table II).
    pub columns_per_row: u32,
    /// Bytes per column (cache-line size).
    pub column_bytes: u32,
}

impl DramGeometry {
    /// The paper's Table II configuration: 4 channels x 1 rank x 8 banks
    /// with a 4 KiB row buffer (64 cache lines of 64 B).
    ///
    /// Table II is internally inconsistent: it states 128 columns per row
    /// *and* a 4 KiB row buffer (128 x 64 B = 8 KiB), and 16384 rows *and*
    /// 8 GB/channel (16384 rows x 8 banks x 4 KiB = 512 MiB). We honor the
    /// 4 KiB row buffer (which the subtree-layout discussion in the paper
    /// relies on) and widen the row index to reach the stated 8 GB/channel
    /// so the module can back the 20 GB ORAM tree. Banks are materialized
    /// lazily, so the extra rows cost nothing.
    #[must_use]
    pub fn hpca_default() -> Self {
        Self {
            channels: 4,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            bank_groups: 1,
            rows_per_bank: 1 << 18, // 256 Ki rows -> 8 GiB per channel
            columns_per_row: 64,
            column_bytes: 64,
        }
    }

    /// A small geometry for unit tests: 2 channels x 1 rank x 4 banks with
    /// tiny rows, so tests can exercise row/bank/channel wrap-around quickly.
    #[must_use]
    pub fn test_small() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            bank_groups: 1,
            rows_per_bank: 64,
            columns_per_row: 8,
            column_bytes: 64,
        }
    }

    /// A DDR4-style geometry: the paper's module with 16 banks in 4 bank
    /// groups per rank (DDR4 x4/x8 devices).
    #[must_use]
    pub fn ddr4_default() -> Self {
        Self {
            channels: 4,
            ranks_per_channel: 1,
            banks_per_rank: 16,
            bank_groups: 4,
            rows_per_bank: 1 << 17,
            columns_per_row: 64,
            column_bytes: 64,
        }
    }

    /// A mid-size geometry (2 GiB: 2 channels x 8 banks x 16 Ki rows of
    /// 4 KiB) for system-level tests that need room for a real ORAM tree
    /// while keeping the paper's row-buffer size.
    #[must_use]
    pub fn test_medium() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            bank_groups: 1,
            rows_per_bank: 1 << 14,
            columns_per_row: 64,
            column_bytes: 64,
        }
    }

    /// Bytes stored in (and restored from) one row buffer.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        u64::from(self.columns_per_row) * u64::from(self.column_bytes)
    }

    /// Total module capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.row_bytes()
            * self.rows_per_bank
            * u64::from(self.banks_per_rank)
            * u64::from(self.ranks_per_channel)
            * u64::from(self.channels)
    }

    /// Total number of banks across the whole module.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Validates that every dimension is a nonzero power of two (required by
    /// the bit-field address mapping).
    ///
    /// # Errors
    ///
    /// Returns a description of the first non-power-of-two dimension.
    pub fn validate(&self) -> Result<(), String> {
        fn pow2(name: &str, v: u64) -> Result<(), String> {
            if v == 0 || !v.is_power_of_two() {
                Err(format!("{name} ({v}) must be a nonzero power of two"))
            } else {
                Ok(())
            }
        }
        pow2("channels", u64::from(self.channels))?;
        pow2("ranks_per_channel", u64::from(self.ranks_per_channel))?;
        pow2("banks_per_rank", u64::from(self.banks_per_rank))?;
        pow2("bank_groups", u64::from(self.bank_groups))?;
        if self.bank_groups > self.banks_per_rank {
            return Err(format!(
                "bank_groups ({}) must not exceed banks_per_rank ({})",
                self.bank_groups, self.banks_per_rank
            ));
        }
        pow2("rows_per_bank", self.rows_per_bank)?;
        pow2("columns_per_row", u64::from(self.columns_per_row))?;
        pow2("column_bytes", u64::from(self.column_bytes))?;
        Ok(())
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::hpca_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_row_buffer_is_4k() {
        assert_eq!(DramGeometry::hpca_default().row_bytes(), 4096);
    }

    #[test]
    fn default_capacity_is_32_gib() {
        assert_eq!(
            DramGeometry::hpca_default().capacity_bytes(),
            32 * (1u64 << 30)
        );
    }

    #[test]
    fn default_validates() {
        DramGeometry::hpca_default().validate().expect("valid");
        DramGeometry::test_small().validate().expect("valid");
    }

    #[test]
    fn total_banks_counts_all_levels() {
        assert_eq!(DramGeometry::hpca_default().total_banks(), 32);
        assert_eq!(DramGeometry::test_small().total_banks(), 8);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut g = DramGeometry::hpca_default();
        g.channels = 3;
        assert!(g.validate().is_err());
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut g = DramGeometry::hpca_default();
        g.banks_per_rank = 0;
        assert!(g.validate().is_err());
    }
}
