//! # dram-sim — a cycle-accurate DRAM main-memory timing model
//!
//! This crate is the substrate the String ORAM reproduction runs on. The
//! HPCA 2021 paper evaluates on USIMM (the Utah SImulated Memory Module);
//! `dram-sim` re-implements the same abstraction in safe Rust:
//!
//! * a **passive, command-level DRAM model** ([`DramModule`]) that enforces
//!   JEDEC DDR3/DDR4 timing constraints (tRCD, tRP, CL/CWL, tRAS, tRC, tCCD,
//!   tRRD, tFAW, tWR, tWTR, tRTP), per-channel command- and data-bus
//!   occupancy with read/write turnaround, and periodic refresh;
//! * a **bit-field address mapping** ([`address::AddressMapping`]) with the
//!   paper's `row:bank:column:rank:channel:offset` order as the default;
//! * **busy/idle accounting per bank**, which the paper's Fig. 12(a) (bank
//!   idle time) is computed from.
//!
//! Scheduling policy — open-page FR-FCFS, transaction-based ORAM scheduling
//! and the paper's Proactive Bank scheduler — lives in the `mem-sched`
//! crate; this crate only answers "may this command issue now?" and "what
//! happens if it does?".
//!
//! # Example
//!
//! ```
//! use dram_sim::{DramModule, DramCommand, DramLocation};
//! use dram_sim::geometry::DramGeometry;
//! use dram_sim::timing::TimingParams;
//!
//! let mut dram = DramModule::new(DramGeometry::test_small(), TimingParams::test_fast());
//! let loc = DramLocation { channel: 0, rank: 0, bank: 1, row: 7, column: 0 };
//!
//! // A row-buffer miss: ACT then RD.
//! dram.issue(DramCommand::activate(loc), 0).unwrap();
//! let rd_at = dram.timing().t_rcd;
//! let done = dram.issue(DramCommand::read(loc), rd_at).unwrap().data_done_at.unwrap();
//! assert_eq!(done, rd_at + dram.timing().cl + dram.timing().t_burst);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::redundant_clone)]
#![warn(clippy::large_enum_variant)]
// Library code must surface failures as values or documented panics, never
// as ad-hoc unwraps; tests are free to unwrap (a panic IS the failure).
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod address;
pub mod bank;
pub mod channel;
pub mod command;
pub mod faults;
pub mod geometry;
pub mod module;
pub mod power;
pub mod rank;
pub mod stats;
pub mod timing;

pub use address::{AddressMapping, DramLocation, PhysAddr};
pub use command::{CommandKind, DramCommand, IssueError};
pub use faults::DramFaultConfig;
pub use geometry::DramGeometry;
pub use module::{DramModule, DramSnapshot, IssueOutcome};
pub use stats::DramStats;
pub use timing::TimingParams;
