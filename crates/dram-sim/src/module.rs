//! The integrated DRAM module: geometry + timing + all channel state.

use crate::address::{AddressMapping, DramLocation, PhysAddr};
use crate::channel::Channel;
use crate::command::{CommandKind, DramCommand, IssueError};
use crate::faults::{mix64, u01, DramFaultConfig};
use crate::geometry::DramGeometry;
use crate::stats::DramStats;
use crate::timing::TimingParams;

/// Live DRAM fault-injection state.
#[derive(Debug, Clone, Copy)]
struct DramFaultState {
    cfg: DramFaultConfig,
    /// Monotone counter keying the weak-row draw for each ACT.
    act_draws: u64,
    /// Number of ACTs that hit an injected weak row.
    weak_row_stalls: u64,
}

/// Effect of successfully issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// For RD/WR: the cycle at which the data burst completes. `None` for
    /// ACT/PRE, which carry no data.
    pub data_done_at: Option<u64>,
}

/// A frozen copy of every counter a [`DramModule`] exposes, taken with
/// [`DramModule::snapshot`].
///
/// Two snapshots subtract ([`DramSnapshot::delta`]) to give the activity of a
/// measurement window, so report builders do not have to mirror each counter
/// individually.
#[derive(Debug, Clone)]
pub struct DramSnapshot {
    /// Command counters at snapshot time.
    pub stats: DramStats,
    /// The module's timing parameters (copied so energy models can run on
    /// the snapshot alone).
    pub timing: TimingParams,
    /// Per-bank busy-cycle totals, indexed by bank key.
    pub bank_busy: Vec<u64>,
    /// Total refreshes performed across all ranks.
    pub refreshes: u64,
    /// Refreshes stretched into injected storms.
    pub refresh_storms: u64,
    /// ACTs that hit an injected weak row.
    pub weak_row_stalls: u64,
}

impl DramSnapshot {
    /// Counter-wise difference `self - earlier`, for measurement windows.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            stats: self.stats.delta(&earlier.stats),
            timing: self.timing.clone(),
            bank_busy: self
                .bank_busy
                .iter()
                .zip(&earlier.bank_busy)
                .map(|(a, b)| a - b)
                .collect(),
            refreshes: self.refreshes - earlier.refreshes,
            refresh_storms: self.refresh_storms - earlier.refresh_storms,
            weak_row_stalls: self.weak_row_stalls - earlier.weak_row_stalls,
        }
    }

    /// Folds a *disjoint* module's snapshot into `self`, for combining
    /// per-shard DRAM views: counters add, per-bank vectors concatenate
    /// (each shard owns physically distinct banks; callers merge in
    /// shard-id order). The timing parameters are kept from `self` — shards
    /// run identical timing, which the sharded engine guarantees by
    /// constructing every shard from one configuration.
    pub fn merge_from(&mut self, other: &Self) {
        self.stats.merge_from(&other.stats);
        self.bank_busy.extend_from_slice(&other.bank_busy);
        self.refreshes += other.refreshes;
        self.refresh_storms += other.refresh_storms;
        self.weak_row_stalls += other.weak_row_stalls;
    }

    /// Average bank idle proportion over `elapsed` cycles, computed from the
    /// snapshot's per-bank busy totals: `1 - busy/elapsed` averaged over all
    /// banks. Returns 0 when `elapsed` is 0 or the snapshot has no banks.
    #[must_use]
    pub fn average_bank_idle_proportion(&self, elapsed: u64) -> f64 {
        if elapsed == 0 || self.bank_busy.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .bank_busy
            .iter()
            .map(|&b| 1.0 - (b.min(elapsed) as f64 / elapsed as f64))
            .sum();
        total / self.bank_busy.len() as f64
    }
}

/// A cycle-accurate model of a multi-channel DRAM main memory.
///
/// The module is *passive*: it validates and applies commands that a memory
/// controller chooses to issue, enforcing JEDEC timing, bus occupancy and
/// refresh. It never reorders or generates work on its own, so scheduling
/// policy differences (the paper's topic) are entirely the controller's.
///
/// # Examples
///
/// ```
/// use dram_sim::{DramModule, DramCommand, DramLocation};
/// use dram_sim::geometry::DramGeometry;
/// use dram_sim::timing::TimingParams;
///
/// let mut dram = DramModule::new(DramGeometry::test_small(), TimingParams::test_fast());
/// let loc = DramLocation { channel: 0, rank: 0, bank: 0, row: 3, column: 1 };
/// dram.issue(DramCommand::activate(loc), 0).unwrap();
/// let t_rcd = dram.timing().t_rcd;
/// let out = dram.issue(DramCommand::read(loc), t_rcd).unwrap();
/// assert!(out.data_done_at.unwrap() > t_rcd);
/// ```
#[derive(Debug, Clone)]
pub struct DramModule {
    geometry: DramGeometry,
    timing: TimingParams,
    channels: Vec<Channel>,
    stats: DramStats,
    last_tick: u64,
    faults: Option<DramFaultState>,
}

impl DramModule {
    /// Creates a module with every bank precharged.
    ///
    /// # Panics
    ///
    /// Panics if the geometry or timing parameters fail validation.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams) -> Self {
        if let Err(e) = geometry.validate() {
            panic!("invalid DramGeometry: {e}");
        }
        if let Err(e) = timing.validate() {
            panic!("invalid TimingParams: {e}");
        }
        let channels = (0..geometry.channels)
            .map(|_| {
                Channel::new(
                    geometry.ranks_per_channel,
                    geometry.banks_per_rank,
                    geometry.bank_groups,
                    &timing,
                )
            })
            .collect();
        let stats = DramStats::new(&geometry);
        Self {
            geometry,
            timing,
            channels,
            stats,
            last_tick: 0,
            faults: None,
        }
    }

    /// Enables deterministic DRAM fault injection (refresh storms and
    /// weak-row stalls; see [`crate::faults`] for the model). Each rank gets
    /// its own storm stream derived from `cfg.seed` and its global index.
    ///
    /// Call before handing the module to a controller — the controller owns
    /// the module and exposes it read-only.
    ///
    /// # Panics
    ///
    /// If `cfg` fails [`DramFaultConfig::validate`].
    pub fn enable_faults(&mut self, cfg: DramFaultConfig) {
        if let Err(e) = cfg.validate() {
            panic!("invalid DramFaultConfig: {e}");
        }
        let ranks = self.geometry.ranks_per_channel;
        for (c, ch) in self.channels.iter_mut().enumerate() {
            for r in 0..ranks {
                let index = c as u64 * u64::from(ranks) + u64::from(r);
                ch.rank_mut(r).enable_refresh_storms(
                    mix64(cfg.seed ^ index),
                    cfg.storm_rate,
                    cfg.storm_factor,
                );
            }
        }
        self.faults = Some(DramFaultState {
            cfg,
            act_draws: 0,
            weak_row_stalls: 0,
        });
    }

    /// Whether DRAM fault injection is active.
    #[must_use]
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Total refreshes stretched into storms across all ranks.
    #[must_use]
    pub fn total_refresh_storms(&self) -> u64 {
        let mut total = 0;
        for ch in &self.channels {
            for r in 0..ch.rank_count() {
                total += ch.rank(r).refresh_storms();
            }
        }
        total
    }

    /// Total ACTs that hit an injected weak row.
    #[must_use]
    pub fn weak_row_stalls(&self) -> u64 {
        self.faults.map_or(0, |f| f.weak_row_stalls)
    }

    /// A module with the paper's Table II configuration.
    #[must_use]
    pub fn hpca_default() -> Self {
        Self::new(DramGeometry::hpca_default(), TimingParams::ddr3_1600())
    }

    /// Freezes every counter the module exposes into one value.
    ///
    /// Reporting layers that want measurement windows snapshot once at the
    /// window start and [`DramSnapshot::delta`] at the end, instead of
    /// tracking each counter separately.
    #[must_use]
    pub fn snapshot(&self) -> DramSnapshot {
        DramSnapshot {
            stats: self.stats.clone(),
            timing: self.timing.clone(),
            bank_busy: self.bank_busy_cycles(),
            refreshes: self.total_refreshes(),
            refresh_storms: self.total_refresh_storms(),
            weak_row_stalls: self.weak_row_stalls(),
        }
    }

    /// The module's geometry.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The module's timing parameters.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Per-channel state (read-only, for schedulers that want to inspect
    /// open rows).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    #[must_use]
    pub fn channel(&self, channel: u32) -> &Channel {
        &self.channels[channel as usize]
    }

    /// The row currently open in the bank addressed by `loc`, if any.
    #[must_use]
    pub fn open_row(&self, loc: &DramLocation) -> Option<u64> {
        self.channels[loc.channel as usize]
            .rank(loc.rank)
            .bank(loc.bank)
            .open_row()
    }

    /// Total refreshes performed across all ranks.
    #[must_use]
    pub fn total_refreshes(&self) -> u64 {
        let mut total = 0;
        for ch in &self.channels {
            for r in 0..ch.rank_count() {
                total += ch.rank(r).refreshes();
            }
        }
        total
    }

    /// Whether the bank addressed by `(channel, rank, bank)` is executing a
    /// command at `cycle` (ACT/PRE array work, a data burst, or refresh).
    #[must_use]
    pub fn bank_busy_at(&self, channel: u32, rank: u32, bank: u32, cycle: u64) -> bool {
        self.channels[channel as usize]
            .rank(rank)
            .bank(bank)
            .busy_until()
            > cycle
    }

    /// Advances refresh housekeeping to `cycle`. Must be called with
    /// monotonically non-decreasing cycles; typically once per controller
    /// cycle before issuing.
    pub fn tick(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.last_tick, "time must not go backwards");
        for ch in &mut self.channels {
            ch.tick(cycle, &self.timing);
        }
        self.last_tick = cycle;
    }

    fn check_range(&self, loc: &DramLocation) -> Result<(), IssueError> {
        if loc.channel >= self.geometry.channels
            || loc.rank >= self.geometry.ranks_per_channel
            || loc.bank >= self.geometry.banks_per_rank
            || loc.row >= self.geometry.rows_per_bank
            || loc.column >= self.geometry.columns_per_row
        {
            Err(IssueError::OutOfRange)
        } else {
            Ok(())
        }
    }

    /// Checks whether `cmd` may legally issue at `cycle`, without applying
    /// it. All constraint layers are consulted: command bus, bank state,
    /// bank/rank timing, data-bus occupancy and refresh.
    ///
    /// # Errors
    ///
    /// The first violated constraint, with a `ready_at` hint where known.
    pub fn can_issue(&self, cmd: &DramCommand, cycle: u64) -> Result<(), IssueError> {
        self.check_range(&cmd.loc)?;
        let ch = &self.channels[cmd.loc.channel as usize];
        ch.can_use_cmd_bus(cycle)?;
        let rank = ch.rank(cmd.loc.rank);
        let bank = rank.bank(cmd.loc.bank);
        match cmd.kind {
            CommandKind::Activate => {
                bank.can_activate(cycle)?;
                rank.can_activate(cycle, &self.timing, cmd.loc.bank)?;
            }
            CommandKind::Precharge => {
                bank.can_precharge(cycle)?;
                rank.can_other(cycle)?;
            }
            CommandKind::Read => {
                bank.can_column(cycle, cmd.loc.row, false)?;
                rank.can_read(cycle, cmd.loc.bank)?;
                ch.can_burst(cycle + self.timing.cl, false, &self.timing)?;
            }
            CommandKind::Write => {
                bank.can_column(cycle, cmd.loc.row, true)?;
                rank.can_write(cycle, cmd.loc.bank)?;
                ch.can_burst(cycle + self.timing.cwl, true, &self.timing)?;
            }
        }
        Ok(())
    }

    /// Issues `cmd` at `cycle`, updating all state and statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::can_issue`]; on error no state changes.
    pub fn issue(&mut self, cmd: DramCommand, cycle: u64) -> Result<IssueOutcome, IssueError> {
        self.can_issue(&cmd, cycle)?;
        let t = self.timing.clone();
        let key = cmd.loc.bank_key(&self.geometry);
        let ch = &mut self.channels[cmd.loc.channel as usize];
        ch.use_cmd_bus(cycle);
        let rank = ch.rank_mut(cmd.loc.rank);
        let outcome = match cmd.kind {
            CommandKind::Activate => {
                rank.apply_activate(cmd.loc.bank, cycle, cmd.loc.row, &t);
                // Weak-row hook: with probability `weak_row_rate` this ACT
                // opened a marginal row that needs extra restore time. The
                // stall only delays later commands, never reorders them.
                if let Some(f) = &mut self.faults {
                    f.act_draws += 1;
                    if f.cfg.weak_row_rate > 0.0
                        && u01(mix64(f.cfg.seed ^ 0x7765_616B ^ f.act_draws)) < f.cfg.weak_row_rate
                    {
                        rank.bank_mut(cmd.loc.bank)
                            .inject_stall(cycle, f.cfg.weak_row_stall);
                        f.weak_row_stalls += 1;
                    }
                }
                IssueOutcome { data_done_at: None }
            }
            CommandKind::Precharge => {
                rank.apply_precharge(cmd.loc.bank, cycle, &t);
                IssueOutcome { data_done_at: None }
            }
            CommandKind::Read => {
                let done = rank.apply_read(cmd.loc.bank, cycle, &t);
                ch.reserve_burst(cycle + t.cl, false, &t);
                IssueOutcome {
                    data_done_at: Some(done),
                }
            }
            CommandKind::Write => {
                let done = rank.apply_write(cmd.loc.bank, cycle, &t);
                ch.reserve_burst(cycle + t.cwl, true, &t);
                IssueOutcome {
                    data_done_at: Some(done),
                }
            }
        };
        self.stats.record_command(cmd.kind, key);
        Ok(outcome)
    }

    /// Snapshot of each bank's busy-cycle total, indexed by
    /// [`DramLocation::bank_key`]. Combined with elapsed cycles this yields
    /// the bank idle-time proportion of the paper's Fig. 12(a).
    #[must_use]
    pub fn bank_busy_cycles(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.geometry.total_banks() as usize);
        for ch in &self.channels {
            for r in 0..ch.rank_count() {
                let rank = ch.rank(r);
                for b in 0..rank.bank_count() {
                    v.push(rank.bank(b).busy_cycles());
                }
            }
        }
        v
    }

    /// Average bank idle proportion over `elapsed` cycles: `1 - busy/elapsed`
    /// averaged over all banks. Returns 0 when `elapsed` is 0.
    #[must_use]
    pub fn average_bank_idle_proportion(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let busy = self.bank_busy_cycles();
        let total: f64 = busy
            .iter()
            .map(|&b| 1.0 - (b.min(elapsed) as f64 / elapsed as f64))
            .sum();
        total / busy.len() as f64
    }

    /// Decodes `addr` with `mapping` and checks it addresses this module.
    ///
    /// # Errors
    ///
    /// [`IssueError::OutOfRange`] if the decoded coordinates exceed the
    /// geometry.
    pub fn locate(
        &self,
        mapping: &AddressMapping,
        addr: PhysAddr,
    ) -> Result<DramLocation, IssueError> {
        let loc = mapping.decode(addr);
        self.check_range(&loc)?;
        Ok(loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> DramModule {
        DramModule::new(DramGeometry::test_small(), TimingParams::test_fast())
    }

    fn loc(channel: u32, bank: u32, row: u64, column: u32) -> DramLocation {
        DramLocation {
            channel,
            rank: 0,
            bank,
            row,
            column,
        }
    }

    #[test]
    fn read_requires_open_row() {
        let mut m = module();
        let l = loc(0, 0, 1, 0);
        assert_eq!(
            m.issue(DramCommand::read(l), 0),
            Err(IssueError::BankClosed)
        );
    }

    #[test]
    fn act_then_read_returns_data() {
        let mut m = module();
        let l = loc(0, 0, 1, 0);
        m.issue(DramCommand::activate(l), 0).unwrap();
        let t = m.timing().clone();
        let out = m.issue(DramCommand::read(l), t.t_rcd).unwrap();
        assert_eq!(out.data_done_at, Some(t.t_rcd + t.cl + t.t_burst));
    }

    #[test]
    fn cmd_bus_conflict_across_banks_same_channel() {
        let mut m = module();
        m.issue(DramCommand::activate(loc(0, 0, 1, 0)), 0).unwrap();
        // Same cycle, same channel, different bank: command bus is taken.
        let err = m.can_issue(&DramCommand::activate(loc(0, 1, 1, 0)), 0);
        assert_eq!(err, Err(IssueError::RankTiming { ready_at: 1 }));
        // Different channel is independent.
        assert!(m
            .can_issue(&DramCommand::activate(loc(1, 0, 1, 0)), 0)
            .is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let m = module();
        let l = loc(0, 0, m.geometry().rows_per_bank, 0);
        assert_eq!(
            m.can_issue(&DramCommand::activate(l), 0),
            Err(IssueError::OutOfRange)
        );
    }

    #[test]
    fn open_row_visibility() {
        let mut m = module();
        let l = loc(1, 2, 9, 0);
        assert_eq!(m.open_row(&l), None);
        m.issue(DramCommand::activate(l), 0).unwrap();
        assert_eq!(m.open_row(&l), Some(9));
    }

    #[test]
    fn row_conflict_needs_pre_act() {
        let mut m = module();
        let t = m.timing().clone();
        let l1 = loc(0, 0, 1, 0);
        let l2 = loc(0, 0, 2, 0);
        m.issue(DramCommand::activate(l1), 0).unwrap();
        m.issue(DramCommand::read(l1), t.t_rcd).unwrap();
        assert!(matches!(
            m.can_issue(&DramCommand::read(l2), t.t_rcd + 1),
            Err(IssueError::RowMismatch { .. })
        ));
        let pre_at = t.t_ras;
        m.issue(DramCommand::precharge(l2), pre_at).unwrap();
        let act_at = (pre_at + t.t_rp).max(t.t_rc);
        m.issue(DramCommand::activate(l2), act_at).unwrap();
        m.issue(DramCommand::read(l2), act_at + t.t_rcd).unwrap();
    }

    #[test]
    fn idle_proportion_reflects_activity() {
        let mut m = module();
        let t = m.timing().clone();
        // No activity: fully idle.
        assert!((m.average_bank_idle_proportion(100) - 1.0).abs() < 1e-12);
        m.issue(DramCommand::activate(loc(0, 0, 1, 0)), 0).unwrap();
        m.issue(DramCommand::read(loc(0, 0, 1, 0)), t.t_rcd)
            .unwrap();
        let idle = m.average_bank_idle_proportion(100);
        assert!(idle < 1.0);
        assert!(idle > 0.8, "only one of 8 banks was briefly busy: {idle}");
    }

    #[test]
    fn stats_count_commands() {
        let mut m = module();
        let t = m.timing().clone();
        let l = loc(0, 0, 1, 0);
        m.issue(DramCommand::activate(l), 0).unwrap();
        m.issue(DramCommand::read(l), t.t_rcd).unwrap();
        // The write must clear tCCD, the read burst and the bus turnaround.
        let mut wr_at = t.t_rcd + t.t_ccd;
        while m.can_issue(&DramCommand::write(l), wr_at).is_err() {
            wr_at += 1;
        }
        m.issue(DramCommand::write(l), wr_at).unwrap();
        assert_eq!(m.stats().commands(CommandKind::Activate), 1);
        assert_eq!(m.stats().commands(CommandKind::Read), 1);
        assert_eq!(m.stats().commands(CommandKind::Write), 1);
        assert_eq!(m.stats().commands(CommandKind::Precharge), 0);
    }

    #[test]
    fn locate_checks_geometry() {
        let m = module();
        let mapping = AddressMapping::hpca_default(m.geometry());
        assert!(m.locate(&mapping, PhysAddr(0)).is_ok());
        // Address past capacity wraps in decode but is still in range
        // because decode masks; construct an in-range check explicitly.
        let cap = m.geometry().capacity_bytes();
        let loc = m.locate(&mapping, PhysAddr(cap - 64)).unwrap();
        assert!(loc.row < m.geometry().rows_per_bank);
    }

    #[test]
    fn weak_row_stall_delays_columns_only() {
        let mut m = module();
        m.enable_faults(DramFaultConfig {
            seed: 5,
            weak_row_rate: 1.0,
            weak_row_stall: 10,
            ..DramFaultConfig::default()
        });
        let t = m.timing().clone();
        let l = loc(0, 0, 1, 0);
        m.issue(DramCommand::activate(l), 0).unwrap();
        assert_eq!(m.weak_row_stalls(), 1);
        assert_eq!(m.open_row(&l), Some(1), "row stays open through the stall");
        assert!(matches!(
            m.can_issue(&DramCommand::read(l), t.t_rcd),
            Err(IssueError::BankTiming { .. })
        ));
        assert!(m.can_issue(&DramCommand::read(l), t.t_rcd + 10).is_ok());
    }

    #[test]
    fn zero_rate_faults_are_a_noop() {
        let mut m = module();
        m.enable_faults(DramFaultConfig {
            seed: 5,
            ..DramFaultConfig::default()
        });
        let t = m.timing().clone();
        let l = loc(0, 0, 1, 0);
        m.issue(DramCommand::activate(l), 0).unwrap();
        assert!(m.can_issue(&DramCommand::read(l), t.t_rcd).is_ok());
        assert_eq!(m.weak_row_stalls(), 0);
        assert_eq!(m.total_refresh_storms(), 0);
    }

    #[test]
    fn write_then_read_waits_twtr() {
        let mut m = module();
        let t = m.timing().clone();
        let l = loc(0, 0, 1, 0);
        m.issue(DramCommand::activate(l), 0).unwrap();
        let out = m.issue(DramCommand::write(l), t.t_rcd).unwrap();
        let wr_end = out.data_done_at.unwrap();
        let rd_ready = wr_end + t.t_wtr;
        assert!(matches!(
            m.can_issue(&DramCommand::read(l), rd_ready - 1),
            Err(IssueError::RankTiming { .. })
        ));
        assert!(m.can_issue(&DramCommand::read(l), rd_ready).is_ok());
    }
}
