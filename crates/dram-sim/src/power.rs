//! DRAM energy model (Micron power-calculator style, as in USIMM).
//!
//! USIMM ships a DRAM power model derived from Micron's DDR3 power
//! calculator: energy is attributed per command (ACT/PRE pair, RD, WR),
//! plus background power split by whether banks sit precharged or active.
//! This module reproduces that accounting on top of [`crate::DramStats`]
//! so experiments can report energy per scheme — the Compact Bucket moves
//! fewer blocks and the Proactive Bank shortens runtime, so both cut
//! energy through different terms.

use crate::stats::DramStats;
use crate::timing::TimingParams;

/// Per-operation and background energy coefficients.
///
/// Defaults approximate a 4 Gb DDR3-1600 x8 device scaled to a rank (values
/// derived from Micron DDR3 power calculator current specs: IDD0/IDD2N/
/// IDD3N/IDD4R/IDD4W at 1.5 V), in nanojoules. The absolute numbers matter
/// less than their ratios; experiments report relative energy.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Energy of one ACT+PRE pair (row open + restore), nJ.
    pub act_pre_nj: f64,
    /// Energy of one RD burst beyond background, nJ.
    pub read_nj: f64,
    /// Energy of one WR burst beyond background, nJ.
    pub write_nj: f64,
    /// Background power of a rank with all banks precharged, mW.
    pub background_precharged_mw: f64,
    /// Extra background power while at least one bank is active, mW.
    pub background_active_extra_mw: f64,
    /// Refresh energy per REF command, nJ.
    pub refresh_nj: f64,
}

impl PowerParams {
    /// DDR3-1600 defaults (see the type-level docs).
    #[must_use]
    pub fn ddr3_1600() -> Self {
        Self {
            act_pre_nj: 3.0,
            read_nj: 1.8,
            write_nj: 2.0,
            background_precharged_mw: 110.0,
            background_active_extra_mw: 60.0,
            refresh_nj: 25.0,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

/// Energy breakdown of a run, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Activate/precharge energy.
    pub activate_uj: f64,
    /// Read-burst energy.
    pub read_uj: f64,
    /// Write-burst energy.
    pub write_uj: f64,
    /// Background energy over the elapsed window.
    pub background_uj: f64,
    /// Refresh energy.
    pub refresh_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy in microjoules.
    #[must_use]
    pub fn total_uj(&self) -> f64 {
        self.activate_uj + self.read_uj + self.write_uj + self.background_uj + self.refresh_uj
    }
}

/// Computes the energy of a run from command statistics.
///
/// `elapsed_cycles` is the run length in bus cycles; `active_fraction` is
/// the mean fraction of ranks with at least one open row (0..=1), which
/// scales the active-background term; `refreshes` is the total REF count
/// across ranks.
#[must_use]
pub fn energy(
    params: &PowerParams,
    timing: &TimingParams,
    stats: &DramStats,
    ranks: u32,
    elapsed_cycles: u64,
    active_fraction: f64,
    refreshes: u64,
) -> EnergyBreakdown {
    let acts = stats.commands(crate::CommandKind::Activate) as f64;
    let reads = stats.commands(crate::CommandKind::Read) as f64;
    let writes = stats.commands(crate::CommandKind::Write) as f64;
    let seconds = (elapsed_cycles * timing.clock_ps) as f64 * 1e-12;
    let background_mw = f64::from(ranks)
        * (params.background_precharged_mw
            + params.background_active_extra_mw * active_fraction.clamp(0.0, 1.0));
    EnergyBreakdown {
        activate_uj: acts * params.act_pre_nj * 1e-3,
        read_uj: reads * params.read_nj * 1e-3,
        write_uj: writes * params.write_nj * 1e-3,
        background_uj: background_mw * seconds * 1e3, // mW * s = mJ -> uJ
        refresh_uj: refreshes as f64 * params.refresh_nj * 1e-3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DramGeometry;

    fn stats_with(acts: u64, reads: u64, writes: u64) -> DramStats {
        let mut s = DramStats::new(&DramGeometry::test_small());
        for _ in 0..acts {
            s.record_command_for_test(crate::CommandKind::Activate);
        }
        for _ in 0..reads {
            s.record_command_for_test(crate::CommandKind::Read);
        }
        for _ in 0..writes {
            s.record_command_for_test(crate::CommandKind::Write);
        }
        s
    }

    #[test]
    fn energy_terms_scale_with_commands() {
        let p = PowerParams::ddr3_1600();
        let t = TimingParams::ddr3_1600();
        let e1 = energy(&p, &t, &stats_with(10, 100, 50), 4, 1000, 0.5, 0);
        let e2 = energy(&p, &t, &stats_with(20, 200, 100), 4, 1000, 0.5, 0);
        assert!((e2.activate_uj - 2.0 * e1.activate_uj).abs() < 1e-12);
        assert!((e2.read_uj - 2.0 * e1.read_uj).abs() < 1e-12);
        assert!((e2.write_uj - 2.0 * e1.write_uj).abs() < 1e-12);
        // Background depends only on time.
        assert!((e2.background_uj - e1.background_uj).abs() < 1e-12);
    }

    #[test]
    fn background_scales_with_time_and_activity() {
        let p = PowerParams::ddr3_1600();
        let t = TimingParams::ddr3_1600();
        let s = stats_with(0, 0, 0);
        let short = energy(&p, &t, &s, 4, 1000, 0.0, 0);
        let long = energy(&p, &t, &s, 4, 2000, 0.0, 0);
        assert!((long.background_uj - 2.0 * short.background_uj).abs() < 1e-9);
        let active = energy(&p, &t, &s, 4, 1000, 1.0, 0);
        assert!(active.background_uj > short.background_uj);
    }

    #[test]
    fn refresh_energy_counts() {
        let p = PowerParams::ddr3_1600();
        let t = TimingParams::ddr3_1600();
        let s = stats_with(0, 0, 0);
        let e = energy(&p, &t, &s, 1, 0, 0.0, 40);
        assert!((e.refresh_uj - 1.0).abs() < 1e-12); // 40 * 25 nJ = 1 uJ
        assert!((e.total_uj() - e.refresh_uj).abs() < 1e-12);
    }

    #[test]
    fn total_is_sum_of_terms() {
        let p = PowerParams::ddr3_1600();
        let t = TimingParams::ddr3_1600();
        let e = energy(&p, &t, &stats_with(5, 7, 3), 2, 500, 0.3, 2);
        let sum = e.activate_uj + e.read_uj + e.write_uj + e.background_uj + e.refresh_uj;
        assert!((e.total_uj() - sum).abs() < 1e-12);
    }
}
