//! Per-rank constraints: tRRD, tFAW, write-to-read turnaround and refresh.

use crate::bank::Bank;
use crate::command::IssueError;
use crate::faults::{mix64, u01};
use crate::timing::TimingParams;

/// Per-rank refresh-storm injection parameters (seed already mixed with
/// the rank's global index by the module).
#[derive(Debug, Clone, Copy)]
struct StormConfig {
    seed: u64,
    rate: f64,
    factor: u64,
}

/// A rank: a group of banks operating in lockstep behind one chip-select,
/// sharing activation-rate limits (tRRD, tFAW), the write-to-read turnaround
/// (tWTR) and refresh.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Bank groups (1 = DDR3, no bank-group timing).
    groups: u32,
    /// Issue cycles of the most recent ACTs, for the tFAW sliding window.
    recent_acts: Vec<u64>,
    /// Earliest cycle the next ACT may issue anywhere in the rank (tRRD_S).
    next_act: u64,
    /// Earliest ACT per bank group (tRRD_L); bank `b` is in group
    /// `b % groups`.
    group_next_act: Vec<u64>,
    /// Earliest column command per bank group (tCCD_L).
    group_next_col: Vec<u64>,
    /// Earliest cycle the next RD may issue anywhere in the rank (tWTR).
    next_rd: u64,
    /// Cycle the rank's pending refresh completes (`0` when none).
    refresh_done: u64,
    /// Cycle at which the next refresh becomes due.
    next_refresh: u64,
    /// Number of refreshes performed.
    refreshes: u64,
    /// Optional deterministic refresh-storm injection.
    storms: Option<StormConfig>,
    /// Number of refreshes stretched into storms.
    storm_count: u64,
}

impl Rank {
    /// Creates a rank with `banks` precharged banks; the first refresh is
    /// scheduled one tREFI into the simulation.
    #[must_use]
    pub fn new(banks: u32, t: &TimingParams) -> Self {
        Self::with_groups(banks, 1, t)
    }

    /// Creates a rank whose banks are split into `groups` bank groups
    /// (DDR4 tCCD_L/tRRD_L apply within a group).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or exceeds `banks`.
    #[must_use]
    pub fn with_groups(banks: u32, groups: u32, t: &TimingParams) -> Self {
        assert!(groups >= 1 && groups <= banks, "bad bank-group count");
        Self {
            banks: (0..banks).map(|_| Bank::new()).collect(),
            groups,
            recent_acts: Vec::with_capacity(4),
            next_act: 0,
            group_next_act: vec![0; groups as usize],
            group_next_col: vec![0; groups as usize],
            next_rd: 0,
            refresh_done: 0,
            next_refresh: t.t_refi,
            refreshes: 0,
            storms: None,
            storm_count: 0,
        }
    }

    /// Arms refresh-storm injection: each refresh independently becomes a
    /// storm with probability `rate`, stretching its tRFC by `factor`. The
    /// decision is a pure function of `(seed, refresh index)`, so the storm
    /// schedule is identical on every run.
    pub(crate) fn enable_refresh_storms(&mut self, seed: u64, rate: f64, factor: u64) {
        self.storms = Some(StormConfig { seed, rate, factor });
    }

    /// Number of refreshes stretched into storms so far.
    #[must_use]
    pub fn refresh_storms(&self) -> u64 {
        self.storm_count
    }

    /// Immutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: u32) -> &Bank {
        &self.banks[bank as usize]
    }

    /// Mutable access to a bank (fault hooks only).
    pub(crate) fn bank_mut(&mut self, bank: u32) -> &mut Bank {
        &mut self.banks[bank as usize]
    }

    /// Number of banks in the rank.
    #[must_use]
    pub fn bank_count(&self) -> u32 {
        self.banks.len() as u32
    }

    /// Number of refreshes performed so far.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Handles refresh housekeeping for the current cycle. With the forced
    /// refresh model, when tREFI elapses every bank is precharged on the spot
    /// and the rank blocks for tRFC. This slightly pessimizes row locality
    /// around refreshes, identically for every scheduler under test.
    pub fn tick(&mut self, cycle: u64, t: &TimingParams) {
        if t.t_refi == 0 {
            return; // refresh disabled
        }
        if cycle >= self.next_refresh {
            // Storm injection: a stretched tRFC only ever *delays* commands,
            // so shadow timing checks (lower bounds) remain satisfied.
            let mut rfc = t.t_rfc;
            if let Some(s) = &self.storms {
                if u01(mix64(s.seed ^ self.refreshes)) < s.rate {
                    rfc *= s.factor;
                    self.storm_count += 1;
                }
            }
            let done = cycle + rfc;
            for b in &mut self.banks {
                b.force_refresh(cycle, done);
            }
            self.refresh_done = done;
            self.next_refresh += t.t_refi;
            self.refreshes += 1;
        }
    }

    fn check_refresh(&self, cycle: u64) -> Result<(), IssueError> {
        if cycle < self.refresh_done {
            Err(IssueError::RefreshInProgress {
                ready_at: self.refresh_done,
            })
        } else {
            Ok(())
        }
    }

    fn group_of(&self, bank: u32) -> usize {
        (bank % self.groups) as usize
    }

    /// Effective same-group ACT spacing: tRRD_L only exists once banks are
    /// actually split into groups (DDR4); with a single group the rank is
    /// plain DDR3 and tRRD applies.
    fn rrd_l(&self, t: &TimingParams) -> u64 {
        if self.groups == 1 {
            t.t_rrd
        } else {
            t.t_rrd_l
        }
    }

    /// Effective same-group column spacing (see [`Self::rrd_l`]).
    fn ccd_l(&self, t: &TimingParams) -> u64 {
        if self.groups == 1 {
            t.t_ccd
        } else {
            t.t_ccd_l
        }
    }

    /// Rank-level legality of an ACT to `bank` at `cycle`
    /// (tRRD_S + tRRD_L + tFAW + refresh).
    ///
    /// # Errors
    ///
    /// [`IssueError::RankTiming`] or [`IssueError::RefreshInProgress`].
    pub fn can_activate(&self, cycle: u64, t: &TimingParams, bank: u32) -> Result<(), IssueError> {
        self.check_refresh(cycle)?;
        if cycle < self.next_act {
            return Err(IssueError::RankTiming {
                ready_at: self.next_act,
            });
        }
        let g = self.group_of(bank);
        if cycle < self.group_next_act[g] {
            return Err(IssueError::RankTiming {
                ready_at: self.group_next_act[g],
            });
        }
        if self.recent_acts.len() >= 4 {
            // The oldest of the last four ACTs bounds the tFAW window.
            let oldest = self.recent_acts[self.recent_acts.len() - 4];
            if cycle < oldest + t.t_faw {
                return Err(IssueError::RankTiming {
                    ready_at: oldest + t.t_faw,
                });
            }
        }
        Ok(())
    }

    /// Rank-level legality of a RD to `bank` at `cycle`
    /// (tWTR + tCCD_L + refresh).
    ///
    /// # Errors
    ///
    /// [`IssueError::RankTiming`] or [`IssueError::RefreshInProgress`].
    pub fn can_read(&self, cycle: u64, bank: u32) -> Result<(), IssueError> {
        self.check_refresh(cycle)?;
        if cycle < self.next_rd {
            return Err(IssueError::RankTiming {
                ready_at: self.next_rd,
            });
        }
        let g = self.group_of(bank);
        if cycle < self.group_next_col[g] {
            return Err(IssueError::RankTiming {
                ready_at: self.group_next_col[g],
            });
        }
        Ok(())
    }

    /// Rank-level legality of a WR to `bank` at `cycle`
    /// (tCCD_L + refresh).
    ///
    /// # Errors
    ///
    /// [`IssueError::RankTiming`] or [`IssueError::RefreshInProgress`].
    pub fn can_write(&self, cycle: u64, bank: u32) -> Result<(), IssueError> {
        self.check_refresh(cycle)?;
        let g = self.group_of(bank);
        if cycle < self.group_next_col[g] {
            return Err(IssueError::RankTiming {
                ready_at: self.group_next_col[g],
            });
        }
        Ok(())
    }

    /// Rank-level legality of a PRE at `cycle` (refresh only).
    ///
    /// # Errors
    ///
    /// [`IssueError::RefreshInProgress`].
    pub fn can_other(&self, cycle: u64) -> Result<(), IssueError> {
        self.check_refresh(cycle)
    }

    /// Applies an ACT to `bank` at `cycle`.
    pub fn apply_activate(&mut self, bank: u32, cycle: u64, row: u64, t: &TimingParams) {
        debug_assert!(
            self.can_activate(cycle, t, bank).is_ok(),
            "rank-illegal ACT"
        );
        self.banks[bank as usize].apply_activate(cycle, row, t);
        self.next_act = cycle + t.t_rrd;
        let g = self.group_of(bank);
        self.group_next_act[g] = cycle + self.rrd_l(t);
        self.recent_acts.push(cycle);
        if self.recent_acts.len() > 8 {
            self.recent_acts.drain(..4);
        }
    }

    /// Applies a PRE to `bank` at `cycle`.
    pub fn apply_precharge(&mut self, bank: u32, cycle: u64, t: &TimingParams) {
        self.banks[bank as usize].apply_precharge(cycle, t);
    }

    /// Applies a RD to `bank` at `cycle`; returns the end of the data burst.
    pub fn apply_read(&mut self, bank: u32, cycle: u64, t: &TimingParams) -> u64 {
        debug_assert!(self.can_read(cycle, bank).is_ok(), "rank-illegal RD");
        let g = self.group_of(bank);
        self.group_next_col[g] = cycle + self.ccd_l(t);
        self.banks[bank as usize].apply_read(cycle, t)
    }

    /// Applies a WR to `bank` at `cycle`; returns the end of the data burst
    /// and arms the tWTR write-to-read turnaround.
    pub fn apply_write(&mut self, bank: u32, cycle: u64, t: &TimingParams) -> u64 {
        let g = self.group_of(bank);
        self.group_next_col[g] = cycle + self.ccd_l(t);
        let data_end = self.banks[bank as usize].apply_write(cycle, t);
        self.next_rd = self.next_rd.max(data_end + t.t_wtr);
        data_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::test_fast()
    }

    fn rank() -> Rank {
        Rank::new(8, &t())
    }

    #[test]
    fn trrd_spaces_activates_across_banks() {
        let mut r = rank();
        let tp = t();
        r.apply_activate(0, 0, 1, &tp);
        assert_eq!(
            r.can_activate(tp.t_rrd - 1, &tp, 1),
            Err(IssueError::RankTiming { ready_at: tp.t_rrd })
        );
        assert!(r.can_activate(tp.t_rrd, &tp, 1).is_ok());
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let mut r = rank();
        let tp = t();
        let mut cycle = 0;
        for bank in 0..4 {
            while r.can_activate(cycle, &tp, bank).is_err() {
                cycle += 1;
            }
            r.apply_activate(bank, cycle, 1, &tp);
        }
        // The 5th ACT must wait for the first ACT + tFAW.
        let mut fifth = cycle + tp.t_rrd;
        let err = r.can_activate(fifth, &tp, 4 % 4);
        assert!(matches!(err, Err(IssueError::RankTiming { .. })), "{err:?}");
        while r.can_activate(fifth, &tp, 0).is_err() {
            fifth += 1;
        }
        assert_eq!(fifth, tp.t_faw, "5th ACT gated by tFAW window");
    }

    #[test]
    fn twtr_gates_read_after_write() {
        let mut r = rank();
        let tp = t();
        r.apply_activate(0, 0, 1, &tp);
        r.apply_activate(1, tp.t_rrd, 1, &tp);
        let wr_end = r.apply_write(0, tp.t_rcd, &tp);
        let rd_ready = wr_end + tp.t_wtr;
        assert_eq!(
            r.can_read(rd_ready - 1, 1),
            Err(IssueError::RankTiming { ready_at: rd_ready })
        );
        assert!(r.can_read(rd_ready, 1).is_ok());
    }

    #[test]
    fn refresh_blocks_everything_for_trfc() {
        let mut r = rank();
        let tp = t();
        r.apply_activate(0, 0, 1, &tp);
        r.tick(tp.t_refi, &tp);
        assert_eq!(r.refreshes(), 1);
        let done = tp.t_refi + tp.t_rfc;
        assert_eq!(
            r.can_read(tp.t_refi + 1, 0),
            Err(IssueError::RefreshInProgress { ready_at: done })
        );
        assert!(matches!(
            r.can_activate(tp.t_refi + 1, &tp, 0),
            Err(IssueError::RefreshInProgress { .. })
        ));
        // After tRFC, the bank must be re-activated (row was closed).
        assert!(r.can_activate(done, &tp, 0).is_ok());
        assert!(r.bank(0).open_row().is_none());
    }

    #[test]
    fn refresh_storm_stretches_trfc() {
        let mut r = rank();
        let tp = t();
        r.enable_refresh_storms(42, 1.0, 4);
        r.tick(tp.t_refi, &tp);
        assert_eq!(r.refreshes(), 1);
        assert_eq!(r.refresh_storms(), 1);
        let done = tp.t_refi + 4 * tp.t_rfc;
        assert_eq!(
            r.can_read(done - 1, 0),
            Err(IssueError::RefreshInProgress { ready_at: done })
        );
        assert!(r.can_activate(done, &tp, 0).is_ok());
    }

    #[test]
    fn storm_schedule_is_deterministic() {
        let storms = |seed: u64| {
            let tp = t();
            let mut r = Rank::new(4, &tp);
            r.enable_refresh_storms(seed, 0.5, 2);
            for i in 1..=32 {
                r.tick(i * tp.t_refi, &tp);
            }
            r.refresh_storms()
        };
        assert_eq!(storms(7), storms(7));
        let n = storms(7);
        assert!(
            n > 0 && n < 32,
            "rate 0.5 should storm some but not all: {n}"
        );
    }

    #[test]
    fn refresh_disabled_with_zero_trefi() {
        let mut tp = t();
        tp.t_refi = 0;
        let mut r = Rank::new(4, &tp);
        r.tick(1_000_000, &tp);
        assert_eq!(r.refreshes(), 0);
    }

    #[test]
    fn bank_groups_enforce_long_timings() {
        let tp = t(); // t_rrd=2, t_rrd_l=3, t_ccd=2, t_ccd_l=3
        let mut r = Rank::with_groups(8, 4, &tp);
        // Banks 0 and 4 share group 0; banks 0 and 1 do not.
        r.apply_activate(0, 0, 1, &tp);
        // Cross-group ACT: gated by tRRD_S only.
        assert_eq!(
            r.can_activate(tp.t_rrd - 1, &tp, 1),
            Err(IssueError::RankTiming { ready_at: tp.t_rrd })
        );
        assert!(r.can_activate(tp.t_rrd, &tp, 1).is_ok());
        // Same-group ACT: gated by tRRD_L.
        assert_eq!(
            r.can_activate(tp.t_rrd, &tp, 4),
            Err(IssueError::RankTiming {
                ready_at: tp.t_rrd_l
            })
        );
        assert!(r.can_activate(tp.t_rrd_l, &tp, 4).is_ok());
    }

    #[test]
    fn bank_groups_enforce_ccd_l() {
        let tp = t();
        let mut r = Rank::with_groups(8, 4, &tp);
        r.apply_activate(0, 0, 1, &tp);
        r.apply_activate(4, tp.t_rrd_l, 1, &tp); // same group 0
        let rd_at = tp.t_rrd_l + tp.t_rcd;
        r.apply_read(0, rd_at, &tp);
        // Same-group read must wait tCCD_L; the bank itself is different.
        assert_eq!(
            r.can_read(rd_at + tp.t_ccd - 1, 4),
            Err(IssueError::RankTiming {
                ready_at: rd_at + tp.t_ccd_l
            })
        );
        assert!(r.can_read(rd_at + tp.t_ccd_l, 4).is_ok());
    }

    #[test]
    fn single_group_behaves_like_ddr3() {
        let tp = t();
        let mut r = Rank::new(8, &tp); // groups = 1
        r.apply_activate(0, 0, 1, &tp);
        // tRRD_L must NOT apply: plain tRRD gates the next ACT.
        assert!(r.can_activate(tp.t_rrd, &tp, 1).is_ok());
    }

    #[test]
    fn recent_act_history_is_bounded() {
        let mut r = rank();
        let tp = t();
        let mut cycle = 0;
        for i in 0..100 {
            while r.can_activate(cycle, &tp, (i % 8) as u32).is_err()
                || r.bank((i % 8) as u32).can_activate(cycle).is_err()
            {
                cycle += 1;
            }
            r.apply_activate((i % 8) as u32, cycle, 1, &tp);
            let bank = (i % 8) as u32;
            while r.bank(bank).can_precharge(cycle).is_err() {
                cycle += 1;
            }
            r.apply_precharge(bank, cycle, &tp);
        }
        assert!(r.recent_acts.len() <= 8);
    }
}
