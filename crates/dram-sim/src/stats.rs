//! Aggregate DRAM-side statistics.

use crate::command::CommandKind;
use crate::geometry::DramGeometry;

/// Counters accumulated by [`crate::module::DramModule`] as commands issue.
///
/// Row-buffer hit/miss/conflict classification is intentionally *not* done
/// here: the paper classifies per memory *request* at scheduling time (so
/// that the proactive scheduler does not change the counts), which is the
/// memory controller's knowledge, not the DRAM's.
#[derive(Debug, Clone)]
pub struct DramStats {
    activates: u64,
    precharges: u64,
    reads: u64,
    writes: u64,
    per_bank_commands: Vec<u64>,
}

impl DramStats {
    /// Fresh counters sized for `geometry`.
    #[must_use]
    pub fn new(geometry: &DramGeometry) -> Self {
        Self {
            activates: 0,
            precharges: 0,
            reads: 0,
            writes: 0,
            per_bank_commands: vec![0; geometry.total_banks() as usize],
        }
    }

    /// Records one command of `kind` to the bank identified by `bank_key`.
    pub(crate) fn record_command(&mut self, kind: CommandKind, bank_key: u32) {
        match kind {
            CommandKind::Activate => self.activates += 1,
            CommandKind::Precharge => self.precharges += 1,
            CommandKind::Read => self.reads += 1,
            CommandKind::Write => self.writes += 1,
        }
        if let Some(c) = self.per_bank_commands.get_mut(bank_key as usize) {
            *c += 1;
        }
    }

    /// Number of commands of `kind` issued so far.
    #[must_use]
    pub fn commands(&self, kind: CommandKind) -> u64 {
        match kind {
            CommandKind::Activate => self.activates,
            CommandKind::Precharge => self.precharges,
            CommandKind::Read => self.reads,
            CommandKind::Write => self.writes,
        }
    }

    /// Total commands of all kinds.
    #[must_use]
    pub fn total_commands(&self) -> u64 {
        self.activates + self.precharges + self.reads + self.writes
    }

    /// Commands per bank, indexed by bank key.
    #[must_use]
    pub fn per_bank_commands(&self) -> &[u64] {
        &self.per_bank_commands
    }

    /// Data bytes moved, given the column size (each RD/WR moves one column).
    #[must_use]
    pub fn data_bytes(&self, column_bytes: u32) -> u64 {
        (self.reads + self.writes) * u64::from(column_bytes)
    }

    /// Counter-wise difference `self - earlier`, for measurement windows.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            activates: self.activates - earlier.activates,
            precharges: self.precharges - earlier.precharges,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            per_bank_commands: self
                .per_bank_commands
                .iter()
                .zip(&earlier.per_bank_commands)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Folds the counters of a *disjoint* module into `self`, for combining
    /// per-shard DRAM statistics. Command counts add; `per_bank_commands`
    /// concatenates, since each shard owns physically distinct banks
    /// (callers merging shards do so in shard-id order, keeping the bank
    /// ordering deterministic).
    pub fn merge_from(&mut self, other: &Self) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.per_bank_commands
            .extend_from_slice(&other.per_bank_commands);
    }

    /// Records a command against bank 0 — test helper for modules (such as
    /// the power model) that need synthetic statistics.
    #[doc(hidden)]
    pub fn record_command_for_test(&mut self, kind: CommandKind) {
        self.record_command(kind, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_kind() {
        let mut s = DramStats::new(&DramGeometry::test_small());
        s.record_command(CommandKind::Activate, 0);
        s.record_command(CommandKind::Read, 0);
        s.record_command(CommandKind::Read, 1);
        s.record_command(CommandKind::Write, 2);
        s.record_command(CommandKind::Precharge, 0);
        assert_eq!(s.commands(CommandKind::Activate), 1);
        assert_eq!(s.commands(CommandKind::Read), 2);
        assert_eq!(s.commands(CommandKind::Write), 1);
        assert_eq!(s.commands(CommandKind::Precharge), 1);
        assert_eq!(s.total_commands(), 5);
    }

    #[test]
    fn per_bank_distribution() {
        let mut s = DramStats::new(&DramGeometry::test_small());
        s.record_command(CommandKind::Read, 3);
        s.record_command(CommandKind::Read, 3);
        assert_eq!(s.per_bank_commands()[3], 2);
        assert_eq!(s.per_bank_commands()[0], 0);
    }

    #[test]
    fn data_bytes_counts_only_column_commands() {
        let mut s = DramStats::new(&DramGeometry::test_small());
        s.record_command(CommandKind::Activate, 0);
        s.record_command(CommandKind::Read, 0);
        s.record_command(CommandKind::Write, 0);
        assert_eq!(s.data_bytes(64), 128);
    }
}
