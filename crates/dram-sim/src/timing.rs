//! JEDEC-style DRAM timing parameters.
//!
//! All parameters are expressed in **memory bus cycles** (for DDR3-1600 the bus
//! runs at 800 MHz, i.e. one cycle is 1.25 ns and the data bus moves two beats
//! per cycle). The defaults follow the JEDEC DDR3-1600K (11-11-11) speed bin,
//! which is the specification the paper's USIMM configuration uses.
//!
//! The parameters gate when the memory controller may legally issue each
//! command; see [`crate::module::DramModule`] for the enforcement points.

/// DRAM timing parameters in bus cycles.
///
/// # Examples
///
/// ```
/// use dram_sim::timing::TimingParams;
///
/// let t = TimingParams::ddr3_1600();
/// assert_eq!(t.cl, 11);
/// // Closed-bank random access latency: ACT -> RD -> first data beat.
/// assert_eq!(t.t_rcd + t.cl, 22);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingParams {
    /// ACT to internal read/write delay (row to column delay).
    pub t_rcd: u64,
    /// PRE to ACT delay (row precharge time).
    pub t_rp: u64,
    /// CAS latency: RD command to first data beat.
    pub cl: u64,
    /// CAS write latency: WR command to first data beat.
    pub cwl: u64,
    /// ACT to PRE minimum delay (row active time).
    pub t_ras: u64,
    /// ACT to ACT delay, same bank (`t_ras + t_rp`).
    pub t_rc: u64,
    /// Data burst duration on the bus (BL8 => 4 bus cycles).
    pub t_burst: u64,
    /// Column command to column command, same direction, same rank
    /// (DDR4: the short, cross-bank-group value `tCCD_S`).
    pub t_ccd: u64,
    /// Column-to-column within the *same bank group* (DDR4 `tCCD_L`);
    /// equal to `t_ccd` when bank groups are disabled.
    pub t_ccd_l: u64,
    /// ACT to ACT delay, different banks of the same rank
    /// (DDR4: the short, cross-bank-group value `tRRD_S`).
    pub t_rrd: u64,
    /// ACT-to-ACT within the *same bank group* (DDR4 `tRRD_L`); equal to
    /// `t_rrd` when bank groups are disabled.
    pub t_rrd_l: u64,
    /// Rolling window in which at most four ACTs may be issued per rank.
    pub t_faw: u64,
    /// Write recovery: end of write burst to PRE, same bank.
    pub t_wr: u64,
    /// Write-to-read turnaround: end of write burst to RD command, same rank.
    pub t_wtr: u64,
    /// Read-to-precharge delay, same bank.
    pub t_rtp: u64,
    /// Bus turnaround penalty inserted between bursts of opposite direction.
    pub t_turnaround: u64,
    /// Average refresh interval (one REF per rank every `t_refi` cycles).
    pub t_refi: u64,
    /// Refresh cycle time (rank is unavailable for `t_rfc` after REF).
    pub t_rfc: u64,
    /// Bus cycle time in picoseconds (1.25 ns for DDR3-1600).
    pub clock_ps: u64,
}

impl TimingParams {
    /// JEDEC DDR3-1600K (11-11-11) timings, matching the paper's Table II
    /// ("DDR3-1600") and the USIMM 1-channel/4-channel reference configs.
    #[must_use]
    pub fn ddr3_1600() -> Self {
        Self {
            t_rcd: 11,
            t_rp: 11,
            cl: 11,
            cwl: 8,
            t_ras: 28,
            t_rc: 39,
            t_burst: 4,
            t_ccd: 4,
            t_ccd_l: 4,
            t_rrd: 5,
            t_rrd_l: 5,
            t_faw: 24,
            t_wr: 12,
            t_wtr: 6,
            t_rtp: 6,
            t_turnaround: 2,
            t_refi: 6240, // 7.8 us / 1.25 ns
            t_rfc: 208,   // 260 ns (4 Gb device) / 1.25 ns
            clock_ps: 1250,
        }
    }

    /// JEDEC DDR4-2400R (17-17-17) timings; provided for sensitivity studies
    /// beyond the paper's DDR3 evaluation.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        Self {
            t_rcd: 17,
            t_rp: 17,
            cl: 17,
            cwl: 12,
            t_ras: 39,
            t_rc: 56,
            t_burst: 4,
            t_ccd: 4,
            t_ccd_l: 6,
            t_rrd: 4,
            t_rrd_l: 6,
            t_faw: 26,
            t_wr: 18,
            t_wtr: 9,
            t_rtp: 9,
            t_turnaround: 2,
            t_refi: 9360, // 7.8 us / 0.833 ns
            t_rfc: 421,   // 350 ns (8 Gb device)
            clock_ps: 833,
        }
    }

    /// A drastically shortened timing set for fast unit tests. The relative
    /// ordering of constraints is preserved (`t_rc = t_ras + t_rp`, etc.) so
    /// scheduler logic exercises the same code paths at a fraction of the
    /// simulated cycles.
    #[must_use]
    pub fn test_fast() -> Self {
        Self {
            t_rcd: 3,
            t_rp: 3,
            cl: 3,
            cwl: 2,
            t_ras: 8,
            t_rc: 11,
            t_burst: 2,
            t_ccd: 2,
            t_ccd_l: 3,
            t_rrd: 2,
            t_rrd_l: 3,
            t_faw: 10,
            t_wr: 4,
            t_wtr: 2,
            t_rtp: 2,
            t_turnaround: 1,
            t_refi: 100_000,
            t_rfc: 20,
            clock_ps: 1000,
        }
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "t_rc ({}) must be at least t_ras + t_rp ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.t_burst == 0 {
            return Err("t_burst must be nonzero".to_owned());
        }
        if self.t_faw < self.t_rrd {
            return Err(format!(
                "t_faw ({}) must be at least t_rrd ({})",
                self.t_faw, self.t_rrd
            ));
        }
        if self.t_ccd_l < self.t_ccd {
            return Err(format!(
                "t_ccd_l ({}) must be at least t_ccd ({})",
                self.t_ccd_l, self.t_ccd
            ));
        }
        if self.t_rrd_l < self.t_rrd {
            return Err(format!(
                "t_rrd_l ({}) must be at least t_rrd ({})",
                self.t_rrd_l, self.t_rrd
            ));
        }
        if self.t_refi > 0 && self.t_rfc >= self.t_refi {
            return Err(format!(
                "t_rfc ({}) must be smaller than t_refi ({})",
                self.t_rfc, self.t_refi
            ));
        }
        if self.clock_ps == 0 {
            return Err("clock_ps must be nonzero".to_owned());
        }
        Ok(())
    }

    /// Converts a cycle count to nanoseconds using [`Self::clock_ps`].
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        (cycles * self.clock_ps) as f64 / 1000.0
    }

    /// Latency in cycles from issuing RD on an open row to the *end* of the
    /// data burst.
    #[must_use]
    pub fn read_hit_latency(&self) -> u64 {
        self.cl + self.t_burst
    }

    /// Latency in cycles for a row-buffer conflict read: PRE + ACT + RD.
    #[must_use]
    pub fn read_conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.cl + self.t_burst
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_defaults_validate() {
        TimingParams::ddr3_1600().validate().expect("ddr3 valid");
    }

    #[test]
    fn ddr4_defaults_validate() {
        TimingParams::ddr4_2400().validate().expect("ddr4 valid");
    }

    #[test]
    fn test_fast_validates() {
        TimingParams::test_fast().validate().expect("fast valid");
    }

    #[test]
    fn default_is_ddr3() {
        assert_eq!(TimingParams::default(), TimingParams::ddr3_1600());
    }

    #[test]
    fn trc_violation_detected() {
        let mut t = TimingParams::ddr3_1600();
        t.t_rc = 10;
        assert!(t.validate().is_err());
    }

    #[test]
    fn zero_burst_detected() {
        let mut t = TimingParams::ddr3_1600();
        t.t_burst = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn rfc_longer_than_refi_detected() {
        let mut t = TimingParams::ddr3_1600();
        t.t_rfc = t.t_refi + 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn cycles_to_ns_ddr3() {
        let t = TimingParams::ddr3_1600();
        assert!((t.cycles_to_ns(4) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn conflict_latency_exceeds_hit_latency() {
        let t = TimingParams::ddr3_1600();
        assert!(t.read_conflict_latency() > t.read_hit_latency());
    }
}
