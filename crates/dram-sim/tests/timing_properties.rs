//! Property-style tests of the DRAM timing model: a random but legal
//! command driver must never observe a protocol violation, and latencies
//! must respect the JEDEC bounds. Cases come from the in-repo deterministic
//! PRNG so the suite runs identically offline.

use oram_rng::{Rng, StdRng};

use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;
use dram_sim::{CommandKind, DramCommand, DramLocation, DramModule, IssueError};

const CASES: u64 = 64;

/// A randomized driver action: which bank to poke and what to attempt.
#[derive(Debug, Clone, Copy)]
struct Action {
    channel: u32,
    bank: u32,
    row: u64,
    column: u32,
    kind_sel: u8,
}

fn actions(rng: &mut StdRng) -> Vec<Action> {
    let n = rng.gen_range(1usize..200);
    (0..n)
        .map(|_| Action {
            channel: rng.gen_range(0u32..2),
            bank: rng.gen_range(0u32..4),
            row: rng.gen_range(0u64..8),
            column: rng.gen_range(0u32..8),
            kind_sel: rng.gen_range(0u8..4),
        })
        .collect()
}

fn kind_of(sel: u8) -> CommandKind {
    match sel {
        0 => CommandKind::Activate,
        1 => CommandKind::Precharge,
        2 => CommandKind::Read,
        _ => CommandKind::Write,
    }
}

/// Fuzz the module with arbitrary commands: `can_issue` gating must be
/// exact (an approved command must apply without panicking), errors must
/// carry usable `ready_at` hints, and time never goes backwards.
#[test]
fn can_issue_gating_is_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let acts = actions(&mut rng);
        let mut dram = DramModule::new(DramGeometry::test_small(), TimingParams::test_fast());
        let mut cycle = 0u64;
        #[allow(clippy::explicit_counter_loop)]
        for a in acts {
            dram.tick(cycle);
            let loc = DramLocation {
                channel: a.channel,
                rank: 0,
                bank: a.bank,
                row: a.row,
                column: a.column,
            };
            let cmd = DramCommand {
                kind: kind_of(a.kind_sel),
                loc,
            };
            match dram.can_issue(&cmd, cycle) {
                Ok(()) => {
                    let out = dram.issue(cmd, cycle).expect("approved commands apply");
                    if cmd.kind.carries_data() {
                        let done = out.data_done_at.expect("data command returns time");
                        assert!(done > cycle);
                    } else {
                        assert!(out.data_done_at.is_none());
                    }
                }
                Err(e) => {
                    if let Some(ready) = e.ready_at() {
                        assert!(ready > cycle, "hint {ready} not in the future");
                    }
                }
            }
            cycle += 1;
        }
    }
}

/// Retrying a timing-blocked command at its `ready_at` hint must make
/// progress (the same constraint no longer fires).
#[test]
fn ready_at_hints_are_honest() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0xA0A0);
        let acts = actions(&mut rng);
        let mut dram = DramModule::new(DramGeometry::test_small(), TimingParams::test_fast());
        let mut cycle = 0u64;
        for a in acts {
            dram.tick(cycle);
            let loc = DramLocation {
                channel: a.channel,
                rank: 0,
                bank: a.bank,
                row: a.row,
                column: a.column,
            };
            let cmd = DramCommand {
                kind: kind_of(a.kind_sel),
                loc,
            };
            if let Err(first) = dram.can_issue(&cmd, cycle) {
                if let Some(ready) = first.ready_at() {
                    // At the hinted cycle, the command is either legal or
                    // blocked by a *different* (or later-expiring) constraint.
                    dram.tick(ready);
                    if let Err(second) = dram.can_issue(&cmd, ready) {
                        if let Some(r2) = second.ready_at() {
                            assert!(r2 >= ready, "second hint {r2} before retry time {ready}");
                        }
                    }
                    cycle = ready;
                    continue;
                }
            }
            cycle += 1;
        }
    }
}

/// Data completion time for a read on an open row is exactly CL + BL/2.
#[test]
fn read_latency_is_exact() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0xB0B0);
        let row = rng.gen_range(0u64..8);
        let column = rng.gen_range(0u32..8);
        let t = TimingParams::test_fast();
        let mut dram = DramModule::new(DramGeometry::test_small(), t.clone());
        let loc = DramLocation {
            channel: 0,
            rank: 0,
            bank: 0,
            row,
            column,
        };
        dram.issue(DramCommand::activate(loc), 0).unwrap();
        let rd_at = t.t_rcd;
        let out = dram.issue(DramCommand::read(loc), rd_at).unwrap();
        assert_eq!(out.data_done_at, Some(rd_at + t.cl + t.t_burst));
    }
}

/// Driving a full conflict sequence (ACT-RD-PRE-ACT-RD) to any pair of
/// rows always succeeds within the analytic worst-case latency bound.
#[test]
fn conflict_sequence_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0xC0C0);
        let row_a = rng.gen_range(0u64..8);
        let mut row_b = rng.gen_range(0u64..8);
        if row_a == row_b {
            row_b = (row_b + 1) % 8;
        }
        let bank = rng.gen_range(0u32..4);
        let t = TimingParams::test_fast();
        let mut dram = DramModule::new(DramGeometry::test_small(), t.clone());
        let la = DramLocation {
            channel: 0,
            rank: 0,
            bank,
            row: row_a,
            column: 0,
        };
        let lb = DramLocation {
            channel: 0,
            rank: 0,
            bank,
            row: row_b,
            column: 0,
        };
        let mut cycle = 0;
        let issue = |dram: &mut DramModule, cmd: DramCommand, cycle: &mut u64| loop {
            dram.tick(*cycle);
            match dram.issue(cmd, *cycle) {
                Ok(out) => return out,
                Err(
                    IssueError::RowMismatch { .. }
                    | IssueError::BankNotPrecharged
                    | IssueError::BankClosed,
                ) => panic!("state error for {cmd}"),
                Err(_) => *cycle += 1,
            }
        };
        issue(&mut dram, DramCommand::activate(la), &mut cycle);
        issue(&mut dram, DramCommand::read(la), &mut cycle);
        issue(&mut dram, DramCommand::precharge(la), &mut cycle);
        issue(&mut dram, DramCommand::activate(lb), &mut cycle);
        let out = issue(&mut dram, DramCommand::read(lb), &mut cycle);
        // Analytic worst case: tRCD + tRTP gate the PRE, then tRP + tRCD +
        // CL + burst; allow tRAS/tRC slack.
        let bound = t.t_rc + t.t_rp + t.t_rcd + t.cl + t.t_burst + t.t_ras;
        assert!(
            out.data_done_at.unwrap() <= bound,
            "conflict latency {} exceeds bound {}",
            out.data_done_at.unwrap(),
            bound
        );
    }
}

/// Banks are independent: activity in one bank never makes a command in
/// another bank illegal for *bank-level* reasons (only rank/bus-level).
#[test]
fn cross_bank_interference_is_rank_level_only() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0xD0D0);
        let n = rng.gen_range(1usize..20);
        let rows: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..8)).collect();
        let t = TimingParams::test_fast();
        let mut dram = DramModule::new(DramGeometry::test_small(), t.clone());
        let mut cycle = 0;
        #[allow(clippy::explicit_counter_loop)]
        for (i, &row) in rows.iter().enumerate() {
            let loc = DramLocation {
                channel: 0,
                rank: 0,
                bank: (i % 2) as u32,
                row,
                column: 0,
            };
            // Drive bank 0 and bank 1 alternately; bank 2 on the other
            // channel stays fresh and must always accept ACT modulo
            // rank-level constraints.
            let probe = DramLocation {
                channel: 1,
                rank: 0,
                bank: 2,
                row: 0,
                column: 0,
            };
            match dram.can_issue(&DramCommand::activate(probe), cycle) {
                Ok(())
                | Err(IssueError::RankTiming { .. })
                | Err(IssueError::RefreshInProgress { .. })
                | Err(IssueError::BankNotPrecharged) => {}
                Err(e) => panic!("unexpected cross-bank error {e:?}"),
            }
            dram.tick(cycle);
            let cmd = if dram.open_row(&loc) == Some(row) {
                DramCommand::read(loc)
            } else if dram.open_row(&loc).is_some() {
                DramCommand::precharge(loc)
            } else {
                DramCommand::activate(loc)
            };
            if dram.can_issue(&cmd, cycle).is_ok() {
                let _ = dram.issue(cmd, cycle);
            }
            cycle += 1;
        }
    }
}
