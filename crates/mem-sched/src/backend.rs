//! The pluggable memory-backend abstraction.
//!
//! The `string-oram` pipeline drives memory through the [`MemoryBackend`]
//! trait rather than the concrete [`MemoryController`], so the same staged
//! transaction pipeline can run over
//!
//! * the **cycle-accurate** backend — [`MemoryController`] over
//!   `dram-sim`, the paper's evaluation substrate — or
//! * the **fast functional** backend ([`crate::FunctionalBackend`]) — a
//!   row-aware latency model with no per-cycle DRAM state, for long-trace
//!   and protocol-only runs.
//!
//! Both backends expose the same contract: transaction-ordered enqueue,
//! per-cycle `tick`, completion draining, a [`CommandEvent`] stream for
//! external conformance checking, and a [`BackendSnapshot`] of every
//! counter for measurement windows.

use dram_sim::{DramModule, DramSnapshot, PhysAddr};

use crate::controller::{CommandEvent, MemoryController};
use crate::queue::QueueFull;
use crate::request::{Completed, RequestSpec};
use crate::stats::SchedulerStats;

/// A frozen copy of every counter a backend exposes, for measurement
/// windows: snapshot at the window start, [`BackendSnapshot::delta`] at the
/// end.
#[derive(Debug, Clone)]
pub struct BackendSnapshot {
    /// Scheduler-level counters (both backends).
    pub sched: SchedulerStats,
    /// DRAM-level counters; `None` for backends without a cycle-accurate
    /// DRAM model.
    pub dram: Option<DramSnapshot>,
}

impl BackendSnapshot {
    /// Counter-wise difference `self - earlier`. `earlier` must be a prior
    /// snapshot of the same backend.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            sched: self.sched.delta(&earlier.sched),
            dram: match (&self.dram, &earlier.dram) {
                (Some(now), Some(then)) => Some(now.delta(then)),
                _ => None,
            },
        }
    }

    /// Folds a *disjoint* backend's snapshot into `self`, for combining
    /// per-shard snapshots into one merged view. Scheduler counters add
    /// ([`SchedulerStats::merge_from`]); the DRAM layer is kept only when
    /// *every* merged shard has one (mixed fleets drop timing-level data
    /// rather than misreport a partial sum).
    pub fn merge_from(&mut self, other: &Self) {
        self.sched.merge_from(&other.sched);
        self.dram = match (self.dram.take(), &other.dram) {
            (Some(mut mine), Some(theirs)) => {
                mine.merge_from(theirs);
                Some(mine)
            }
            _ => None,
        };
    }
}

/// The memory side of the ORAM system, as seen by the transaction pipeline.
///
/// The contract every implementation upholds:
///
/// * requests are enqueued in non-decreasing [`crate::TxnId`] order and
///   their **data commands complete in transaction order** (the ORAM
///   security contract), except under the explicitly insecure
///   [`crate::SchedulerPolicy::Unconstrained`] ablation;
/// * [`MemoryBackend::tick`] is called once per cycle with non-decreasing
///   cycles; completions surface via [`MemoryBackend::drain_completed`]
///   with a possibly-future `data_done_at` (recorded at data-command issue
///   time);
/// * when command tracing is enabled, every issued command appears on the
///   [`CommandEvent`] stream so `sim-verify` checkers can attach without
///   knowing which backend produced it.
///
/// Backends are `Send`: the sharded engine moves each shard's backend onto
/// its own worker thread. They need not be `Sync` — a backend is owned by
/// exactly one shard pipeline.
pub trait MemoryBackend: std::fmt::Debug + Send {
    /// Enqueues a request at `cycle`.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the target queue has no free entry; the caller
    /// must stall and retry (nothing is enqueued).
    fn try_enqueue(&mut self, spec: RequestSpec, cycle: u64) -> Result<u64, QueueFull>;

    /// Whether a request with this address/direction would currently be
    /// accepted.
    fn has_room(&self, addr: PhysAddr, is_write: bool) -> bool;

    /// Advances the backend by one memory cycle.
    fn tick(&mut self, cycle: u64);

    /// Takes all requests completed since the last call.
    fn drain_completed(&mut self) -> Vec<Completed>;

    /// Appends all requests completed since the last drain to `out`,
    /// reusing its capacity. The allocation-free form of
    /// [`MemoryBackend::drain_completed`] for per-cycle callers; both
    /// drains consume the same completion buffer.
    fn drain_completed_into(&mut self, out: &mut Vec<Completed>) {
        out.append(&mut self.drain_completed());
    }

    /// Number of requests currently queued (not yet completed).
    fn pending(&self) -> usize;

    /// Starts recording every issued command on the event stream.
    fn enable_command_trace(&mut self);

    /// Takes the recorded command events, leaving tracing active if it was
    /// enabled. Empty if tracing was never enabled.
    fn take_command_events(&mut self) -> Vec<CommandEvent>;

    /// Scheduler-level statistics.
    fn sched_stats(&self) -> &SchedulerStats;

    /// The cycle-accurate DRAM module, when the backend has one. `None`
    /// means timing-level checkers (JEDEC shadow timing, bank idle
    /// accounting, the energy model) do not apply.
    fn dram_module(&self) -> Option<&DramModule>;

    /// Freezes every counter into one [`BackendSnapshot`].
    fn snapshot(&self) -> BackendSnapshot;
}

impl MemoryBackend for MemoryController {
    fn try_enqueue(&mut self, spec: RequestSpec, cycle: u64) -> Result<u64, QueueFull> {
        MemoryController::try_enqueue(self, spec, cycle)
    }

    fn has_room(&self, addr: PhysAddr, is_write: bool) -> bool {
        MemoryController::has_room(self, addr, is_write)
    }

    fn tick(&mut self, cycle: u64) {
        MemoryController::tick(self, cycle);
    }

    fn drain_completed(&mut self) -> Vec<Completed> {
        MemoryController::drain_completed(self)
    }

    fn drain_completed_into(&mut self, out: &mut Vec<Completed>) {
        MemoryController::drain_completed_into(self, out);
    }

    fn pending(&self) -> usize {
        MemoryController::pending(self)
    }

    fn enable_command_trace(&mut self) {
        MemoryController::enable_command_trace(self);
    }

    fn take_command_events(&mut self) -> Vec<CommandEvent> {
        MemoryController::take_command_events(self)
    }

    fn sched_stats(&self) -> &SchedulerStats {
        self.stats()
    }

    fn dram_module(&self) -> Option<&DramModule> {
        Some(self.dram())
    }

    fn snapshot(&self) -> BackendSnapshot {
        let mut sched = self.stats().clone();
        sched.absorb_policy(self.policy_stats());
        BackendSnapshot {
            sched,
            dram: Some(self.dram().snapshot()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedulerPolicy;
    use dram_sim::geometry::DramGeometry;
    use dram_sim::timing::TimingParams;
    use dram_sim::AddressMapping;

    #[test]
    fn controller_implements_backend() {
        let geometry = DramGeometry::test_small();
        let mapping = AddressMapping::hpca_default(&geometry);
        let dram = DramModule::new(geometry, TimingParams::test_fast());
        let ctrl = MemoryController::new(dram, mapping, SchedulerPolicy::TransactionBased, 16);
        let backend: &dyn MemoryBackend = &ctrl;
        assert_eq!(backend.pending(), 0);
        assert!(backend.dram_module().is_some());
        let snap = backend.snapshot();
        assert!(snap.dram.is_some());
        assert_eq!(snap.sched.ticks, 0);
    }

    #[test]
    fn snapshot_delta_subtracts_both_layers() {
        let geometry = DramGeometry::test_small();
        let mapping = AddressMapping::hpca_default(&geometry);
        let dram = DramModule::new(geometry, TimingParams::test_fast());
        let mut ctrl = MemoryController::new(dram, mapping, SchedulerPolicy::TransactionBased, 16);
        let before = MemoryBackend::snapshot(&ctrl);
        for c in 0..10 {
            MemoryBackend::tick(&mut ctrl, c);
        }
        let after = MemoryBackend::snapshot(&ctrl);
        let d = after.delta(&before);
        assert_eq!(d.sched.ticks, 10);
        assert!(d.dram.is_some());
    }
}
