//! The ORAM-aware memory controller.
//!
//! Implements the paper's two scheduling algorithms on top of the
//! `dram-sim` timing model:
//!
//! * **Transaction-based scheduling** (Algorithm 1, the baseline): all
//!   commands of ORAM transaction *i* must be issued before any command of
//!   transaction *i+1*; within the transaction, FR-FCFS (row hits first,
//!   then oldest-first) is used per channel.
//! * **Proactive Bank scheduling** (Algorithm 2, the paper's PB): identical,
//!   except that when a channel has nothing issuable from transaction *i*,
//!   the scheduler may issue **PRE/ACT only** for transaction *i+1* requests
//!   whose row-buffer conflicts are *inter*-transaction — i.e. whose target
//!   bank has no pending transaction-*i* request. Data commands (RD/WR)
//!   remain strictly transaction-ordered, so the access sequence observable
//!   on the bus is unchanged.

use dram_sim::AddressMapping;
use dram_sim::{CommandKind, DramCommand, DramModule, PhysAddr};

use crate::queue::{ChannelQueues, QueueFull};
use crate::request::{Completed, Request, RequestSpec, RowClass, TxnId};
use crate::stats::SchedulerStats;

/// Scheduling policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// The baseline transaction-based scheduler (paper Algorithm 1).
    TransactionBased,
    /// The Proactive Bank scheduler (paper Algorithm 2) with a lookahead of
    /// `lookahead` future transactions (the paper uses 1).
    ProactiveBank {
        /// How many transactions past the current one may have their
        /// PRE/ACT commands pulled forward.
        lookahead: u64,
    },
    /// **Insecure ablation**: plain FR-FCFS with no transaction barrier at
    /// all — data commands of different ORAM transactions freely
    /// interleave. This breaks ORAM's atomic/ordered access-sequence
    /// guarantee and exists only to quantify what the security constraint
    /// costs (and how much of that cost PB recovers legally).
    Unconstrained,
}

impl SchedulerPolicy {
    /// The paper's PB configuration (lookahead of one transaction).
    #[must_use]
    pub fn proactive() -> Self {
        Self::ProactiveBank { lookahead: 1 }
    }

    /// Whether the policy upholds the ORAM transaction ordering guarantee.
    #[must_use]
    pub fn preserves_transaction_order(self) -> bool {
        !matches!(self, Self::Unconstrained)
    }
}

/// One issued DRAM command, as recorded by the optional command trace.
///
/// The transaction attribution lets external conformance checkers (the
/// `sim-verify` crate) validate not just JEDEC timing but the ORAM security
/// contract: data commands must appear in transaction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandEvent {
    /// Cycle the command occupied the command bus.
    pub cycle: u64,
    /// The command itself.
    pub cmd: DramCommand,
    /// Transaction on whose behalf the command was issued; `None` for
    /// controller housekeeping (close-page precharges of idle rows).
    pub txn: Option<TxnId>,
}

/// Deterministic memory-controller fault injection: dropped and late data
/// responses plus transient queue-capacity saturation.
///
/// All decisions come from a stateless splitmix64 mix of `seed` and a draw
/// counter (or the cycle window, for saturation), so a given seed yields an
/// identical fault schedule on every run. Faults change *when* requests
/// complete, never *which* commands appear on the bus out of transaction
/// order — the ORAM security contract is timing-only affected.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResponseFaultConfig {
    /// Seed for the fault schedule (independent of every protocol RNG).
    pub seed: u64,
    /// Probability that a completed data command's response is delayed.
    pub late_rate: f64,
    /// Extra cycles added to `data_done_at` for a late response.
    pub late_delay: u64,
    /// Probability that a data command's response is dropped entirely: the
    /// DRAM command issues (bus and bank timing are consumed) but the
    /// request stays queued and is reissued by a later scheduling pass.
    pub drop_rate: f64,
    /// Probability that any given 1024-cycle window is *saturated*: the
    /// effective per-direction queue capacity is halved, forcing the ORAM
    /// front end to stall and retry (controller queue-saturation fault).
    pub saturation_rate: f64,
}

impl ResponseFaultConfig {
    /// Checks rates are probabilities and forward progress is possible.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("late_rate", self.late_rate),
            ("drop_rate", self.drop_rate),
            ("saturation_rate", self.saturation_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if self.drop_rate >= 1.0 {
            return Err("drop_rate must be < 1 or no response ever completes".into());
        }
        Ok(())
    }
}

/// Live response-fault state: the validated config plus the draw counter
/// and the last saturation window already counted in the statistics.
#[derive(Debug, Clone, Copy)]
struct ResponseFaultState {
    cfg: ResponseFaultConfig,
    /// Monotone counter keying the drop/late draws for each data command.
    draws: u64,
    /// Last cycle window counted in `queue_saturation_windows`.
    last_saturated_window: Option<u64>,
}

/// Cycles are grouped into `1 << SATURATION_WINDOW_SHIFT`-cycle windows for
/// the queue-saturation fault (1024 cycles).
const SATURATION_WINDOW_SHIFT: u32 = 10;

/// Domain separators so the three fault kinds draw independent streams
/// from one seed.
const DOMAIN_DROP: u64 = 0x6472_6F70; // "drop"
const DOMAIN_LATE: u64 = 0x6C61_7465; // "late"
const DOMAIN_SAT: u64 = 0x7361_7475; // "satu"

/// Finalizer of splitmix64: a full-avalanche 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a mixed word to a uniform f64 in [0, 1) using its top 53 bits.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Row-buffer management policy (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep rows open after column commands; conflicts pay PRE+ACT on the
    /// critical path but locality is exploited. The paper's assumption.
    #[default]
    Open,
    /// *Adaptive* close-page: precharge a bank as soon as no queued request
    /// wants its open row, removing PRE from the critical path of the next
    /// conflict while preserving pending row hits. (A literal close-page —
    /// PRE immediately after every column command — would forfeit the
    /// subtree layout's locality entirely; the adaptive form is the
    /// strongest fair competitor to PB.)
    Closed,
}

/// The memory controller: per-channel queues, a scheduling policy, and the
/// DRAM module it drives.
#[derive(Debug)]
pub struct MemoryController {
    dram: DramModule,
    mapping: AddressMapping,
    policy: SchedulerPolicy,
    page_policy: PagePolicy,
    queues: Vec<ChannelQueues>,
    next_id: u64,
    completed: Vec<Completed>,
    stats: SchedulerStats,
    last_cycle: u64,
    /// Per-channel scheduling view caches. A view stays valid until the
    /// channel's queues or bank states change, so stalled cycles (the
    /// common case) skip the queue scan entirely.
    caches: Vec<ChannelCache>,
    /// Pending (unissued) request count per bank, indexed
    /// `[channel][rank * banks_per_rank + bank]`, for idle accounting.
    pending_per_bank: Vec<Vec<u32>>,
    /// Optional command trace: every issued command with its cycle and
    /// owning transaction.
    command_trace: Option<Vec<CommandEvent>>,
    /// Optional deterministic response-fault injection.
    response_faults: Option<ResponseFaultState>,
}

/// Cached scheduling view of one channel.
#[derive(Debug, Clone, Default)]
struct ChannelCache {
    /// Whether the cache reflects the channel's current queues/banks.
    valid: bool,
    /// Transaction and lookahead the cache was built for.
    built_for: (TxnId, u64),
    /// Per-(rank, bank) facts.
    views: Vec<BankView>,
    /// Pending row hits of the current transaction, sorted by age.
    hits: Vec<(u64, (bool, usize))>,
    /// Banks with current-transaction work, sorted by oldest request age.
    order_current: Vec<(u64, usize)>,
    /// Banks with lookahead-window work, sorted by oldest request age.
    order_future: Vec<(u64, usize)>,
}

/// Per-(rank, bank) scheduling facts gathered in one queue pass.
#[derive(Debug, Clone, Copy, Default)]
struct BankView {
    /// Oldest unissued current-transaction request: (enqueue id, key).
    oldest_current: Option<(u64, (bool, usize))>,
    /// Whether any current-transaction request targets this bank.
    has_current: bool,
    /// Whether any current-transaction request wants the open row.
    current_hit_pending: bool,
    /// Oldest request in the PB lookahead window.
    oldest_future: Option<(u64, (bool, usize))>,
    /// Whether any lookahead-window request wants the open row.
    future_hit_pending: bool,
}

impl MemoryController {
    /// Creates a controller over `dram` with `queue_capacity` entries per
    /// direction per channel (the paper uses 64).
    #[must_use]
    pub fn new(
        dram: DramModule,
        mapping: AddressMapping,
        policy: SchedulerPolicy,
        queue_capacity: usize,
    ) -> Self {
        let channels = dram.geometry().channels;
        let banks = (dram.geometry().ranks_per_channel * dram.geometry().banks_per_rank) as usize;
        Self {
            dram,
            mapping,
            policy,
            page_policy: PagePolicy::Open,
            queues: (0..channels)
                .map(|_| ChannelQueues::new(queue_capacity))
                .collect(),
            next_id: 0,
            completed: Vec::new(),
            stats: SchedulerStats {
                per_channel_requests: vec![0; channels as usize],
                ..SchedulerStats::default()
            },
            last_cycle: 0,
            caches: (0..channels).map(|_| ChannelCache::default()).collect(),
            pending_per_bank: (0..channels).map(|_| vec![0; banks]).collect(),
            command_trace: None,
            response_faults: None,
        }
    }

    /// Enables deterministic response-fault injection (dropped/late data
    /// responses, queue saturation). Idempotent per config; the fault
    /// schedule restarts from the seed.
    ///
    /// # Panics
    ///
    /// If `cfg` fails [`ResponseFaultConfig::validate`].
    pub fn enable_response_faults(&mut self, cfg: ResponseFaultConfig) {
        if let Err(e) = cfg.validate() {
            panic!("invalid ResponseFaultConfig: {e}");
        }
        self.response_faults = Some(ResponseFaultState {
            cfg,
            draws: 0,
            last_saturated_window: None,
        });
    }

    /// Whether response-fault injection is active.
    #[must_use]
    pub fn response_faults_enabled(&self) -> bool {
        self.response_faults.is_some()
    }

    /// Whether the queue-saturation fault is active for the window
    /// containing `cycle`.
    fn saturated_at(&self, cycle: u64) -> bool {
        self.response_faults.as_ref().is_some_and(|f| {
            f.cfg.saturation_rate > 0.0
                && u01(mix64(
                    f.cfg.seed ^ DOMAIN_SAT ^ (cycle >> SATURATION_WINDOW_SHIFT),
                )) < f.cfg.saturation_rate
        })
    }

    /// Starts recording every issued command (cycle, command). Useful for
    /// debugging, external analysis and replay validation; costs memory
    /// proportional to the command count.
    pub fn enable_command_trace(&mut self) {
        self.command_trace = Some(Vec::new());
    }

    /// Takes the recorded command trace (empty if tracing was never
    /// enabled), leaving tracing active if it was.
    pub fn take_command_trace(&mut self) -> Vec<(u64, DramCommand)> {
        self.take_command_events()
            .into_iter()
            .map(|e| (e.cycle, e.cmd))
            .collect()
    }

    /// Takes the recorded command events — the trace with transaction
    /// attribution — leaving tracing active if it was enabled.
    pub fn take_command_events(&mut self) -> Vec<CommandEvent> {
        match &mut self.command_trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    fn record_trace(&mut self, cycle: u64, cmd: DramCommand, txn: Option<TxnId>) {
        if let Some(t) = &mut self.command_trace {
            t.push(CommandEvent { cycle, cmd, txn });
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// The page policy in force (defaults to [`PagePolicy::Open`]).
    #[must_use]
    pub fn page_policy(&self) -> PagePolicy {
        self.page_policy
    }

    /// Selects the row-buffer management policy.
    pub fn set_page_policy(&mut self, policy: PagePolicy) {
        self.page_policy = policy;
    }

    /// The underlying DRAM module (for timing/geometry/bank statistics).
    #[must_use]
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Scheduler statistics.
    #[must_use]
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Number of requests currently queued (not yet issued).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queues.iter().map(ChannelQueues::len).sum()
    }

    /// Whether a request with this address/direction would currently be
    /// accepted.
    #[must_use]
    pub fn has_room(&self, addr: PhysAddr, is_write: bool) -> bool {
        let loc = self.mapping.decode(addr);
        let q = &self.queues[loc.channel as usize];
        if self.saturated_at(self.last_cycle) {
            q.dir_len(is_write) < q.capacity().div_ceil(2)
        } else {
            q.has_room(is_write)
        }
    }

    /// Enqueues a request at `cycle`.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the target channel queue has no free entry; the
    /// caller must stall and retry (nothing is enqueued).
    pub fn try_enqueue(&mut self, spec: RequestSpec, cycle: u64) -> Result<u64, QueueFull> {
        let loc = self.mapping.decode(spec.addr);
        if self.saturated_at(cycle) {
            let window = cycle >> SATURATION_WINDOW_SHIFT;
            if let Some(f) = &mut self.response_faults {
                if f.last_saturated_window != Some(window) {
                    f.last_saturated_window = Some(window);
                    self.stats.queue_saturation_windows += 1;
                }
            }
            let q = &self.queues[loc.channel as usize];
            if q.dir_len(spec.is_write) >= q.capacity().div_ceil(2) {
                return Err(QueueFull);
            }
        }
        let id = self.next_id;
        let req = Request {
            id,
            txn: spec.txn,
            loc,
            is_write: spec.is_write,
            arrival: cycle,
            first_cmd_at: None,
            class: None,
        };
        self.queues[loc.channel as usize].push(req)?;
        self.caches[loc.channel as usize].valid = false;
        let banks_per_rank = self.dram.geometry().banks_per_rank;
        self.pending_per_bank[loc.channel as usize]
            [(loc.rank * banks_per_rank + loc.bank) as usize] += 1;
        self.next_id += 1;
        Ok(id)
    }

    /// Takes all requests completed since the last call.
    pub fn drain_completed(&mut self) -> Vec<Completed> {
        std::mem::take(&mut self.completed)
    }

    /// The transaction currently being drained: the smallest transaction id
    /// with an unissued request, if any.
    #[must_use]
    pub fn current_txn(&self) -> Option<TxnId> {
        self.queues.iter().filter_map(ChannelQueues::min_txn).min()
    }

    /// Advances the controller by one memory cycle: refresh housekeeping,
    /// then at most one command per channel according to the policy.
    pub fn tick(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.last_cycle, "cycles must be non-decreasing");
        self.last_cycle = cycle;
        self.dram.tick(cycle);
        for q in &self.queues {
            self.stats.queue_occupancy_integral += q.len() as u64;
        }
        self.stats.ticks += 1;

        // Bank idle accounting (Fig. 12(a)): a bank with pending requests
        // either executes a command window this cycle or sits stalled —
        // under transaction-based scheduling mostly because of the barrier.
        let banks_per_rank = self.dram.geometry().banks_per_rank;
        for (ch, per_bank) in self.pending_per_bank.iter().enumerate() {
            for (b, &count) in per_bank.iter().enumerate() {
                let rank = b as u32 / banks_per_rank;
                let bank = b as u32 % banks_per_rank;
                let loc = dram_sim::DramLocation {
                    channel: ch as u32,
                    rank,
                    bank,
                    row: 0,
                    column: 0,
                };
                self.stats.bank_tick_integral += 1;
                if self.dram.open_row(&loc).is_some() {
                    self.stats.open_bank_integral += 1;
                }
                if count > 0 {
                    if self.dram.bank_busy_at(ch as u32, rank, bank, cycle) {
                        self.stats.busy_pending_bank_cycles += 1;
                    } else {
                        self.stats.stalled_bank_cycles += 1;
                    }
                }
            }
        }

        // Algorithm 1 line 9-11 / Algorithm 2 line 13-15: the current
        // transaction pointer advances as soon as no commands of it remain.
        let current = self.current_txn();

        let (lookahead, unconstrained) = match self.policy {
            SchedulerPolicy::TransactionBased => (0, false),
            SchedulerPolicy::ProactiveBank { lookahead } => (lookahead, false),
            SchedulerPolicy::Unconstrained => (u64::MAX, true),
        };
        for ch in 0..self.queues.len() as u32 {
            let issued = match current {
                Some(t) => self.schedule_channel(ch, t, lookahead, unconstrained, cycle),
                None => false,
            };
            if !issued && self.page_policy == PagePolicy::Closed {
                self.close_idle_rows(ch, cycle);
            }
        }
    }

    /// Rebuilds the cached scheduling view of one channel: a single pass
    /// over its queues classifying every request of interest per bank.
    fn rebuild_cache(&mut self, ch: u32, current: TxnId, lookahead: u64, unconstrained: bool) {
        let geometry = self.dram.geometry();
        let banks = (geometry.ranks_per_channel * geometry.banks_per_rank) as usize;
        let banks_per_rank = geometry.banks_per_rank;
        let cache = &mut self.caches[ch as usize];
        cache.views.clear();
        cache.views.resize(banks, BankView::default());
        cache.hits.clear();
        cache.order_current.clear();
        cache.order_future.clear();

        let q = &self.queues[ch as usize];
        for (is_write, list) in [(false, &q.reads), (true, &q.writes)] {
            for (i, r) in list.iter().enumerate() {
                let in_current = unconstrained || r.txn == current;
                let in_future = !unconstrained
                    && r.txn.0 > current.0
                    && r.txn.0 <= current.0.saturating_add(lookahead);
                if !in_current && !in_future {
                    // Queues are transaction-sorted: nothing beyond the
                    // window can precede anything inside it.
                    if r.txn.0 > current.0.saturating_add(lookahead) {
                        break;
                    }
                    continue;
                }
                let b = (r.loc.rank * banks_per_rank + r.loc.bank) as usize;
                let open = self.dram.open_row(&r.loc);
                let view = &mut cache.views[b];
                let entry = (r.id, (is_write, i));
                if in_current {
                    view.has_current = true;
                    if open == Some(r.loc.row) {
                        view.current_hit_pending = true;
                        cache.hits.push(entry);
                    }
                    if view.oldest_current.is_none_or(|(id, _)| r.id < id) {
                        view.oldest_current = Some(entry);
                    }
                } else {
                    if open == Some(r.loc.row) {
                        view.future_hit_pending = true;
                    }
                    if view.oldest_future.is_none_or(|(id, _)| r.id < id) {
                        view.oldest_future = Some(entry);
                    }
                }
            }
        }
        cache.hits.sort_unstable_by_key(|&(id, _)| id);
        for (b, v) in cache.views.iter().enumerate() {
            if let Some((id, _)) = v.oldest_current {
                cache.order_current.push((id, b));
            }
            if let Some((id, _)) = v.oldest_future {
                cache.order_future.push((id, b));
            }
        }
        cache.order_current.sort_unstable();
        cache.order_future.sort_unstable();
        cache.built_for = (current, lookahead);
        cache.valid = true;
    }

    /// Close-page policy: precharge any open bank with no pending request
    /// for its open row, as soon as timing allows. At most one PRE per
    /// channel per cycle (the command bus is shared).
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn close_idle_rows(&mut self, ch: u32, cycle: u64) {
        let geometry = self.dram.geometry();
        let banks_per_rank = geometry.banks_per_rank;
        let ranks = geometry.ranks_per_channel;
        for rank in 0..ranks {
            for bank in 0..banks_per_rank {
                let loc = dram_sim::DramLocation {
                    channel: ch,
                    rank,
                    bank,
                    row: 0,
                    column: 0,
                };
                let Some(open) = self.dram.open_row(&loc) else {
                    continue;
                };
                let wanted = self.queues[ch as usize]
                    .reads
                    .iter()
                    .chain(self.queues[ch as usize].writes.iter())
                    .any(|r| r.loc.rank == rank && r.loc.bank == bank && r.loc.row == open);
                if wanted {
                    continue;
                }
                let cmd = DramCommand::precharge(dram_sim::DramLocation { row: open, ..loc });
                if self.dram.can_issue(&cmd, cycle).is_ok() {
                    self.dram.issue(cmd, cycle).expect("checked");
                    self.record_trace(cycle, cmd, None);
                    self.caches[ch as usize].valid = false;
                    self.stats.precharges += 1;
                    return;
                }
            }
        }
    }

    /// Applies FR-FCFS for the current transaction and (under PB) the
    /// proactive PRE/ACT pass on one channel. Returns true if a command was
    /// issued.
    ///
    /// The cached view's *structure* (which requests exist, which are hits)
    /// is invalidated on every queue or bank-state change; row-open state
    /// consulted for PRE/ACT decisions is always read live. Refresh may
    /// close rows without invalidating the cache — a stale "hit" then
    /// simply fails `can_issue` harmlessly (rows never *open*
    /// asynchronously, so no hit is ever missed).
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn schedule_channel(
        &mut self,
        ch: u32,
        current: TxnId,
        lookahead: u64,
        unconstrained: bool,
        cycle: u64,
    ) -> bool {
        if !self.caches[ch as usize].valid
            || self.caches[ch as usize].built_for != (current, lookahead)
        {
            self.rebuild_cache(ch, current, lookahead, unconstrained);
        }

        // FR pass: oldest pending row hit that can issue its data command.
        for idx in 0..self.caches[ch as usize].hits.len() {
            let (_, key) = self.caches[ch as usize].hits[idx];
            let req = self.queues[ch as usize].get(key);
            let cmd = if req.is_write {
                DramCommand::write(req.loc)
            } else {
                DramCommand::read(req.loc)
            };
            if self.dram.can_issue(&cmd, cycle).is_ok() {
                self.issue_data_command(ch, key, cmd, cycle);
                return true;
            }
        }

        // FCFS pass: oldest current-transaction request per bank drives the
        // bank preparation (PRE/ACT), in age order across banks. A bank
        // with a pending row hit is left open so the hit survives.
        for idx in 0..self.caches[ch as usize].order_current.len() {
            let (_, b) = self.caches[ch as usize].order_current[idx];
            let view = self.caches[ch as usize].views[b];
            let (_, key) = view.oldest_current.expect("in order_current");
            let req = self.queues[ch as usize].get(key).clone();
            match self.dram.open_row(&req.loc) {
                Some(row) if row == req.loc.row => {
                    // Row ready but data command blocked (bus/timing).
                }
                Some(_) => {
                    if view.current_hit_pending {
                        continue; // FR-FCFS row-hit preservation
                    }
                    let cmd = DramCommand::precharge(req.loc);
                    if self.dram.can_issue(&cmd, cycle).is_ok() {
                        self.issue_prep_command(ch, key, cmd, cycle, RowClass::Conflict, false);
                        return true;
                    }
                }
                None => {
                    let cmd = DramCommand::activate(req.loc);
                    if self.dram.can_issue(&cmd, cycle).is_ok() {
                        self.issue_prep_command(ch, key, cmd, cycle, RowClass::Miss, false);
                        return true;
                    }
                }
            }
        }

        // PB pass (Algorithm 2): PRE/ACT for lookahead-window requests whose
        // conflicts are inter-transaction.
        if lookahead == 0 {
            return false;
        }
        for idx in 0..self.caches[ch as usize].order_future.len() {
            let (_, b) = self.caches[ch as usize].order_future[idx];
            let view = self.caches[ch as usize].views[b];
            // Guard: the bank must have no pending request from the current
            // transaction — otherwise the conflict is intra-transaction and
            // Algorithm 2 leaves it alone.
            if view.has_current {
                continue;
            }
            let (_, key) = view.oldest_future.expect("in order_future");
            let req = self.queues[ch as usize].get(key).clone();
            match self.dram.open_row(&req.loc) {
                Some(row) if row == req.loc.row => {
                    // Already prepared (or naturally open): future hit.
                }
                Some(_) => {
                    // Row-hit preservation, mirrored for the window: if any
                    // window request still wants the open row, leave the
                    // bank alone — otherwise PB would change row-buffer
                    // outcomes, which the paper's fidelity argument forbids.
                    if view.future_hit_pending {
                        continue;
                    }
                    let cmd = DramCommand::precharge(req.loc);
                    if self.dram.can_issue(&cmd, cycle).is_ok() {
                        self.issue_prep_command(ch, key, cmd, cycle, RowClass::Conflict, true);
                        return true;
                    }
                }
                None => {
                    let cmd = DramCommand::activate(req.loc);
                    if self.dram.can_issue(&cmd, cycle).is_ok() {
                        self.issue_prep_command(ch, key, cmd, cycle, RowClass::Miss, true);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Issues the RD/WR for a request and retires it — unless an injected
    /// drop fault swallows the response.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn issue_data_command(&mut self, ch: u32, key: (bool, usize), cmd: DramCommand, cycle: u64) {
        let outcome = self.dram.issue(cmd, cycle).expect("checked with can_issue");
        let txn = self.queues[ch as usize].get(key).txn;
        self.record_trace(cycle, cmd, Some(txn));
        self.caches[ch as usize].valid = false;
        // Response-fault hooks. A *dropped* response consumes the DRAM
        // command (bus and bank timing are spent) but never retires the
        // request: it stays queued and a later scheduling pass reissues the
        // data command. The transaction pointer cannot advance past the
        // still-queued request, so data commands remain in transaction
        // order — the fault costs latency only. A *late* response retires
        // normally with `data_done_at` pushed back.
        let mut extra_delay = 0;
        if let Some(f) = &mut self.response_faults {
            f.draws += 1;
            if u01(mix64(f.cfg.seed ^ DOMAIN_DROP ^ f.draws)) < f.cfg.drop_rate {
                self.stats.responses_dropped += 1;
                let req = self.queues[ch as usize].get_mut(key);
                req.record_first_command(cycle, RowClass::Hit);
                return;
            }
            if u01(mix64(f.cfg.seed ^ DOMAIN_LATE ^ f.draws)) < f.cfg.late_rate {
                self.stats.responses_delayed += 1;
                extra_delay = f.cfg.late_delay;
            }
        }
        let banks_per_rank = self.dram.geometry().banks_per_rank;
        self.pending_per_bank[ch as usize]
            [(cmd.loc.rank * banks_per_rank + cmd.loc.bank) as usize] -= 1;
        let mut req = self.queues[ch as usize].remove(key);
        req.record_first_command(cycle, RowClass::Hit);
        let class = req.class.expect("set on first command");
        let completed = Completed {
            id: req.id,
            txn: req.txn,
            is_write: req.is_write,
            arrival: req.arrival,
            first_cmd_at: req.first_cmd_at.expect("set on first command"),
            issue_at: cycle,
            data_done_at: outcome.data_done_at.expect("data command") + extra_delay,
            class,
        };
        self.stats.record_completion(&completed);
        self.stats.per_channel_requests[ch as usize] += 1;
        self.completed.push(completed);
    }

    /// Issues a PRE or ACT on behalf of a request (classifying it if this
    /// is the request's first command) and updates PB statistics.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn issue_prep_command(
        &mut self,
        ch: u32,
        key: (bool, usize),
        cmd: DramCommand,
        cycle: u64,
        class_if_first: RowClass,
        proactive: bool,
    ) {
        self.dram.issue(cmd, cycle).expect("checked with can_issue");
        let txn = self.queues[ch as usize].get(key).txn;
        self.record_trace(cycle, cmd, Some(txn));
        self.caches[ch as usize].valid = false;
        let req = self.queues[ch as usize].get_mut(key);
        req.record_first_command(cycle, class_if_first);
        match cmd.kind {
            CommandKind::Precharge => {
                self.stats.precharges += 1;
                if proactive {
                    self.stats.early_precharges += 1;
                }
            }
            CommandKind::Activate => {
                self.stats.activates += 1;
                if proactive {
                    self.stats.early_activates += 1;
                }
            }
            _ => unreachable!("prep commands are PRE/ACT only"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::geometry::DramGeometry;
    use dram_sim::timing::TimingParams;

    fn controller(policy: SchedulerPolicy) -> MemoryController {
        let geometry = DramGeometry::test_small();
        let mapping = AddressMapping::hpca_default(&geometry);
        let dram = DramModule::new(geometry, TimingParams::test_fast());
        MemoryController::new(dram, mapping, policy, 16)
    }

    /// Builds an address that decodes to the given coordinates.
    fn addr(c: &MemoryController, channel: u32, bank: u32, row: u64, column: u32) -> PhysAddr {
        c.mapping.encode(&dram_sim::DramLocation {
            channel,
            rank: 0,
            bank,
            row,
            column,
        })
    }

    fn run_until_done(c: &mut MemoryController, start: u64, limit: u64) -> (Vec<Completed>, u64) {
        let mut out = Vec::new();
        let mut cycle = start;
        while c.pending() > 0 {
            c.tick(cycle);
            out.extend(c.drain_completed());
            cycle += 1;
            assert!(cycle < start + limit, "scheduler wedged");
        }
        (out, cycle)
    }

    #[test]
    fn single_read_completes() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        let a = addr(&c, 0, 0, 3, 1);
        c.try_enqueue(
            RequestSpec {
                addr: a,
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 200);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].class, RowClass::Miss); // cold bank
        assert!(done[0].data_done_at > 0);
    }

    #[test]
    fn same_row_requests_hit() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        for col in 0..3 {
            c.try_enqueue(
                RequestSpec {
                    addr: addr(&c, 0, 0, 3, col),
                    is_write: false,
                    txn: TxnId(0),
                },
                0,
            )
            .unwrap();
        }
        let (done, _) = run_until_done(&mut c, 0, 400);
        let hits = done.iter().filter(|d| d.class == RowClass::Hit).count();
        let misses = done.iter().filter(|d| d.class == RowClass::Miss).count();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn conflicting_rows_classified_as_conflict() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 3, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 9, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 500);
        let classes: Vec<RowClass> = done.iter().map(|d| d.class).collect();
        assert!(classes.contains(&RowClass::Miss));
        assert!(classes.contains(&RowClass::Conflict));
    }

    #[test]
    fn transactions_issue_in_order() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        // Transaction 1 is a fast row hit candidate; transaction 0 is a
        // conflict-heavy one. Ordering must still be 0 before 1.
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 3, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 1, 5, 0),
                is_write: false,
                txn: TxnId(1),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 500);
        assert_eq!(done.len(), 2);
        let t0 = done.iter().find(|d| d.txn == TxnId(0)).unwrap();
        let t1 = done.iter().find(|d| d.txn == TxnId(1)).unwrap();
        assert!(
            t0.issue_at < t1.issue_at,
            "txn 0 data must be issued before txn 1 data"
        );
    }

    #[test]
    fn pb_pulls_pre_act_forward() {
        // Transaction 0 occupies bank 0 with a long conflict chain while
        // transaction 1 wants bank 1 (inter-transaction conflict after a
        // previous row was opened there).
        let mk = |policy| {
            let mut c = controller(policy);
            // Pre-open a wrong row in bank 1 via a txn-0 request, then keep
            // txn 0 busy in bank 0.
            let reqs = [
                (addr(&c, 0, 1, 7, 0), TxnId(0)), // opens bank1 row7
                (addr(&c, 0, 0, 1, 0), TxnId(0)),
                (addr(&c, 0, 0, 2, 0), TxnId(0)), // conflict in bank0
                (addr(&c, 0, 0, 3, 0), TxnId(0)), // conflict in bank0
                (addr(&c, 0, 1, 9, 0), TxnId(1)), // future: bank1 row9 conflict
            ];
            for (a, t) in reqs {
                c.try_enqueue(
                    RequestSpec {
                        addr: a,
                        is_write: false,
                        txn: t,
                    },
                    0,
                )
                .unwrap();
            }
            let (done, end) = run_until_done(&mut c, 0, 2000);
            let early = c.stats().early_precharges + c.stats().early_activates;
            (done, end, early)
        };
        let (done_base, end_base, early_base) = mk(SchedulerPolicy::TransactionBased);
        let (done_pb, end_pb, early_pb) = mk(SchedulerPolicy::proactive());
        assert_eq!(early_base, 0);
        assert!(early_pb > 0, "PB must issue some PRE/ACT early");
        assert!(
            end_pb <= end_base,
            "PB must not be slower: {end_pb} vs {end_base}"
        );
        // Row-buffer classification identical under both schedulers.
        let count = |v: &[Completed], cl: RowClass| v.iter().filter(|d| d.class == cl).count();
        for cl in [RowClass::Hit, RowClass::Miss, RowClass::Conflict] {
            assert_eq!(
                count(&done_base, cl),
                count(&done_pb, cl),
                "class {cl:?} count changed under PB"
            );
        }
        // Data commands remain transaction-ordered under PB.
        let t0_max = done_pb
            .iter()
            .filter(|d| d.txn == TxnId(0))
            .map(|d| d.issue_at)
            .max()
            .unwrap();
        let t1_min = done_pb
            .iter()
            .filter(|d| d.txn == TxnId(1))
            .map(|d| d.issue_at)
            .min()
            .unwrap();
        assert!(t0_max < t1_min, "PB reordered data commands");
    }

    #[test]
    fn pb_respects_intra_transaction_guard() {
        let mut c = controller(SchedulerPolicy::proactive());
        // txn0 and txn1 both target bank 0 (different rows): PB must not
        // precharge bank 0 for txn1 while txn0 still needs it.
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 1, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 2, 0),
                is_write: false,
                txn: TxnId(1),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 500);
        let t0 = done.iter().find(|d| d.txn == TxnId(0)).unwrap();
        let t1 = done.iter().find(|d| d.txn == TxnId(1)).unwrap();
        assert!(t0.issue_at < t1.issue_at);
        // txn0's row must not have been precharged before its read: it was
        // a cold miss, not a conflict.
        assert_eq!(t0.class, RowClass::Miss);
    }

    #[test]
    fn queue_full_reported() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        let a = addr(&c, 0, 0, 1, 0);
        for i in 0..16 {
            c.try_enqueue(
                RequestSpec {
                    addr: a,
                    is_write: false,
                    txn: TxnId(i),
                },
                0,
            )
            .unwrap();
        }
        assert!(!c.has_room(a, false));
        assert!(c.has_room(a, true));
        assert_eq!(
            c.try_enqueue(
                RequestSpec {
                    addr: a,
                    is_write: false,
                    txn: TxnId(99),
                },
                0
            ),
            Err(QueueFull)
        );
    }

    #[test]
    fn writes_and_reads_both_complete() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 1, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 1, 1),
                is_write: true,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 500);
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|d| d.is_write));
        assert!(done.iter().any(|d| !d.is_write));
        assert_eq!(c.stats().reads_completed, 1);
        assert_eq!(c.stats().writes_completed, 1);
    }

    #[test]
    fn unconstrained_interleaves_transactions() {
        // With the barrier removed, a fast row-hit of txn 1 may complete
        // before txn 0's conflict chain.
        let mut c = controller(SchedulerPolicy::Unconstrained);
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 1, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 1, 5, 0),
                is_write: false,
                txn: TxnId(1),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 500);
        // Both are cold misses in different banks: they overlap fully, so
        // the unconstrained schedule finishes them back to back rather
        // than serializing txn 1 behind txn 0.
        let t0 = done.iter().find(|d| d.txn == TxnId(0)).unwrap();
        let t1 = done.iter().find(|d| d.txn == TxnId(1)).unwrap();
        assert!((t1.issue_at as i64 - t0.issue_at as i64).abs() <= 2);
        assert!(!SchedulerPolicy::Unconstrained.preserves_transaction_order());
        assert!(SchedulerPolicy::proactive().preserves_transaction_order());
    }

    #[test]
    fn close_page_precharges_idle_rows() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        c.set_page_policy(PagePolicy::Closed);
        assert_eq!(c.page_policy(), PagePolicy::Closed);
        let a = addr(&c, 0, 0, 3, 1);
        c.try_enqueue(
            RequestSpec {
                addr: a,
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let mut cycle = 0;
        while c.pending() > 0 {
            c.tick(cycle);
            let _ = c.drain_completed();
            cycle += 1;
        }
        // Keep ticking: the close-page policy must precharge the row.
        let loc = c.mapping.decode(a);
        for _ in 0..100 {
            c.tick(cycle);
            cycle += 1;
        }
        assert_eq!(c.dram().open_row(&loc), None, "row should be closed");
        // A second access to the same row is now a miss, not a hit.
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 3, 2),
                is_write: false,
                txn: TxnId(1),
            },
            cycle,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, cycle, 500);
        assert_eq!(done[0].class, RowClass::Miss);
    }

    #[test]
    fn open_page_keeps_rows_open() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        let a = addr(&c, 0, 0, 3, 1);
        c.try_enqueue(
            RequestSpec {
                addr: a,
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let (_, end) = run_until_done(&mut c, 0, 500);
        let loc = c.mapping.decode(a);
        for cycle in end..end + 100 {
            c.tick(cycle);
        }
        assert_eq!(c.dram().open_row(&loc), Some(3), "row stays open");
    }

    #[test]
    fn channels_progress_in_parallel() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 1, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 1, 0, 1, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 200);
        // Both cold misses complete at the same cycle: full channel overlap.
        assert_eq!(done[0].data_done_at, done[1].data_done_at);
    }

    /// Runs one transaction-per-request workload under drop faults.
    fn run_with_drops(seed: u64) -> (Vec<Completed>, SchedulerStats) {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        c.enable_response_faults(ResponseFaultConfig {
            seed,
            drop_rate: 0.5,
            ..ResponseFaultConfig::default()
        });
        for i in 0..6u64 {
            c.try_enqueue(
                RequestSpec {
                    addr: addr(&c, 0, (i % 4) as u32, i, 0),
                    is_write: false,
                    txn: TxnId(i),
                },
                0,
            )
            .unwrap();
        }
        let (done, _) = run_until_done(&mut c, 0, 20_000);
        (done, c.stats().clone())
    }

    #[test]
    fn dropped_responses_eventually_complete_in_order() {
        let (done, stats) = run_with_drops(11);
        assert_eq!(done.len(), 6, "every request completes despite drops");
        assert!(stats.responses_dropped > 0, "seed 11 must drop something");
        // Completions (and hence data commands) stay in transaction order.
        for pair in done.windows(2) {
            assert!(pair[0].txn <= pair[1].txn, "transaction order violated");
        }
        // Each request completes exactly once even after reissues.
        let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let (done_a, stats_a) = run_with_drops(11);
        let (done_b, stats_b) = run_with_drops(11);
        assert_eq!(done_a, done_b, "same seed must replay identically");
        assert_eq!(stats_a.responses_dropped, stats_b.responses_dropped);
        let (done_c, _) = run_with_drops(12);
        assert!(
            done_a != done_c || run_with_drops(13).0 != done_a,
            "different seeds should eventually differ"
        );
    }

    #[test]
    fn zero_rates_match_fault_free_run() {
        let run = |faults: bool| {
            let mut c = controller(SchedulerPolicy::TransactionBased);
            if faults {
                c.enable_response_faults(ResponseFaultConfig {
                    seed: 99,
                    ..ResponseFaultConfig::default()
                });
            }
            for i in 0..4u64 {
                c.try_enqueue(
                    RequestSpec {
                        addr: addr(&c, 0, (i % 2) as u32, i, 0),
                        is_write: i % 2 == 1,
                        txn: TxnId(i),
                    },
                    0,
                )
                .unwrap();
            }
            run_until_done(&mut c, 0, 10_000).0
        };
        assert_eq!(run(false), run(true), "zero rates must be a no-op");
    }

    #[test]
    fn late_responses_shift_data_done_only() {
        let run = |late: bool| {
            let mut c = controller(SchedulerPolicy::TransactionBased);
            c.enable_response_faults(ResponseFaultConfig {
                seed: 7,
                late_rate: if late { 1.0 } else { 0.0 },
                late_delay: 100,
                ..ResponseFaultConfig::default()
            });
            c.try_enqueue(
                RequestSpec {
                    addr: addr(&c, 0, 0, 3, 0),
                    is_write: false,
                    txn: TxnId(0),
                },
                0,
            )
            .unwrap();
            let (done, _) = run_until_done(&mut c, 0, 1_000);
            (done[0], c.stats().responses_delayed)
        };
        let (clean, delayed_clean) = run(false);
        let (late, delayed_late) = run(true);
        assert_eq!(delayed_clean, 0);
        assert_eq!(delayed_late, 1);
        assert_eq!(late.issue_at, clean.issue_at, "command timing unchanged");
        assert_eq!(late.data_done_at, clean.data_done_at + 100);
    }

    #[test]
    fn queue_saturation_halves_capacity() {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        c.enable_response_faults(ResponseFaultConfig {
            seed: 3,
            saturation_rate: 1.0,
            ..ResponseFaultConfig::default()
        });
        // Capacity is 16 per direction; a saturated window admits only 8.
        let a = addr(&c, 0, 0, 1, 0);
        let mut accepted = 0u32;
        loop {
            let spec = RequestSpec {
                addr: a,
                is_write: false,
                txn: TxnId(0),
            };
            match c.try_enqueue(spec, 5) {
                Ok(_) => accepted += 1,
                Err(QueueFull) => break,
            }
        }
        assert_eq!(accepted, 8, "saturation must halve the effective capacity");
        assert_eq!(c.stats().queue_saturation_windows, 1, "one window counted");
        assert!(
            !c.has_room(a, false),
            "has_room must agree with try_enqueue"
        );
        assert!(c.has_room(a, true), "write direction has its own capacity");
    }

    #[test]
    fn response_fault_config_validation() {
        assert!(ResponseFaultConfig::default().validate().is_ok());
        assert!(
            ResponseFaultConfig {
                drop_rate: 1.0,
                ..ResponseFaultConfig::default()
            }
            .validate()
            .is_err(),
            "certain drop means no forward progress"
        );
        assert!(ResponseFaultConfig {
            late_rate: 1.5,
            ..ResponseFaultConfig::default()
        }
        .validate()
        .is_err());
    }
}
