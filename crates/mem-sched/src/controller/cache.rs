//! Per-channel cached scheduling views.
//!
//! A channel's view is rebuilt lazily — only when its queues or bank
//! states changed since the last build, or when the (current transaction,
//! lookahead) key moved — so stalled cycles (the common case) skip the
//! queue scan entirely.

use crate::request::TxnId;

use super::MemoryController;

/// Cached scheduling view of one channel.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChannelCache {
    /// Whether the cache reflects the channel's current queues/banks.
    pub(crate) valid: bool,
    /// Transaction and lookahead the cache was built for.
    pub(crate) built_for: (TxnId, u64),
    /// Per-(rank, bank) facts.
    pub(crate) views: Vec<BankView>,
    /// Pending row hits of the current transaction, sorted by age.
    pub(crate) hits: Vec<(u64, (bool, usize))>,
    /// Banks with current-transaction work, sorted by oldest request age.
    pub(crate) order_current: Vec<(u64, usize)>,
    /// Banks with lookahead-window work, sorted by oldest request age.
    pub(crate) order_future: Vec<(u64, usize)>,
}

/// Per-(rank, bank) scheduling facts gathered in one queue pass.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BankView {
    /// Oldest unissued current-transaction request: (enqueue id, key).
    pub(crate) oldest_current: Option<(u64, (bool, usize))>,
    /// Whether any current-transaction request targets this bank.
    pub(crate) has_current: bool,
    /// Whether any current-transaction request wants the open row.
    pub(crate) current_hit_pending: bool,
    /// Oldest request in the proactive lookahead window.
    pub(crate) oldest_future: Option<(u64, (bool, usize))>,
    /// Whether any lookahead-window request wants the open row.
    pub(crate) future_hit_pending: bool,
}

impl MemoryController {
    /// Rebuilds the cached scheduling view of one channel: a single pass
    /// over its queues classifying every request of interest per bank.
    pub(super) fn rebuild_cache(
        &mut self,
        ch: u32,
        current: TxnId,
        lookahead: u64,
        unconstrained: bool,
    ) {
        let geometry = self.dram.geometry();
        let banks = (geometry.ranks_per_channel * geometry.banks_per_rank) as usize;
        let banks_per_rank = geometry.banks_per_rank;
        let cache = &mut self.caches[ch as usize];
        cache.views.clear();
        cache.views.resize(banks, BankView::default());
        cache.hits.clear();
        cache.order_current.clear();
        cache.order_future.clear();

        let q = &self.queues[ch as usize];
        for (is_write, list) in [(false, &q.reads), (true, &q.writes)] {
            for (i, r) in list.iter().enumerate() {
                let in_current = unconstrained || r.txn == current;
                let in_future = !unconstrained
                    && r.txn.0 > current.0
                    && r.txn.0 <= current.0.saturating_add(lookahead);
                if !in_current && !in_future {
                    // Queues are transaction-sorted: nothing beyond the
                    // window can precede anything inside it.
                    if r.txn.0 > current.0.saturating_add(lookahead) {
                        break;
                    }
                    continue;
                }
                let b = (r.loc.rank * banks_per_rank + r.loc.bank) as usize;
                let open = self.dram.open_row(&r.loc);
                let view = &mut cache.views[b];
                let entry = (r.id, (is_write, i));
                if in_current {
                    view.has_current = true;
                    if open == Some(r.loc.row) {
                        view.current_hit_pending = true;
                        cache.hits.push(entry);
                    }
                    if view.oldest_current.is_none_or(|(id, _)| r.id < id) {
                        view.oldest_current = Some(entry);
                    }
                } else {
                    if open == Some(r.loc.row) {
                        view.future_hit_pending = true;
                    }
                    if view.oldest_future.is_none_or(|(id, _)| r.id < id) {
                        view.oldest_future = Some(entry);
                    }
                }
            }
        }
        cache.hits.sort_unstable_by_key(|&(id, _)| id);
        for (b, v) in cache.views.iter().enumerate() {
            if let Some((id, _)) = v.oldest_current {
                cache.order_current.push((id, b));
            }
            if let Some((id, _)) = v.oldest_future {
                cache.order_future.push((id, b));
            }
        }
        cache.order_current.sort_unstable();
        cache.order_future.sort_unstable();
        cache.built_for = (current, lookahead);
        cache.valid = true;
    }
}
