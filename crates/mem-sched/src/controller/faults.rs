//! Deterministic response-fault injection: configuration, validation and
//! the stateless splitmix64 draw machinery.

/// Deterministic memory-controller fault injection: dropped and late data
/// responses plus transient queue-capacity saturation.
///
/// All decisions come from a stateless splitmix64 mix of `seed` and a draw
/// counter (or the cycle window, for saturation), so a given seed yields an
/// identical fault schedule on every run. Faults change *when* requests
/// complete, never *which* commands appear on the bus out of transaction
/// order — the ORAM security contract is timing-only affected.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResponseFaultConfig {
    /// Seed for the fault schedule (independent of every protocol RNG).
    pub seed: u64,
    /// Probability that a completed data command's response is delayed.
    pub late_rate: f64,
    /// Extra cycles added to `data_done_at` for a late response.
    pub late_delay: u64,
    /// Probability that a data command's response is dropped entirely: the
    /// DRAM command issues (bus and bank timing are consumed) but the
    /// request stays queued and is reissued by a later scheduling pass.
    pub drop_rate: f64,
    /// Probability that any given 1024-cycle window is *saturated*: the
    /// effective per-direction queue capacity is halved, forcing the ORAM
    /// front end to stall and retry (controller queue-saturation fault).
    pub saturation_rate: f64,
}

/// Why a [`ResponseFaultConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultConfigError {
    /// A rate field is NaN or outside `[0, 1]`.
    RateOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `drop_rate` is 1: every response would be dropped and no request
    /// could ever complete.
    CertainDrop,
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RateOutOfRange { field, value } => {
                write!(f, "{field} must be in [0, 1], got {value}")
            }
            Self::CertainDrop => {
                write!(f, "drop_rate must be < 1 or no response ever completes")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

impl ResponseFaultConfig {
    /// Checks rates are probabilities and forward progress is possible.
    ///
    /// # Errors
    ///
    /// A structured [`FaultConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (field, rate) in [
            ("late_rate", self.late_rate),
            ("drop_rate", self.drop_rate),
            ("saturation_rate", self.saturation_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(FaultConfigError::RateOutOfRange { field, value: rate });
            }
        }
        if self.drop_rate >= 1.0 {
            return Err(FaultConfigError::CertainDrop);
        }
        Ok(())
    }
}

/// Live response-fault state: the validated config plus the draw counter
/// and the last saturation window already counted in the statistics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResponseFaultState {
    pub(crate) cfg: ResponseFaultConfig,
    /// Monotone counter keying the drop/late draws for each data command.
    pub(crate) draws: u64,
    /// Last cycle window counted in `queue_saturation_windows`.
    pub(crate) last_saturated_window: Option<u64>,
}

/// Cycles are grouped into `1 << SATURATION_WINDOW_SHIFT`-cycle windows for
/// the queue-saturation fault (1024 cycles).
pub(crate) const SATURATION_WINDOW_SHIFT: u32 = 10;

/// Domain separators so the three fault kinds draw independent streams
/// from one seed.
pub(crate) const DOMAIN_DROP: u64 = 0x6472_6F70; // "drop"
pub(crate) const DOMAIN_LATE: u64 = 0x6C61_7465; // "late"
pub(crate) const DOMAIN_SAT: u64 = 0x7361_7475; // "satu"

/// Finalizer of splitmix64: a full-avalanche 64-bit mixer.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a mixed word to a uniform f64 in [0, 1) using its top 53 bits.
pub(crate) fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}
