//! The ORAM-aware memory controller.
//!
//! The controller core in this module owns the per-channel queues, the
//! cached scheduling views and the DRAM handshake; the *decision* of which
//! candidate issues each cycle is delegated to a pluggable
//! [`SchedulePolicy`] object (see
//! [`crate::policy`] for the five shipped policies). The paper's two
//! algorithms are the anchor points of that policy space:
//!
//! * **Transaction-based scheduling** (Algorithm 1, the baseline): all
//!   commands of ORAM transaction *i* must be issued before any command of
//!   transaction *i+1*; within the transaction, FR-FCFS (row hits first,
//!   then oldest-first) is used per channel.
//! * **Proactive Bank scheduling** (Algorithm 2, the paper's PB): identical,
//!   except that when a channel has nothing issuable from transaction *i*,
//!   the scheduler may issue **PRE/ACT only** for transaction *i+1* requests
//!   whose row-buffer conflicts are *inter*-transaction — i.e. whose target
//!   bank has no pending transaction-*i* request. Data commands (RD/WR)
//!   remain strictly transaction-ordered, so the access sequence observable
//!   on the bus is unchanged.
//!
//! Module layout (mirroring the `string-oram` pipeline split):
//!
//! * [`mod@self`] — the [`MemoryController`] struct, its tick loop and
//!   queue admission;
//! * `cache` — the per-channel scheduling view caches;
//! * `schedule` — the three scheduling passes and command issue;
//! * `faults` — deterministic response-fault injection.

mod cache;
mod faults;
mod schedule;
#[cfg(test)]
mod tests;

pub use faults::{FaultConfigError, ResponseFaultConfig};
// Historical path compatibility: the policy selector used to live here.
pub use crate::policy::SchedulerPolicy;

use dram_sim::AddressMapping;
use dram_sim::{DramCommand, DramModule, PhysAddr};

use crate::policy::{PolicyStats, SchedulePolicy};
use crate::queue::{ChannelQueues, QueueFull};
use crate::request::{Completed, Request, RequestSpec, TxnId};
use crate::stats::SchedulerStats;

use cache::ChannelCache;
use faults::{mix64, u01, ResponseFaultState, DOMAIN_SAT, SATURATION_WINDOW_SHIFT};

/// One issued DRAM command, as recorded by the optional command trace.
///
/// The transaction attribution lets external conformance checkers (the
/// `sim-verify` crate) validate not just JEDEC timing but the ORAM security
/// contract: data commands must appear in transaction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandEvent {
    /// Cycle the command occupied the command bus.
    pub cycle: u64,
    /// The command itself.
    pub cmd: DramCommand,
    /// Transaction on whose behalf the command was issued; `None` for
    /// controller housekeeping (close-page precharges of idle rows).
    pub txn: Option<TxnId>,
}

/// Row-buffer management policy (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep rows open after column commands; conflicts pay PRE+ACT on the
    /// critical path but locality is exploited. The paper's assumption.
    #[default]
    Open,
    /// *Adaptive* close-page: precharge a bank as soon as no queued request
    /// wants its open row, removing PRE from the critical path of the next
    /// conflict while preserving pending row hits. (A literal close-page —
    /// PRE immediately after every column command — would forfeit the
    /// subtree layout's locality entirely; the adaptive form is the
    /// strongest fair competitor to PB.)
    Closed,
}

/// The memory controller: per-channel queues, a scheduling policy, and the
/// DRAM module it drives.
#[derive(Debug)]
pub struct MemoryController {
    dram: DramModule,
    mapping: AddressMapping,
    policy: Box<dyn SchedulePolicy>,
    page_policy: PagePolicy,
    queues: Vec<ChannelQueues>,
    next_id: u64,
    completed: Vec<Completed>,
    stats: SchedulerStats,
    last_cycle: u64,
    /// Per-channel scheduling view caches. A view stays valid until the
    /// channel's queues or bank states change, so stalled cycles (the
    /// common case) skip the queue scan entirely.
    caches: Vec<ChannelCache>,
    /// Pending (unissued) request count per bank, indexed
    /// `[channel][rank * banks_per_rank + bank]`, for idle accounting.
    pending_per_bank: Vec<Vec<u32>>,
    /// Optional command trace: every issued command with its cycle and
    /// owning transaction.
    command_trace: Option<Vec<CommandEvent>>,
    /// Optional deterministic response-fault injection.
    response_faults: Option<ResponseFaultState>,
}

impl MemoryController {
    /// Creates a controller over `dram` with `queue_capacity` entries per
    /// direction per channel (the paper uses 64), scheduling with the
    /// policy the `policy` tag names.
    #[must_use]
    pub fn new(
        dram: DramModule,
        mapping: AddressMapping,
        policy: SchedulerPolicy,
        queue_capacity: usize,
    ) -> Self {
        Self::with_policy(dram, mapping, policy.build(), queue_capacity)
    }

    /// Creates a controller scheduling with an explicit policy object —
    /// the extension point for policies beyond the shipped
    /// [`SchedulerPolicy`] tags.
    #[must_use]
    pub fn with_policy(
        dram: DramModule,
        mapping: AddressMapping,
        policy: Box<dyn SchedulePolicy>,
        queue_capacity: usize,
    ) -> Self {
        let channels = dram.geometry().channels;
        let banks = (dram.geometry().ranks_per_channel * dram.geometry().banks_per_rank) as usize;
        Self {
            dram,
            mapping,
            policy,
            page_policy: PagePolicy::Open,
            queues: (0..channels)
                .map(|_| ChannelQueues::new(queue_capacity))
                .collect(),
            next_id: 0,
            completed: Vec::new(),
            stats: SchedulerStats {
                per_channel_requests: vec![0; channels as usize],
                ..SchedulerStats::default()
            },
            last_cycle: 0,
            caches: (0..channels).map(|_| ChannelCache::default()).collect(),
            pending_per_bank: (0..channels).map(|_| vec![0; banks]).collect(),
            command_trace: None,
            response_faults: None,
        }
    }

    /// Enables deterministic response-fault injection (dropped/late data
    /// responses, queue saturation). Idempotent per config; the fault
    /// schedule restarts from the seed.
    ///
    /// # Panics
    ///
    /// If `cfg` fails [`ResponseFaultConfig::validate`].
    pub fn enable_response_faults(&mut self, cfg: ResponseFaultConfig) {
        if let Err(e) = cfg.validate() {
            panic!("invalid ResponseFaultConfig: {e}");
        }
        self.response_faults = Some(ResponseFaultState {
            cfg,
            draws: 0,
            last_saturated_window: None,
        });
    }

    /// Whether response-fault injection is active.
    #[must_use]
    pub fn response_faults_enabled(&self) -> bool {
        self.response_faults.is_some()
    }

    /// Whether the queue-saturation fault is active for the window
    /// containing `cycle`.
    fn saturated_at(&self, cycle: u64) -> bool {
        self.response_faults.as_ref().is_some_and(|f| {
            f.cfg.saturation_rate > 0.0
                && u01(mix64(
                    f.cfg.seed ^ DOMAIN_SAT ^ (cycle >> SATURATION_WINDOW_SHIFT),
                )) < f.cfg.saturation_rate
        })
    }

    /// Starts recording every issued command (cycle, command). Useful for
    /// debugging, external analysis and replay validation; costs memory
    /// proportional to the command count.
    pub fn enable_command_trace(&mut self) {
        self.command_trace = Some(Vec::new());
    }

    /// Takes the recorded command trace (empty if tracing was never
    /// enabled), leaving tracing active if it was.
    pub fn take_command_trace(&mut self) -> Vec<(u64, DramCommand)> {
        self.take_command_events()
            .into_iter()
            .map(|e| (e.cycle, e.cmd))
            .collect()
    }

    /// Takes the recorded command events — the trace with transaction
    /// attribution — leaving tracing active if it was enabled.
    pub fn take_command_events(&mut self) -> Vec<CommandEvent> {
        match &mut self.command_trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    fn record_trace(&mut self, cycle: u64, cmd: DramCommand, txn: Option<TxnId>) {
        if let Some(t) = &mut self.command_trace {
            t.push(CommandEvent { cycle, cmd, txn });
        }
    }

    /// The tag naming the policy in force.
    #[must_use]
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy.kind()
    }

    /// The stable name of the policy in force.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The policy-local counters of the policy in force.
    #[must_use]
    pub fn policy_stats(&self) -> PolicyStats {
        self.policy.stats()
    }

    /// The page policy in force (defaults to [`PagePolicy::Open`]).
    #[must_use]
    pub fn page_policy(&self) -> PagePolicy {
        self.page_policy
    }

    /// Selects the row-buffer management policy.
    pub fn set_page_policy(&mut self, policy: PagePolicy) {
        self.page_policy = policy;
    }

    /// The underlying DRAM module (for timing/geometry/bank statistics).
    #[must_use]
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Scheduler statistics (controller-level; use
    /// [`MemoryController::policy_stats`] for the policy-local counters).
    #[must_use]
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Number of requests currently queued (not yet issued).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queues.iter().map(ChannelQueues::len).sum()
    }

    /// Whether a request with this address/direction would currently be
    /// accepted.
    #[must_use]
    pub fn has_room(&self, addr: PhysAddr, is_write: bool) -> bool {
        let loc = self.mapping.decode(addr);
        let q = &self.queues[loc.channel as usize];
        if self.saturated_at(self.last_cycle) {
            q.dir_len(is_write) < q.capacity().div_ceil(2)
        } else {
            q.has_room(is_write)
        }
    }

    /// Enqueues a request at `cycle`.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the target channel queue has no free entry; the
    /// caller must stall and retry (nothing is enqueued).
    pub fn try_enqueue(&mut self, spec: RequestSpec, cycle: u64) -> Result<u64, QueueFull> {
        let loc = self.mapping.decode(spec.addr);
        if self.saturated_at(cycle) {
            let window = cycle >> SATURATION_WINDOW_SHIFT;
            if let Some(f) = &mut self.response_faults {
                if f.last_saturated_window != Some(window) {
                    f.last_saturated_window = Some(window);
                    self.stats.queue_saturation_windows += 1;
                }
            }
            let q = &self.queues[loc.channel as usize];
            if q.dir_len(spec.is_write) >= q.capacity().div_ceil(2) {
                return Err(QueueFull);
            }
        }
        let id = self.next_id;
        let req = Request {
            id,
            txn: spec.txn,
            loc,
            is_write: spec.is_write,
            arrival: cycle,
            first_cmd_at: None,
            class: None,
        };
        self.queues[loc.channel as usize].push(req)?;
        self.caches[loc.channel as usize].valid = false;
        let banks_per_rank = self.dram.geometry().banks_per_rank;
        self.pending_per_bank[loc.channel as usize]
            [(loc.rank * banks_per_rank + loc.bank) as usize] += 1;
        self.next_id += 1;
        Ok(id)
    }

    /// Takes all requests completed since the last call.
    pub fn drain_completed(&mut self) -> Vec<Completed> {
        std::mem::take(&mut self.completed)
    }

    /// Moves all requests completed since the last call into `out`,
    /// retaining the internal buffer (no allocation in steady state).
    pub fn drain_completed_into(&mut self, out: &mut Vec<Completed>) {
        out.append(&mut self.completed);
    }

    /// The transaction currently being drained: the smallest transaction id
    /// with an unissued request, if any.
    #[must_use]
    pub fn current_txn(&self) -> Option<TxnId> {
        self.queues.iter().filter_map(ChannelQueues::min_txn).min()
    }

    /// Advances the controller by one memory cycle: refresh housekeeping,
    /// then at most one command per channel according to the policy's plan
    /// for this tick.
    pub fn tick(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.last_cycle, "cycles must be non-decreasing");
        self.last_cycle = cycle;
        self.dram.tick(cycle);
        for q in &self.queues {
            self.stats.queue_occupancy_integral += q.len() as u64;
        }
        self.stats.ticks += 1;

        // Bank idle accounting (Fig. 12(a)): a bank with pending requests
        // either executes a command window this cycle or sits stalled —
        // under transaction-based scheduling mostly because of the barrier.
        let banks_per_rank = self.dram.geometry().banks_per_rank;
        for (ch, per_bank) in self.pending_per_bank.iter().enumerate() {
            for (b, &count) in per_bank.iter().enumerate() {
                let rank = b as u32 / banks_per_rank;
                let bank = b as u32 % banks_per_rank;
                let loc = dram_sim::DramLocation {
                    channel: ch as u32,
                    rank,
                    bank,
                    row: 0,
                    column: 0,
                };
                self.stats.bank_tick_integral += 1;
                if self.dram.open_row(&loc).is_some() {
                    self.stats.open_bank_integral += 1;
                }
                if count > 0 {
                    if self.dram.bank_busy_at(ch as u32, rank, bank, cycle) {
                        self.stats.busy_pending_bank_cycles += 1;
                    } else {
                        self.stats.stalled_bank_cycles += 1;
                    }
                }
            }
        }

        // Algorithm 1 line 9-11 / Algorithm 2 line 13-15: the current
        // transaction pointer advances as soon as no commands of it remain.
        let current = self.current_txn();

        let plan = self.policy.plan(cycle);
        let lookahead = self.policy.lookahead();
        let unconstrained = self.policy.unconstrained();
        for ch in 0..self.queues.len() as u32 {
            let issued = match current {
                Some(t) if plan.issue => {
                    self.schedule_channel(ch, t, lookahead, unconstrained, plan, cycle)
                }
                _ => false,
            };
            if !issued && self.page_policy == PagePolicy::Closed {
                self.close_idle_rows(ch, cycle);
            }
        }
    }
}
