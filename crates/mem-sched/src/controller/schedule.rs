//! The three scheduling passes (row-hit, bank-preparation, proactive) and
//! command issue, parameterized by the policy's per-tick [`PassPlan`].

use dram_sim::{CommandKind, DramCommand};

use crate::policy::{CandidateOrder, PassPlan};
use crate::request::{Completed, RowClass, TxnId};

use super::faults::{mix64, u01, DOMAIN_DROP, DOMAIN_LATE};
use super::MemoryController;

/// The direction filter rounds a [`CandidateOrder`] expands to: `None`
/// matches both directions in one age-ordered round (the FR-FCFS default);
/// the prioritized orders run two filtered rounds over the same
/// age-sorted candidate list.
fn direction_rounds(order: CandidateOrder) -> &'static [Option<bool>] {
    match order {
        CandidateOrder::Age => &[None],
        CandidateOrder::ReadsFirst => &[Some(false), Some(true)],
        CandidateOrder::WritesFirst => &[Some(true), Some(false)],
    }
}

impl MemoryController {
    /// Applies the plan's row-hit, bank-preparation and (when enabled)
    /// proactive PRE/ACT passes on one channel. Returns true if a command
    /// was issued.
    ///
    /// The cached view's *structure* (which requests exist, which are hits)
    /// is invalidated on every queue or bank-state change; row-open state
    /// consulted for PRE/ACT decisions is always read live. Refresh may
    /// close rows without invalidating the cache — a stale "hit" then
    /// simply fails `can_issue` harmlessly (rows never *open*
    /// asynchronously, so no hit is ever missed).
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    pub(super) fn schedule_channel(
        &mut self,
        ch: u32,
        current: TxnId,
        lookahead: u64,
        unconstrained: bool,
        plan: PassPlan,
        cycle: u64,
    ) -> bool {
        if !self.caches[ch as usize].valid
            || self.caches[ch as usize].built_for != (current, lookahead)
        {
            self.rebuild_cache(ch, current, lookahead, unconstrained);
        }

        // FR pass: oldest pending row hit that can issue its data command —
        // the only pass that issues data (RD/WR) commands. The plan's
        // direction rounds may let a younger read bypass an older write
        // hit (or vice versa); candidates never cross the transaction
        // window, so the reordering is intra-transaction only.
        for &round in direction_rounds(plan.hit_order) {
            for idx in 0..self.caches[ch as usize].hits.len() {
                let (_, key) = self.caches[ch as usize].hits[idx];
                if round.is_some_and(|w| w != key.0) {
                    continue;
                }
                let req = self.queues[ch as usize].get(key);
                let cmd = if req.is_write {
                    DramCommand::write(req.loc)
                } else {
                    DramCommand::read(req.loc)
                };
                if self.dram.can_issue(&cmd, cycle).is_ok() {
                    // A read issued under read priority while a write hit
                    // was pending counts as one deferral for the policy.
                    let bypassed = plan.hit_order == CandidateOrder::ReadsFirst
                        && !key.0
                        && self.caches[ch as usize].hits.iter().any(|&(_, (w, _))| w);
                    self.issue_data_command(ch, key, cmd, cycle, bypassed);
                    return true;
                }
            }
        }

        // FCFS pass: oldest current-transaction request per bank drives the
        // bank preparation (PRE/ACT), in age order across banks (direction
        // rounds applied on top). A bank with a pending row hit is left
        // open so the hit survives.
        for &round in direction_rounds(plan.prep_order) {
            for idx in 0..self.caches[ch as usize].order_current.len() {
                let (_, b) = self.caches[ch as usize].order_current[idx];
                let view = self.caches[ch as usize].views[b];
                let (_, key) = view.oldest_current.expect("in order_current");
                if round.is_some_and(|w| w != key.0) {
                    continue;
                }
                let req = self.queues[ch as usize].get(key).clone();
                match self.dram.open_row(&req.loc) {
                    Some(row) if row == req.loc.row => {
                        // Row ready but data command blocked (bus/timing).
                    }
                    Some(_) => {
                        if view.current_hit_pending {
                            continue; // FR-FCFS row-hit preservation
                        }
                        let cmd = DramCommand::precharge(req.loc);
                        if self.dram.can_issue(&cmd, cycle).is_ok() {
                            self.issue_prep_command(ch, key, cmd, cycle, RowClass::Conflict, false);
                            return true;
                        }
                    }
                    None => {
                        let cmd = DramCommand::activate(req.loc);
                        if self.dram.can_issue(&cmd, cycle).is_ok() {
                            self.issue_prep_command(ch, key, cmd, cycle, RowClass::Miss, false);
                            return true;
                        }
                    }
                }
            }
        }

        // Proactive pass (Algorithm 2, generalized to the policy's
        // lookahead): PRE/ACT for lookahead-window requests whose conflicts
        // are inter-transaction.
        if !plan.proactive || lookahead == 0 {
            return false;
        }
        for idx in 0..self.caches[ch as usize].order_future.len() {
            let (_, b) = self.caches[ch as usize].order_future[idx];
            let view = self.caches[ch as usize].views[b];
            // Guard: the bank must have no pending request from the current
            // transaction — otherwise the conflict is intra-transaction and
            // Algorithm 2 leaves it alone.
            if view.has_current {
                continue;
            }
            let (_, key) = view.oldest_future.expect("in order_future");
            let req = self.queues[ch as usize].get(key).clone();
            match self.dram.open_row(&req.loc) {
                Some(row) if row == req.loc.row => {
                    // Already prepared (or naturally open): future hit.
                }
                Some(_) => {
                    // Row-hit preservation, mirrored for the window: if any
                    // window request still wants the open row, leave the
                    // bank alone — otherwise PB would change row-buffer
                    // outcomes, which the paper's fidelity argument forbids.
                    if view.future_hit_pending {
                        continue;
                    }
                    let cmd = DramCommand::precharge(req.loc);
                    if self.dram.can_issue(&cmd, cycle).is_ok() {
                        self.issue_prep_command(ch, key, cmd, cycle, RowClass::Conflict, true);
                        return true;
                    }
                }
                None => {
                    let cmd = DramCommand::activate(req.loc);
                    if self.dram.can_issue(&cmd, cycle).is_ok() {
                        self.issue_prep_command(ch, key, cmd, cycle, RowClass::Miss, true);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Close-page policy: precharge any open bank with no pending request
    /// for its open row, as soon as timing allows. At most one PRE per
    /// channel per cycle (the command bus is shared).
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    pub(super) fn close_idle_rows(&mut self, ch: u32, cycle: u64) {
        let geometry = self.dram.geometry();
        let banks_per_rank = geometry.banks_per_rank;
        let ranks = geometry.ranks_per_channel;
        for rank in 0..ranks {
            for bank in 0..banks_per_rank {
                let loc = dram_sim::DramLocation {
                    channel: ch,
                    rank,
                    bank,
                    row: 0,
                    column: 0,
                };
                let Some(open) = self.dram.open_row(&loc) else {
                    continue;
                };
                let wanted = self.queues[ch as usize]
                    .reads
                    .iter()
                    .chain(self.queues[ch as usize].writes.iter())
                    .any(|r| r.loc.rank == rank && r.loc.bank == bank && r.loc.row == open);
                if wanted {
                    continue;
                }
                let cmd = DramCommand::precharge(dram_sim::DramLocation { row: open, ..loc });
                if self.dram.can_issue(&cmd, cycle).is_ok() {
                    self.dram.issue(cmd, cycle).expect("checked");
                    self.record_trace(cycle, cmd, None);
                    self.caches[ch as usize].valid = false;
                    self.stats.precharges += 1;
                    return;
                }
            }
        }
    }

    /// Issues the RD/WR for a request and retires it — unless an injected
    /// drop fault swallows the response.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn issue_data_command(
        &mut self,
        ch: u32,
        key: (bool, usize),
        cmd: DramCommand,
        cycle: u64,
        bypassed_write_hit: bool,
    ) {
        let outcome = self.dram.issue(cmd, cycle).expect("checked with can_issue");
        let txn = self.queues[ch as usize].get(key).txn;
        self.record_trace(cycle, cmd, Some(txn));
        self.caches[ch as usize].valid = false;
        self.policy.observe_data_issue(key.0, bypassed_write_hit);
        // Response-fault hooks. A *dropped* response consumes the DRAM
        // command (bus and bank timing are spent) but never retires the
        // request: it stays queued and a later scheduling pass reissues the
        // data command. The transaction pointer cannot advance past the
        // still-queued request, so data commands remain in transaction
        // order — the fault costs latency only. A *late* response retires
        // normally with `data_done_at` pushed back.
        let mut extra_delay = 0;
        if let Some(f) = &mut self.response_faults {
            f.draws += 1;
            if u01(mix64(f.cfg.seed ^ DOMAIN_DROP ^ f.draws)) < f.cfg.drop_rate {
                self.stats.responses_dropped += 1;
                let req = self.queues[ch as usize].get_mut(key);
                req.record_first_command(cycle, RowClass::Hit);
                return;
            }
            if u01(mix64(f.cfg.seed ^ DOMAIN_LATE ^ f.draws)) < f.cfg.late_rate {
                self.stats.responses_delayed += 1;
                extra_delay = f.cfg.late_delay;
            }
        }
        let banks_per_rank = self.dram.geometry().banks_per_rank;
        self.pending_per_bank[ch as usize]
            [(cmd.loc.rank * banks_per_rank + cmd.loc.bank) as usize] -= 1;
        let mut req = self.queues[ch as usize].remove(key);
        req.record_first_command(cycle, RowClass::Hit);
        let class = req.class.expect("set on first command");
        let completed = Completed {
            id: req.id,
            txn: req.txn,
            is_write: req.is_write,
            arrival: req.arrival,
            first_cmd_at: req.first_cmd_at.expect("set on first command"),
            issue_at: cycle,
            data_done_at: outcome.data_done_at.expect("data command") + extra_delay,
            class,
        };
        self.stats.record_completion(&completed);
        self.stats.per_channel_requests[ch as usize] += 1;
        self.completed.push(completed);
    }

    /// Issues a PRE or ACT on behalf of a request (classifying it if this
    /// is the request's first command) and updates the early-command
    /// statistics when the issue was proactive.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn issue_prep_command(
        &mut self,
        ch: u32,
        key: (bool, usize),
        cmd: DramCommand,
        cycle: u64,
        class_if_first: RowClass,
        proactive: bool,
    ) {
        self.dram.issue(cmd, cycle).expect("checked with can_issue");
        let txn = self.queues[ch as usize].get(key).txn;
        self.record_trace(cycle, cmd, Some(txn));
        self.caches[ch as usize].valid = false;
        let req = self.queues[ch as usize].get_mut(key);
        req.record_first_command(cycle, class_if_first);
        match cmd.kind {
            CommandKind::Precharge => {
                self.stats.precharges += 1;
                if proactive {
                    self.stats.early_precharges += 1;
                }
            }
            CommandKind::Activate => {
                self.stats.activates += 1;
                if proactive {
                    self.stats.early_activates += 1;
                }
            }
            _ => unreachable!("prep commands are PRE/ACT only"),
        }
    }
}
