use super::*;
use crate::policy::ProactiveBank;
use crate::request::RowClass;
use dram_sim::geometry::DramGeometry;
use dram_sim::timing::TimingParams;

fn controller(policy: SchedulerPolicy) -> MemoryController {
    let geometry = DramGeometry::test_small();
    let mapping = AddressMapping::hpca_default(&geometry);
    let dram = DramModule::new(geometry, TimingParams::test_fast());
    MemoryController::new(dram, mapping, policy, 16)
}

/// Builds an address that decodes to the given coordinates.
fn addr(c: &MemoryController, channel: u32, bank: u32, row: u64, column: u32) -> PhysAddr {
    c.mapping.encode(&dram_sim::DramLocation {
        channel,
        rank: 0,
        bank,
        row,
        column,
    })
}

fn run_until_done(c: &mut MemoryController, start: u64, limit: u64) -> (Vec<Completed>, u64) {
    let mut out = Vec::new();
    let mut cycle = start;
    while c.pending() > 0 {
        c.tick(cycle);
        out.extend(c.drain_completed());
        cycle += 1;
        assert!(cycle < start + limit, "scheduler wedged");
    }
    (out, cycle)
}

#[test]
fn single_read_completes() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    let a = addr(&c, 0, 0, 3, 1);
    c.try_enqueue(
        RequestSpec {
            addr: a,
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    let (done, _) = run_until_done(&mut c, 0, 200);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].class, RowClass::Miss); // cold bank
    assert!(done[0].data_done_at > 0);
}

#[test]
fn same_row_requests_hit() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    for col in 0..3 {
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 3, col),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
    }
    let (done, _) = run_until_done(&mut c, 0, 400);
    let hits = done.iter().filter(|d| d.class == RowClass::Hit).count();
    let misses = done.iter().filter(|d| d.class == RowClass::Miss).count();
    assert_eq!(misses, 1);
    assert_eq!(hits, 2);
}

#[test]
fn conflicting_rows_classified_as_conflict() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 3, 0),
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 9, 0),
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    let (done, _) = run_until_done(&mut c, 0, 500);
    let classes: Vec<RowClass> = done.iter().map(|d| d.class).collect();
    assert!(classes.contains(&RowClass::Miss));
    assert!(classes.contains(&RowClass::Conflict));
}

#[test]
fn transactions_issue_in_order() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    // Transaction 1 is a fast row hit candidate; transaction 0 is a
    // conflict-heavy one. Ordering must still be 0 before 1.
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 3, 0),
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 1, 5, 0),
            is_write: false,
            txn: TxnId(1),
        },
        0,
    )
    .unwrap();
    let (done, _) = run_until_done(&mut c, 0, 500);
    assert_eq!(done.len(), 2);
    let t0 = done.iter().find(|d| d.txn == TxnId(0)).unwrap();
    let t1 = done.iter().find(|d| d.txn == TxnId(1)).unwrap();
    assert!(
        t0.issue_at < t1.issue_at,
        "txn 0 data must be issued before txn 1 data"
    );
}

#[test]
fn pb_pulls_pre_act_forward() {
    // Transaction 0 occupies bank 0 with a long conflict chain while
    // transaction 1 wants bank 1 (inter-transaction conflict after a
    // previous row was opened there).
    let mk = |policy| {
        let mut c = controller(policy);
        // Pre-open a wrong row in bank 1 via a txn-0 request, then keep
        // txn 0 busy in bank 0.
        let reqs = [
            (addr(&c, 0, 1, 7, 0), TxnId(0)), // opens bank1 row7
            (addr(&c, 0, 0, 1, 0), TxnId(0)),
            (addr(&c, 0, 0, 2, 0), TxnId(0)), // conflict in bank0
            (addr(&c, 0, 0, 3, 0), TxnId(0)), // conflict in bank0
            (addr(&c, 0, 1, 9, 0), TxnId(1)), // future: bank1 row9 conflict
        ];
        for (a, t) in reqs {
            c.try_enqueue(
                RequestSpec {
                    addr: a,
                    is_write: false,
                    txn: t,
                },
                0,
            )
            .unwrap();
        }
        let (done, end) = run_until_done(&mut c, 0, 2000);
        let early = c.stats().early_precharges + c.stats().early_activates;
        (done, end, early)
    };
    let (done_base, end_base, early_base) = mk(SchedulerPolicy::TransactionBased);
    let (done_pb, end_pb, early_pb) = mk(SchedulerPolicy::proactive());
    assert_eq!(early_base, 0);
    assert!(early_pb > 0, "PB must issue some PRE/ACT early");
    assert!(
        end_pb <= end_base,
        "PB must not be slower: {end_pb} vs {end_base}"
    );
    // Row-buffer classification identical under both schedulers.
    let count = |v: &[Completed], cl: RowClass| v.iter().filter(|d| d.class == cl).count();
    for cl in [RowClass::Hit, RowClass::Miss, RowClass::Conflict] {
        assert_eq!(
            count(&done_base, cl),
            count(&done_pb, cl),
            "class {cl:?} count changed under PB"
        );
    }
    // Data commands remain transaction-ordered under PB.
    let t0_max = done_pb
        .iter()
        .filter(|d| d.txn == TxnId(0))
        .map(|d| d.issue_at)
        .max()
        .unwrap();
    let t1_min = done_pb
        .iter()
        .filter(|d| d.txn == TxnId(1))
        .map(|d| d.issue_at)
        .min()
        .unwrap();
    assert!(t0_max < t1_min, "PB reordered data commands");
}

#[test]
fn pb_respects_intra_transaction_guard() {
    let mut c = controller(SchedulerPolicy::proactive());
    // txn0 and txn1 both target bank 0 (different rows): PB must not
    // precharge bank 0 for txn1 while txn0 still needs it.
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 1, 0),
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 2, 0),
            is_write: false,
            txn: TxnId(1),
        },
        0,
    )
    .unwrap();
    let (done, _) = run_until_done(&mut c, 0, 500);
    let t0 = done.iter().find(|d| d.txn == TxnId(0)).unwrap();
    let t1 = done.iter().find(|d| d.txn == TxnId(1)).unwrap();
    assert!(t0.issue_at < t1.issue_at);
    // txn0's row must not have been precharged before its read: it was
    // a cold miss, not a conflict.
    assert_eq!(t0.class, RowClass::Miss);
}

#[test]
fn queue_full_reported() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    let a = addr(&c, 0, 0, 1, 0);
    for i in 0..16 {
        c.try_enqueue(
            RequestSpec {
                addr: a,
                is_write: false,
                txn: TxnId(i),
            },
            0,
        )
        .unwrap();
    }
    assert!(!c.has_room(a, false));
    assert!(c.has_room(a, true));
    assert_eq!(
        c.try_enqueue(
            RequestSpec {
                addr: a,
                is_write: false,
                txn: TxnId(99),
            },
            0
        ),
        Err(QueueFull)
    );
}

#[test]
fn writes_and_reads_both_complete() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 1, 0),
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 1, 1),
            is_write: true,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    let (done, _) = run_until_done(&mut c, 0, 500);
    assert_eq!(done.len(), 2);
    assert!(done.iter().any(|d| d.is_write));
    assert!(done.iter().any(|d| !d.is_write));
    assert_eq!(c.stats().reads_completed, 1);
    assert_eq!(c.stats().writes_completed, 1);
}

#[test]
fn unconstrained_interleaves_transactions() {
    // With the barrier removed, a fast row-hit of txn 1 may complete
    // before txn 0's conflict chain.
    let mut c = controller(SchedulerPolicy::Unconstrained);
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 1, 0),
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 1, 5, 0),
            is_write: false,
            txn: TxnId(1),
        },
        0,
    )
    .unwrap();
    let (done, _) = run_until_done(&mut c, 0, 500);
    // Both are cold misses in different banks: they overlap fully, so
    // the unconstrained schedule finishes them back to back rather
    // than serializing txn 1 behind txn 0.
    let t0 = done.iter().find(|d| d.txn == TxnId(0)).unwrap();
    let t1 = done.iter().find(|d| d.txn == TxnId(1)).unwrap();
    assert!((t1.issue_at as i64 - t0.issue_at as i64).abs() <= 2);
    assert!(!SchedulerPolicy::Unconstrained.preserves_transaction_order());
    assert!(SchedulerPolicy::proactive().preserves_transaction_order());
}

#[test]
fn close_page_precharges_idle_rows() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    c.set_page_policy(PagePolicy::Closed);
    assert_eq!(c.page_policy(), PagePolicy::Closed);
    let a = addr(&c, 0, 0, 3, 1);
    c.try_enqueue(
        RequestSpec {
            addr: a,
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    let mut cycle = 0;
    while c.pending() > 0 {
        c.tick(cycle);
        let _ = c.drain_completed();
        cycle += 1;
    }
    // Keep ticking: the close-page policy must precharge the row.
    let loc = c.mapping.decode(a);
    for _ in 0..100 {
        c.tick(cycle);
        cycle += 1;
    }
    assert_eq!(c.dram().open_row(&loc), None, "row should be closed");
    // A second access to the same row is now a miss, not a hit.
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 3, 2),
            is_write: false,
            txn: TxnId(1),
        },
        cycle,
    )
    .unwrap();
    let (done, _) = run_until_done(&mut c, cycle, 500);
    assert_eq!(done[0].class, RowClass::Miss);
}

#[test]
fn open_page_keeps_rows_open() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    let a = addr(&c, 0, 0, 3, 1);
    c.try_enqueue(
        RequestSpec {
            addr: a,
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    let (_, end) = run_until_done(&mut c, 0, 500);
    let loc = c.mapping.decode(a);
    for cycle in end..end + 100 {
        c.tick(cycle);
    }
    assert_eq!(c.dram().open_row(&loc), Some(3), "row stays open");
}

#[test]
fn channels_progress_in_parallel() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 0, 0, 1, 0),
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    c.try_enqueue(
        RequestSpec {
            addr: addr(&c, 1, 0, 1, 0),
            is_write: false,
            txn: TxnId(0),
        },
        0,
    )
    .unwrap();
    let (done, _) = run_until_done(&mut c, 0, 200);
    // Both cold misses complete at the same cycle: full channel overlap.
    assert_eq!(done[0].data_done_at, done[1].data_done_at);
}

/// Runs one transaction-per-request workload under drop faults.
fn run_with_drops(seed: u64) -> (Vec<Completed>, SchedulerStats) {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    c.enable_response_faults(ResponseFaultConfig {
        seed,
        drop_rate: 0.5,
        ..ResponseFaultConfig::default()
    });
    for i in 0..6u64 {
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, (i % 4) as u32, i, 0),
                is_write: false,
                txn: TxnId(i),
            },
            0,
        )
        .unwrap();
    }
    let (done, _) = run_until_done(&mut c, 0, 20_000);
    (done, c.stats().clone())
}

#[test]
fn dropped_responses_eventually_complete_in_order() {
    let (done, stats) = run_with_drops(11);
    assert_eq!(done.len(), 6, "every request completes despite drops");
    assert!(stats.responses_dropped > 0, "seed 11 must drop something");
    // Completions (and hence data commands) stay in transaction order.
    for pair in done.windows(2) {
        assert!(pair[0].txn <= pair[1].txn, "transaction order violated");
    }
    // Each request completes exactly once even after reissues.
    let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 6);
}

#[test]
fn fault_schedule_is_deterministic() {
    let (done_a, stats_a) = run_with_drops(11);
    let (done_b, stats_b) = run_with_drops(11);
    assert_eq!(done_a, done_b, "same seed must replay identically");
    assert_eq!(stats_a.responses_dropped, stats_b.responses_dropped);
    let (done_c, _) = run_with_drops(12);
    assert!(
        done_a != done_c || run_with_drops(13).0 != done_a,
        "different seeds should eventually differ"
    );
}

#[test]
fn zero_rates_match_fault_free_run() {
    let run = |faults: bool| {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        if faults {
            c.enable_response_faults(ResponseFaultConfig {
                seed: 99,
                ..ResponseFaultConfig::default()
            });
        }
        for i in 0..4u64 {
            c.try_enqueue(
                RequestSpec {
                    addr: addr(&c, 0, (i % 2) as u32, i, 0),
                    is_write: i % 2 == 1,
                    txn: TxnId(i),
                },
                0,
            )
            .unwrap();
        }
        run_until_done(&mut c, 0, 10_000).0
    };
    assert_eq!(run(false), run(true), "zero rates must be a no-op");
}

#[test]
fn late_responses_shift_data_done_only() {
    let run = |late: bool| {
        let mut c = controller(SchedulerPolicy::TransactionBased);
        c.enable_response_faults(ResponseFaultConfig {
            seed: 7,
            late_rate: if late { 1.0 } else { 0.0 },
            late_delay: 100,
            ..ResponseFaultConfig::default()
        });
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 3, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 1_000);
        (done[0], c.stats().responses_delayed)
    };
    let (clean, delayed_clean) = run(false);
    let (late, delayed_late) = run(true);
    assert_eq!(delayed_clean, 0);
    assert_eq!(delayed_late, 1);
    assert_eq!(late.issue_at, clean.issue_at, "command timing unchanged");
    assert_eq!(late.data_done_at, clean.data_done_at + 100);
}

#[test]
fn queue_saturation_halves_capacity() {
    let mut c = controller(SchedulerPolicy::TransactionBased);
    c.enable_response_faults(ResponseFaultConfig {
        seed: 3,
        saturation_rate: 1.0,
        ..ResponseFaultConfig::default()
    });
    // Capacity is 16 per direction; a saturated window admits only 8.
    let a = addr(&c, 0, 0, 1, 0);
    let mut accepted = 0u32;
    loop {
        let spec = RequestSpec {
            addr: a,
            is_write: false,
            txn: TxnId(0),
        };
        match c.try_enqueue(spec, 5) {
            Ok(_) => accepted += 1,
            Err(QueueFull) => break,
        }
    }
    assert_eq!(accepted, 8, "saturation must halve the effective capacity");
    assert_eq!(c.stats().queue_saturation_windows, 1, "one window counted");
    assert!(
        !c.has_room(a, false),
        "has_room must agree with try_enqueue"
    );
    assert!(c.has_room(a, true), "write direction has its own capacity");
}

#[test]
fn response_fault_config_validation() {
    assert!(ResponseFaultConfig::default().validate().is_ok());
    assert_eq!(
        ResponseFaultConfig {
            drop_rate: 1.0,
            ..ResponseFaultConfig::default()
        }
        .validate(),
        Err(FaultConfigError::CertainDrop),
        "certain drop means no forward progress"
    );
    let err = ResponseFaultConfig {
        late_rate: 1.5,
        ..ResponseFaultConfig::default()
    }
    .validate()
    .unwrap_err();
    assert_eq!(
        err,
        FaultConfigError::RateOutOfRange {
            field: "late_rate",
            value: 1.5
        }
    );
    assert!(err.to_string().contains("late_rate"), "{err}");
}

#[test]
fn policy_accessors_round_trip() {
    for tag in [
        SchedulerPolicy::TransactionBased,
        SchedulerPolicy::proactive(),
        SchedulerPolicy::Unconstrained,
        SchedulerPolicy::read_over_write(),
        SchedulerPolicy::speculative(),
        SchedulerPolicy::fixed_cadence(),
    ] {
        let c = controller(tag);
        assert_eq!(c.policy(), tag);
        assert_eq!(c.policy_name(), tag.name());
    }
    // The explicit trait-object constructor is equivalent to the tag path.
    let geometry = DramGeometry::test_small();
    let mapping = AddressMapping::hpca_default(&geometry);
    let dram = DramModule::new(geometry, TimingParams::test_fast());
    let c = MemoryController::with_policy(dram, mapping, Box::new(ProactiveBank::new(2)), 16);
    assert_eq!(c.policy(), SchedulerPolicy::ProactiveBank { lookahead: 2 });
}

#[test]
fn read_over_write_prefers_reads_then_drains() {
    // An older write hit and a younger read hit in the same row: the
    // baseline issues the write first (age order); read-over-write issues
    // the read first, defers the write, and — with drain_bound 1 — then
    // drains it.
    let run = |policy| {
        let mut c = controller(policy);
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 3, 0),
                is_write: true,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 3, 1),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let (done, _) = run_until_done(&mut c, 0, 1_000);
        let read = *done.iter().find(|d| !d.is_write).unwrap();
        let write = *done.iter().find(|d| d.is_write).unwrap();
        (read, write, c.policy_stats())
    };
    let (read_b, write_b, stats_b) = run(SchedulerPolicy::TransactionBased);
    assert!(
        write_b.issue_at < read_b.issue_at,
        "baseline is age-ordered"
    );
    assert_eq!(stats_b, PolicyStats::default());

    let (read_r, write_r, stats_r) = run(SchedulerPolicy::ReadOverWrite { drain_bound: 1 });
    assert!(
        read_r.issue_at < write_r.issue_at,
        "read priority must reorder within the transaction"
    );
    assert_eq!(stats_r.deferred_writes, 1, "one write bypass counted");
    assert_eq!(stats_r.write_drains, 1, "the deferred write drained");
}

#[test]
fn fixed_cadence_issues_only_on_slots() {
    let run = |policy| {
        let mut c = controller(policy);
        c.try_enqueue(
            RequestSpec {
                addr: addr(&c, 0, 0, 3, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        let (done, end) = run_until_done(&mut c, 0, 1_000);
        (done[0], end, c.policy_stats())
    };
    let (done_base, end_base, _) = run(SchedulerPolicy::TransactionBased);
    let (done_fc, end_fc, stats_fc) = run(SchedulerPolicy::FixedCadence { period: 4 });
    assert_eq!(done_fc.first_cmd_at % 4, 0, "ACT must land on a slot");
    assert_eq!(done_fc.issue_at % 4, 0, "RD must land on a slot");
    assert!(end_fc >= end_base, "withholding slots cannot be faster");
    assert!(stats_fc.withheld_slots > 0, "off-slot ticks counted");
    assert_eq!(done_fc.class, done_base.class, "row outcome unchanged");
}

#[test]
fn speculative_window_prepares_deeper_than_pb() {
    // txn 0 grinds through a conflict chain in bank 0 while txns 1..=3
    // wait as cold misses in banks 1..=3. Both depths eventually prepare
    // every bank early; the depth shows in *when*: a 3-deep window may
    // ACT for txns 2 and 3 while txn 0 is still draining, PB (lookahead
    // 1) cannot see past txn 1 until then.
    let run = |policy| {
        let mut c = controller(policy);
        c.enable_command_trace();
        let reqs = [
            (addr(&c, 0, 0, 1, 0), TxnId(0)),
            (addr(&c, 0, 0, 2, 0), TxnId(0)),
            (addr(&c, 0, 0, 3, 0), TxnId(0)),
            (addr(&c, 0, 1, 5, 0), TxnId(1)),
            (addr(&c, 0, 2, 5, 0), TxnId(2)),
            (addr(&c, 0, 3, 5, 0), TxnId(3)),
        ];
        for (a, t) in reqs {
            c.try_enqueue(
                RequestSpec {
                    addr: a,
                    is_write: false,
                    txn: t,
                },
                0,
            )
            .unwrap();
        }
        let (done, end) = run_until_done(&mut c, 0, 5_000);
        // Data commands stay transaction-ordered under any window depth.
        let mut by_issue: Vec<&Completed> = done.iter().collect();
        by_issue.sort_unstable_by_key(|d| d.issue_at);
        for pair in by_issue.windows(2) {
            assert!(pair[0].txn <= pair[1].txn, "data reordered");
        }
        let txn0_last_data = done
            .iter()
            .filter(|d| d.txn == TxnId(0))
            .map(|d| d.issue_at)
            .max()
            .unwrap();
        let deep_preps = c
            .take_command_events()
            .iter()
            .filter(|e| {
                e.cmd.kind == dram_sim::CommandKind::Activate
                    && e.txn.is_some_and(|t| t.0 >= 2)
                    && e.cycle < txn0_last_data
            })
            .count();
        (
            end,
            c.stats().early_precharges + c.stats().early_activates,
            deep_preps,
        )
    };
    let (end_pb, early_pb, deep_pb) = run(SchedulerPolicy::proactive());
    let (end_sw, early_sw, deep_sw) = run(SchedulerPolicy::SpeculativeWindow { window: 3 });
    assert!(early_pb > 0);
    assert!(early_sw >= early_pb);
    assert_eq!(deep_pb, 0, "PB cannot prepare past the next transaction");
    assert!(
        deep_sw >= 2,
        "3-deep window must ACT for txns 2..=3 while txn 0 drains, got {deep_sw}"
    );
    assert!(end_sw <= end_pb, "extra preparation must not cost cycles");
}
