//! The fast functional memory backend.
//!
//! A row-aware latency model with **no per-cycle DRAM state**: each request
//! is classified against a per-bank open-row table (hit / miss / conflict,
//! the same classification the cycle-accurate scheduler makes at
//! first-command time) and completes after a fixed per-class latency. There
//! is no command-bus, bank-timing or refresh machinery, which makes the
//! backend several times faster per simulated cycle — the intended
//! substrate for long-trace and protocol-only runs where ORAM-level
//! behaviour (access sequence, stash dynamics, block movement) matters but
//! JEDEC-exact timing does not.
//!
//! Fidelity contract (checked by the backend-differential test in
//! `string-oram`): driven by the same transaction stream, the functional
//! backend observes the **identical ORAM access sequence** as the
//! cycle-accurate backend — only per-request latencies differ. Data
//! commands complete strictly in transaction order, so `sim-verify`'s
//! transaction-order oracle attaches unchanged; the JEDEC shadow-timing
//! checker does not apply (there are no ACT/PRE commands to check).

use dram_sim::timing::TimingParams;
use dram_sim::{AddressMapping, DramCommand, DramGeometry, DramLocation, DramModule, PhysAddr};

use crate::backend::{BackendSnapshot, MemoryBackend};
use crate::controller::CommandEvent;
use crate::queue::QueueFull;
use crate::request::{Completed, RequestSpec, RowClass, TxnId};
use crate::stats::SchedulerStats;
use std::collections::VecDeque;

/// Per-class request latencies of the functional model, in memory cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalTiming {
    /// Latency of a row-buffer hit (CAS + burst).
    pub hit_latency: u64,
    /// Latency of a row-buffer miss (ACT + CAS + burst).
    pub miss_latency: u64,
    /// Latency of a row-buffer conflict (PRE + ACT + CAS + burst).
    pub conflict_latency: u64,
    /// Minimum gap between two data commands on one channel (bus
    /// occupancy); must be at least 1.
    pub bus_gap: u64,
}

impl FunctionalTiming {
    /// Derives the per-class latencies from JEDEC timing parameters, so the
    /// functional model stays anchored to the configured device even though
    /// it does not simulate it.
    #[must_use]
    pub fn from_timing(t: &TimingParams) -> Self {
        Self {
            hit_latency: t.cl + t.t_burst,
            miss_latency: t.t_rcd + t.cl + t.t_burst,
            conflict_latency: t.t_rp + t.t_rcd + t.cl + t.t_burst,
            bus_gap: t.t_ccd.max(t.t_burst).max(1),
        }
    }
}

/// A request whose issue cycle is already decided, parked until the
/// simulation clock reaches it.
///
/// Because requests are enqueued in strict transaction order (the pipeline's
/// enqueue stage blocks on its FIFO head), every request's issue cycle is a
/// pure function of earlier arrivals and can be computed once at enqueue
/// time. Ticking then only *releases* due requests — O(1) when nothing is
/// due — instead of rescanning the front transaction every cycle.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    issue_at: u64,
    id: u64,
    txn: TxnId,
    loc: DramLocation,
    is_write: bool,
    arrival: u64,
    class: RowClass,
    latency: u64,
}

/// The functional backend: transaction-ordered service over an open-row
/// table. See the module docs for the model and its fidelity contract.
#[derive(Debug)]
pub struct FunctionalBackend {
    mapping: AddressMapping,
    geometry: DramGeometry,
    timing: FunctionalTiming,
    /// Scheduled-but-unreleased requests per channel. Per-channel issue
    /// cycles are monotone in enqueue order, so each deque stays sorted by
    /// construction; the transaction gate additionally guarantees that all
    /// requests due at one tick belong to a single transaction, so
    /// releasing channel-by-channel keeps the event stream
    /// transaction-monotone.
    waiting: Vec<VecDeque<Scheduled>>,
    /// Total scheduled-but-unreleased requests across all channels.
    waiting_len: usize,
    /// Open row per bank, indexed by [`DramLocation::bank_key`].
    open_rows: Vec<Option<u64>>,
    /// First cycle at which each channel's data bus is free again.
    chan_free_at: Vec<u64>,
    /// Transaction of the most recently enqueued request; a request of a
    /// *new* transaction may issue no earlier than one cycle after the
    /// previous transaction's last data command (the transaction barrier).
    cur_txn: Option<TxnId>,
    /// Earliest issue cycle permitted for the current transaction.
    txn_gate: u64,
    /// Latest issue cycle handed out so far (across all channels).
    max_issue: u64,
    /// Queued requests per channel and direction (`[reads, writes]`), for
    /// capacity accounting compatible with the cycle-accurate queues.
    dir_counts: Vec<[usize; 2]>,
    queue_capacity: usize,
    next_id: u64,
    completed: Vec<Completed>,
    stats: SchedulerStats,
    command_trace: Option<Vec<CommandEvent>>,
}

impl FunctionalBackend {
    /// Creates a functional backend for `geometry` with `queue_capacity`
    /// entries per direction per channel (matching the cycle-accurate
    /// controller's queue shape).
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails validation.
    #[must_use]
    pub fn new(
        geometry: DramGeometry,
        mapping: AddressMapping,
        timing: FunctionalTiming,
        queue_capacity: usize,
    ) -> Self {
        if let Err(e) = geometry.validate() {
            panic!("invalid DramGeometry: {e}");
        }
        let channels = geometry.channels as usize;
        Self {
            open_rows: vec![None; geometry.total_banks() as usize],
            chan_free_at: vec![0; channels],
            dir_counts: vec![[0, 0]; channels],
            geometry,
            mapping,
            timing,
            waiting: vec![VecDeque::new(); channels],
            waiting_len: 0,
            cur_txn: None,
            txn_gate: 0,
            max_issue: 0,
            queue_capacity,
            next_id: 0,
            completed: Vec::new(),
            stats: SchedulerStats {
                per_channel_requests: vec![0; channels],
                ..SchedulerStats::default()
            },
            command_trace: None,
        }
    }

    /// The per-class latencies in force.
    #[must_use]
    pub fn timing(&self) -> &FunctionalTiming {
        &self.timing
    }

    /// Releases one scheduled request at its issue cycle: frees the queue
    /// slot, emits the data command and the completion.
    fn release(&mut self, req: Scheduled) {
        let ch = req.loc.channel as usize;
        self.dir_counts[ch][usize::from(req.is_write)] -= 1;
        if let Some(trace) = &mut self.command_trace {
            let cmd = if req.is_write {
                DramCommand::write(req.loc)
            } else {
                DramCommand::read(req.loc)
            };
            trace.push(CommandEvent {
                cycle: req.issue_at,
                cmd,
                txn: Some(req.txn),
            });
        }
        let completed = Completed {
            id: req.id,
            txn: req.txn,
            is_write: req.is_write,
            arrival: req.arrival,
            first_cmd_at: req.issue_at,
            issue_at: req.issue_at,
            data_done_at: req.issue_at + req.latency,
            class: req.class,
        };
        self.stats.record_completion(&completed);
        self.stats.per_channel_requests[ch] += 1;
        self.completed.push(completed);
    }
}

impl MemoryBackend for FunctionalBackend {
    fn try_enqueue(&mut self, spec: RequestSpec, cycle: u64) -> Result<u64, QueueFull> {
        let loc = self.mapping.decode(spec.addr);
        let ch = loc.channel as usize;
        let dir = usize::from(spec.is_write);
        if self.dir_counts[ch][dir] >= self.queue_capacity {
            return Err(QueueFull);
        }
        debug_assert!(
            self.cur_txn.is_none_or(|last| last <= spec.txn),
            "requests must be enqueued in transaction order"
        );
        let id = self.next_id;
        self.next_id += 1;
        self.dir_counts[ch][dir] += 1;
        // Transaction barrier: all of transaction i's data commands issue
        // before any of transaction i+1's, the same barrier the
        // transaction-based scheduler enforces. Strict enqueue order means
        // a new transaction's gate is final the moment its first request
        // arrives.
        if self.cur_txn != Some(spec.txn) {
            if self.cur_txn.is_some() {
                self.txn_gate = self.max_issue + 1;
            }
            self.cur_txn = Some(spec.txn);
        }
        // Within the transaction, channels proceed independently as their
        // buses free up.
        let issue_at = cycle.max(self.txn_gate).max(self.chan_free_at[ch]);
        self.chan_free_at[ch] = issue_at + self.timing.bus_gap;
        self.max_issue = self.max_issue.max(issue_at);
        // Classify against the open-row table now: per bank, issue order
        // equals enqueue order (a bank lives on one channel and per-channel
        // issue cycles are monotone in enqueue order).
        let key = loc.bank_key(&self.geometry) as usize;
        let class = match self.open_rows[key] {
            Some(row) if row == loc.row => RowClass::Hit,
            Some(_) => {
                self.stats.precharges += 1;
                self.stats.activates += 1;
                RowClass::Conflict
            }
            None => {
                self.stats.activates += 1;
                RowClass::Miss
            }
        };
        self.open_rows[key] = Some(loc.row);
        let latency = match class {
            RowClass::Hit => self.timing.hit_latency,
            RowClass::Miss => self.timing.miss_latency,
            RowClass::Conflict => self.timing.conflict_latency,
        };
        self.waiting[ch].push_back(Scheduled {
            issue_at,
            id,
            txn: spec.txn,
            loc,
            is_write: spec.is_write,
            arrival: cycle,
            class,
            latency,
        });
        self.waiting_len += 1;
        Ok(id)
    }

    fn has_room(&self, addr: PhysAddr, is_write: bool) -> bool {
        let loc = self.mapping.decode(addr);
        self.dir_counts[loc.channel as usize][usize::from(is_write)] < self.queue_capacity
    }

    fn tick(&mut self, cycle: u64) {
        self.stats.ticks += 1;
        self.stats.queue_occupancy_integral += self.waiting_len as u64;
        if self.waiting_len == 0 {
            return;
        }
        for ch in 0..self.waiting.len() {
            while self.waiting[ch]
                .front()
                .is_some_and(|r| r.issue_at <= cycle)
            {
                let Some(req) = self.waiting[ch].pop_front() else {
                    break;
                };
                self.waiting_len -= 1;
                self.release(req);
            }
        }
    }

    fn drain_completed(&mut self) -> Vec<Completed> {
        std::mem::take(&mut self.completed)
    }

    fn drain_completed_into(&mut self, out: &mut Vec<Completed>) {
        out.append(&mut self.completed);
    }

    fn pending(&self) -> usize {
        self.waiting_len
    }

    fn enable_command_trace(&mut self) {
        self.command_trace = Some(Vec::new());
    }

    fn take_command_events(&mut self) -> Vec<CommandEvent> {
        match &mut self.command_trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    fn sched_stats(&self) -> &SchedulerStats {
        &self.stats
    }

    fn dram_module(&self) -> Option<&DramModule> {
        None
    }

    fn snapshot(&self) -> BackendSnapshot {
        BackendSnapshot {
            sched: self.stats.clone(),
            dram: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> FunctionalBackend {
        let geometry = DramGeometry::test_small();
        let mapping = AddressMapping::hpca_default(&geometry);
        let timing = FunctionalTiming::from_timing(&TimingParams::test_fast());
        FunctionalBackend::new(geometry, mapping, timing, 16)
    }

    fn addr(b: &FunctionalBackend, channel: u32, bank: u32, row: u64, column: u32) -> PhysAddr {
        b.mapping.encode(&DramLocation {
            channel,
            rank: 0,
            bank,
            row,
            column,
        })
    }

    fn run_until_done(b: &mut FunctionalBackend, start: u64, limit: u64) -> Vec<Completed> {
        let mut out = Vec::new();
        let mut cycle = start;
        while b.pending() > 0 {
            MemoryBackend::tick(b, cycle);
            out.extend(b.drain_completed());
            cycle += 1;
            assert!(cycle < start + limit, "functional backend wedged");
        }
        out
    }

    #[test]
    fn classifies_hit_miss_conflict() {
        let mut b = backend();
        for (row, col) in [(3, 0), (3, 1), (9, 0)] {
            b.try_enqueue(
                RequestSpec {
                    addr: addr(&b, 0, 0, row, col),
                    is_write: false,
                    txn: TxnId(0),
                },
                0,
            )
            .unwrap();
        }
        let done = run_until_done(&mut b, 0, 200);
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].class, RowClass::Miss, "cold bank");
        assert_eq!(done[1].class, RowClass::Hit, "same row");
        assert_eq!(done[2].class, RowClass::Conflict, "other row");
        assert!(done[2].data_done_at - done[2].issue_at > done[1].data_done_at - done[1].issue_at);
    }

    #[test]
    fn transaction_barrier_enforced() {
        let mut b = backend();
        // txn 1 targets a free channel but must still wait for txn 0.
        b.try_enqueue(
            RequestSpec {
                addr: addr(&b, 0, 0, 1, 0),
                is_write: false,
                txn: TxnId(0),
            },
            0,
        )
        .unwrap();
        b.try_enqueue(
            RequestSpec {
                addr: addr(&b, 1, 0, 5, 0),
                is_write: false,
                txn: TxnId(1),
            },
            0,
        )
        .unwrap();
        let done = run_until_done(&mut b, 0, 200);
        let t0 = done.iter().find(|d| d.txn == TxnId(0)).unwrap();
        let t1 = done.iter().find(|d| d.txn == TxnId(1)).unwrap();
        assert!(t0.issue_at < t1.issue_at, "txn 0 data before txn 1 data");
    }

    #[test]
    fn channel_bus_gap_spreads_same_txn_requests() {
        let mut b = backend();
        for col in 0..3 {
            b.try_enqueue(
                RequestSpec {
                    addr: addr(&b, 0, 0, 3, col),
                    is_write: false,
                    txn: TxnId(0),
                },
                0,
            )
            .unwrap();
        }
        let done = run_until_done(&mut b, 0, 200);
        let gap = b.timing().bus_gap;
        assert_eq!(done[1].issue_at - done[0].issue_at, gap);
        assert_eq!(done[2].issue_at - done[1].issue_at, gap);
    }

    #[test]
    fn capacity_enforced_per_direction() {
        let mut b = backend();
        let a = addr(&b, 0, 0, 1, 0);
        for i in 0..16 {
            b.try_enqueue(
                RequestSpec {
                    addr: a,
                    is_write: false,
                    txn: TxnId(i),
                },
                0,
            )
            .unwrap();
        }
        assert!(!MemoryBackend::has_room(&b, a, false));
        assert!(MemoryBackend::has_room(&b, a, true));
        assert_eq!(
            b.try_enqueue(
                RequestSpec {
                    addr: a,
                    is_write: false,
                    txn: TxnId(99),
                },
                0
            ),
            Err(QueueFull)
        );
    }

    #[test]
    fn command_trace_has_data_commands_in_txn_order() {
        let mut b = backend();
        MemoryBackend::enable_command_trace(&mut b);
        for i in 0..4u64 {
            b.try_enqueue(
                RequestSpec {
                    addr: addr(&b, (i % 2) as u32, 0, i, 0),
                    is_write: i % 2 == 1,
                    txn: TxnId(i),
                },
                0,
            )
            .unwrap();
        }
        run_until_done(&mut b, 0, 500);
        let events = b.take_command_events();
        assert_eq!(events.len(), 4, "one data command per request");
        for pair in events.windows(2) {
            assert!(pair[0].txn <= pair[1].txn, "transaction order violated");
        }
    }

    #[test]
    fn snapshot_has_no_dram_layer() {
        let b = backend();
        let snap = MemoryBackend::snapshot(&b);
        assert!(snap.dram.is_none());
        assert!(MemoryBackend::dram_module(&b).is_none());
    }
}
