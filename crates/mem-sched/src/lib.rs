//! # mem-sched — ORAM-aware DRAM command scheduling
//!
//! This crate implements the memory-controller layer of the String ORAM
//! reproduction: per-channel read/write queues, FR-FCFS command selection,
//! and a pluggable [`policy::SchedulePolicy`] lab of command-scheduling
//! policies. The paper's two algorithms anchor the policy space —
//!
//! * the baseline **transaction-based** scheduler (Algorithm 1,
//!   [`policy::FrFcfs`]), which confines all command issue to the oldest
//!   incomplete ORAM transaction, and
//! * the **Proactive Bank (PB)** scheduler (Algorithm 2,
//!   [`policy::ProactiveBank`]), which may pull `PRE`/`ACT` commands of the
//!   next transaction forward when their row-buffer conflicts are
//!   inter-transaction — hiding row-miss latency in otherwise-idle banks
//!   without changing the data access sequence —
//!
//! and three more points explore the rest of it: [`policy::ReadOverWrite`]
//! (read priority with a bounded write drain),
//! [`policy::SpeculativeWindow`] (PB generalized to a k-transaction
//! lookahead) and [`policy::FixedCadence`] (Cloak-style fixed issue-slot
//! grid). Every policy except the explicitly insecure unconstrained
//! ablation preserves the observable transaction-ordered data-command
//! sequence.
//!
//! The controller drives a [`dram_sim::DramModule`]; protocol logic lives in
//! `ring-oram` and whole-system integration in `string-oram`.
//!
//! # Example
//!
//! ```
//! use dram_sim::{DramModule, AddressMapping, PhysAddr};
//! use dram_sim::geometry::DramGeometry;
//! use dram_sim::timing::TimingParams;
//! use mem_sched::{MemoryController, SchedulerPolicy, RequestSpec, TxnId};
//!
//! let geometry = DramGeometry::test_small();
//! let mapping = AddressMapping::hpca_default(&geometry);
//! let dram = DramModule::new(geometry, TimingParams::test_fast());
//! let mut ctrl = MemoryController::new(dram, mapping, SchedulerPolicy::proactive(), 64);
//!
//! ctrl.try_enqueue(RequestSpec { addr: PhysAddr(0), is_write: false, txn: TxnId(0) }, 0)?;
//! let mut cycle = 0;
//! while ctrl.pending() > 0 {
//!     ctrl.tick(cycle);
//!     cycle += 1;
//! }
//! let done = ctrl.drain_completed();
//! assert_eq!(done.len(), 1);
//! # Ok::<(), mem_sched::QueueFull>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::redundant_clone)]
#![warn(clippy::large_enum_variant)]
// Library code must surface failures as values or documented panics, never
// as ad-hoc unwraps; tests are free to unwrap (a panic IS the failure).
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod controller;
pub mod functional;
pub mod policy;
pub mod queue;
pub mod request;
pub mod stats;

pub use backend::{BackendSnapshot, MemoryBackend};
pub use controller::{
    CommandEvent, FaultConfigError, MemoryController, PagePolicy, ResponseFaultConfig,
};
pub use functional::{FunctionalBackend, FunctionalTiming};
pub use policy::{
    CandidateOrder, FixedCadence, FrFcfs, PassPlan, PolicyStats, ProactiveBank, ReadOverWrite,
    SchedulePolicy, SchedulerPolicy, SpeculativeWindow,
};
pub use queue::QueueFull;
pub use request::{Completed, RequestSpec, RowClass, TxnId};
pub use stats::SchedulerStats;
