//! Cloak-style fixed temporal distribution of command issue slots.

use super::{PassPlan, PolicyStats, SchedulePolicy, SchedulerPolicy};

/// Issues commands only on a fixed clock grid: cycles where
/// `cycle % period == 0` are issue slots; every other cycle is withheld
/// regardless of pending work. Because the slot grid is a pure function
/// of the clock — independent of queue depth, bank state or offered load —
/// command *issue opportunities* cannot modulate with demand, which is the
/// Cloak-style temporal-hardening end of the policy spectrum (the cost is
/// the throughput lost to withheld slots).
#[derive(Debug, Clone, Copy)]
pub struct FixedCadence {
    period: u64,
    stats: PolicyStats,
}

impl FixedCadence {
    /// A fixed-cadence scheduler with an issue slot every `period` cycles
    /// (1 recovers the baseline).
    ///
    /// # Panics
    ///
    /// When `period` is 0 (the grid would have no slots at all).
    #[must_use]
    pub fn new(period: u64) -> Self {
        assert!(period >= 1, "period must be >= 1");
        Self {
            period,
            stats: PolicyStats::default(),
        }
    }
}

impl SchedulePolicy for FixedCadence {
    fn name(&self) -> &'static str {
        "fixed-cadence"
    }

    fn kind(&self) -> SchedulerPolicy {
        SchedulerPolicy::FixedCadence {
            period: self.period,
        }
    }

    fn plan(&mut self, cycle: u64) -> PassPlan {
        let slot = cycle.is_multiple_of(self.period);
        if !slot {
            self.stats.withheld_slots += 1;
        }
        PassPlan {
            issue: slot,
            ..PassPlan::default()
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}
