//! The baseline FR-FCFS policy (paper Algorithm 1), plus its insecure
//! unconstrained ablation.

use super::{PassPlan, SchedulePolicy, SchedulerPolicy};

/// Transaction-based FR-FCFS (paper Algorithm 1): oldest row hit of the
/// current transaction first, then oldest-first bank preparation, no
/// lookahead. The [`FrFcfs::unconstrained`] constructor lifts the
/// transaction barrier entirely — the insecure ablation the paper uses as
/// its performance ceiling.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrFcfs {
    unconstrained: bool,
}

impl FrFcfs {
    /// The transaction-based baseline.
    #[must_use]
    pub fn new() -> Self {
        Self {
            unconstrained: false,
        }
    }

    /// The insecure unconstrained ablation: plain FR-FCFS with no
    /// transaction barrier.
    #[must_use]
    pub fn unconstrained() -> Self {
        Self {
            unconstrained: true,
        }
    }
}

impl SchedulePolicy for FrFcfs {
    fn name(&self) -> &'static str {
        if self.unconstrained {
            "unconstrained"
        } else {
            "fr-fcfs"
        }
    }

    fn kind(&self) -> SchedulerPolicy {
        if self.unconstrained {
            SchedulerPolicy::Unconstrained
        } else {
            SchedulerPolicy::TransactionBased
        }
    }

    fn lookahead(&self) -> u64 {
        // The unconstrained ablation treats *every* queued request as
        // current; an unbounded window keeps the controller's cache key
        // stable and its future window trivially empty.
        if self.unconstrained {
            u64::MAX
        } else {
            0
        }
    }

    fn unconstrained(&self) -> bool {
        self.unconstrained
    }

    fn plan(&mut self, _cycle: u64) -> PassPlan {
        PassPlan::default()
    }
}
