//! Pluggable command-scheduling policies.
//!
//! The controller core ([`crate::controller`]) owns the queues, the cached
//! per-channel scheduling views and the DRAM handshake; *which* candidate
//! issues on a given cycle is delegated to a [`SchedulePolicy`] object.
//! Every policy works with the same three building blocks the controller
//! exposes per channel per tick:
//!
//! 1. the **row-hit (FR) pass** over pending current-window requests whose
//!    row is already open — the only pass that issues data (RD/WR)
//!    commands;
//! 2. the **bank-preparation (FCFS) pass** that drives PRE/ACT for the
//!    oldest current-window request per bank;
//! 3. the optional **proactive pass** that issues PRE/ACT for requests in
//!    a lookahead window of future transactions, guarded so only
//!    *inter*-transaction conflicts are touched (paper Algorithm 2).
//!
//! A policy shapes a tick through its [`PassPlan`]: whether the channel may
//! issue at all ([`FixedCadence`] withholds off-slot cycles), in what order
//! the candidates of each pass are tried ([`ReadOverWrite`] prefers reads),
//! and whether the proactive pass runs ([`ProactiveBank`],
//! [`SpeculativeWindow`]). Data commands remain strictly transaction-ordered
//! under every policy except the explicitly insecure unconstrained ablation
//! — the passes only ever select among legal candidates, so no policy can
//! widen the observable access sequence.
//!
//! The five shipped policies:
//!
//! | policy | name | temporal behavior |
//! |---|---|---|
//! | [`FrFcfs`] | `fr-fcfs` | paper Algorithm 1 (transaction-based baseline) |
//! | [`ProactiveBank`] | `proactive-bank` | paper Algorithm 2, lookahead 1 |
//! | [`ReadOverWrite`] | `read-over-write` | read priority, bounded write drain |
//! | [`SpeculativeWindow`] | `speculative-window` | Algorithm 2 generalized to k transactions |
//! | [`FixedCadence`] | `fixed-cadence` | Cloak-style fixed issue-slot grid |

mod fixed_cadence;
mod fr_fcfs;
mod proactive_bank;
mod read_over_write;
mod speculative_window;

pub use fixed_cadence::FixedCadence;
pub use fr_fcfs::FrFcfs;
pub use proactive_bank::ProactiveBank;
pub use read_over_write::ReadOverWrite;
pub use speculative_window::SpeculativeWindow;

/// Order in which a pass tries its candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateOrder {
    /// Strictly oldest-first (enqueue id), both directions interleaved —
    /// the FR-FCFS default every policy of the paper uses.
    #[default]
    Age,
    /// All read candidates (oldest-first), then all write candidates.
    ReadsFirst,
    /// All write candidates (oldest-first), then all read candidates.
    WritesFirst,
}

/// One tick's scheduling plan, produced once per controller tick by
/// [`SchedulePolicy::plan`] and applied to every channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassPlan {
    /// Whether any command may issue this cycle. `false` withholds the
    /// whole tick (the fixed-cadence gate); page-policy housekeeping is
    /// unaffected.
    pub issue: bool,
    /// Candidate order of the row-hit (data command) pass.
    pub hit_order: CandidateOrder,
    /// Candidate order of the bank-preparation (PRE/ACT) pass.
    pub prep_order: CandidateOrder,
    /// Whether the proactive lookahead pass runs (it is additionally a
    /// no-op when [`SchedulePolicy::lookahead`] is 0).
    pub proactive: bool,
}

impl Default for PassPlan {
    fn default() -> Self {
        Self {
            issue: true,
            hit_order: CandidateOrder::Age,
            prep_order: CandidateOrder::Age,
            proactive: false,
        }
    }
}

/// Policy-local counters, owned by the policy object and folded into
/// [`crate::SchedulerStats`] whenever a backend snapshot is taken (see
/// [`crate::MemoryController::policy_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyStats {
    /// Ticks in which the policy withheld every issue slot (the
    /// fixed-cadence off-grid cycles), whether or not work was pending.
    pub withheld_slots: u64,
    /// Write row-hits bypassed in favor of a read data command.
    pub deferred_writes: u64,
    /// Forced write drains after the deferral bound was reached.
    pub write_drains: u64,
}

/// A command-scheduling policy: per-tick candidate selection over the
/// queues and bank state, with proactive-pass hooks and policy-local
/// statistics.
///
/// # Contract
///
/// * [`SchedulePolicy::plan`] is called exactly once per controller tick
///   (before any channel is scheduled) and must be deterministic in the
///   policy's state and the cycle number.
/// * [`SchedulePolicy::lookahead`] and
///   [`SchedulePolicy::unconstrained`] must be constant for the lifetime
///   of the policy — the controller's per-channel view caches are keyed on
///   them.
/// * [`SchedulePolicy::observe_data_issue`] is feedback only; a policy may
///   update internal mode (e.g. the deferred-write drain) but cannot veto
///   the already-issued command.
/// * Unless [`SchedulePolicy::unconstrained`] returns `true`, the
///   controller never offers the policy a data-command candidate outside
///   the current transaction, so every conforming policy preserves the
///   observable transaction-ordered RD/WR sequence by construction.
pub trait SchedulePolicy: std::fmt::Debug + Send {
    /// Stable policy name used in reports, bench JSON and CI schemas.
    fn name(&self) -> &'static str;

    /// The [`SchedulerPolicy`] tag describing this policy, for config
    /// round-trips and display.
    fn kind(&self) -> SchedulerPolicy;

    /// Transactions past the current one whose PRE/ACT the proactive pass
    /// may pull forward (0 disables the pass). Must be constant.
    fn lookahead(&self) -> u64 {
        0
    }

    /// Whether the transaction barrier is lifted entirely (the insecure
    /// ablation). Must be constant.
    fn unconstrained(&self) -> bool {
        false
    }

    /// Produces the plan for this tick. Called once per controller tick.
    fn plan(&mut self, cycle: u64) -> PassPlan;

    /// Feedback: a data command issued on some channel.
    /// `bypassed_write_hit` is `true` when a read was chosen while a write
    /// row-hit was pending on the same channel (only possible under
    /// [`CandidateOrder::ReadsFirst`]).
    fn observe_data_issue(&mut self, is_write: bool, bypassed_write_hit: bool) {
        let _ = (is_write, bypassed_write_hit);
    }

    /// The policy's local counters.
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }
}

/// Scheduling policy selector: the configuration-level tag naming each
/// shipped [`SchedulePolicy`] implementation.
///
/// This enum predates the trait and is kept as the thin constructor over
/// the trait objects ([`SchedulerPolicy::build`]) so existing call sites —
/// `SystemConfig`, `MemoryController::new`, the benches — keep working
/// with a `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// The baseline transaction-based scheduler (paper Algorithm 1),
    /// implemented by [`FrFcfs`].
    TransactionBased,
    /// The Proactive Bank scheduler (paper Algorithm 2) with a lookahead of
    /// `lookahead` future transactions (the paper uses 1), implemented by
    /// [`ProactiveBank`].
    ProactiveBank {
        /// How many transactions past the current one may have their
        /// PRE/ACT commands pulled forward.
        lookahead: u64,
    },
    /// **Insecure ablation**: plain FR-FCFS with no transaction barrier at
    /// all — data commands of different ORAM transactions freely
    /// interleave. This breaks ORAM's atomic/ordered access-sequence
    /// guarantee and exists only to quantify what the security constraint
    /// costs (and how much of that cost PB recovers legally).
    Unconstrained,
    /// Read-priority scheduling with a bounded deferred write-drain,
    /// implemented by [`ReadOverWrite`].
    ReadOverWrite {
        /// Write row-hits that may be bypassed before a drain is forced.
        drain_bound: u64,
    },
    /// Algorithm 2 generalized to a `window`-transaction PRE/ACT
    /// lookahead with the same inter-transaction-only guard, implemented
    /// by [`SpeculativeWindow`].
    SpeculativeWindow {
        /// Lookahead window in transactions (1 recovers Proactive Bank).
        window: u64,
    },
    /// Cloak-style fixed temporal distribution of command issue slots,
    /// implemented by [`FixedCadence`].
    FixedCadence {
        /// Cycles between issue slots (1 recovers the baseline).
        period: u64,
    },
}

impl SchedulerPolicy {
    /// The paper's PB configuration (lookahead of one transaction).
    #[must_use]
    pub fn proactive() -> Self {
        Self::ProactiveBank { lookahead: 1 }
    }

    /// Read-over-write with the default drain bound of 8 bypasses.
    #[must_use]
    pub fn read_over_write() -> Self {
        Self::ReadOverWrite { drain_bound: 8 }
    }

    /// Speculative window with the default 4-transaction lookahead.
    #[must_use]
    pub fn speculative() -> Self {
        Self::SpeculativeWindow { window: 4 }
    }

    /// Fixed cadence with the default 2-cycle issue-slot period.
    #[must_use]
    pub fn fixed_cadence() -> Self {
        Self::FixedCadence { period: 2 }
    }

    /// Whether the policy upholds the ORAM transaction ordering guarantee.
    #[must_use]
    pub fn preserves_transaction_order(self) -> bool {
        !matches!(self, Self::Unconstrained)
    }

    /// Stable policy name used in reports, bench JSON and CI schemas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::TransactionBased => "fr-fcfs",
            Self::ProactiveBank { .. } => "proactive-bank",
            Self::Unconstrained => "unconstrained",
            Self::ReadOverWrite { .. } => "read-over-write",
            Self::SpeculativeWindow { .. } => "speculative-window",
            Self::FixedCadence { .. } => "fixed-cadence",
        }
    }

    /// Constructs the policy object this tag names.
    ///
    /// # Panics
    ///
    /// When a variant's knob is out of range (`FixedCadence` with
    /// `period == 0`); `SystemConfig::validate` in `string-oram` rejects
    /// such configurations before they reach a controller.
    #[must_use]
    pub fn build(self) -> Box<dyn SchedulePolicy> {
        match self {
            Self::TransactionBased => Box::new(FrFcfs::new()),
            Self::ProactiveBank { lookahead } => Box::new(ProactiveBank::new(lookahead)),
            Self::Unconstrained => Box::new(FrFcfs::unconstrained()),
            Self::ReadOverWrite { drain_bound } => Box::new(ReadOverWrite::new(drain_bound)),
            Self::SpeculativeWindow { window } => Box::new(SpeculativeWindow::new(window)),
            Self::FixedCadence { period } => Box::new(FixedCadence::new(period)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let tags = [
            SchedulerPolicy::TransactionBased,
            SchedulerPolicy::proactive(),
            SchedulerPolicy::Unconstrained,
            SchedulerPolicy::read_over_write(),
            SchedulerPolicy::speculative(),
            SchedulerPolicy::fixed_cadence(),
        ];
        let names: Vec<_> = tags.iter().map(|t| t.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate policy name");
        assert_eq!(SchedulerPolicy::TransactionBased.name(), "fr-fcfs");
        assert_eq!(SchedulerPolicy::proactive().name(), "proactive-bank");
    }

    #[test]
    fn build_round_trips_the_tag() {
        for tag in [
            SchedulerPolicy::TransactionBased,
            SchedulerPolicy::ProactiveBank { lookahead: 3 },
            SchedulerPolicy::Unconstrained,
            SchedulerPolicy::ReadOverWrite { drain_bound: 5 },
            SchedulerPolicy::SpeculativeWindow { window: 7 },
            SchedulerPolicy::FixedCadence { period: 4 },
        ] {
            let built = tag.build();
            assert_eq!(built.kind(), tag, "kind() must round-trip");
            assert_eq!(built.name(), tag.name(), "names must agree");
        }
    }

    #[test]
    fn trait_defaults_match_the_baseline() {
        let mut p = SchedulerPolicy::TransactionBased.build();
        assert_eq!(p.lookahead(), 0);
        assert!(!p.unconstrained());
        assert_eq!(p.plan(0), PassPlan::default());
        assert_eq!(p.stats(), PolicyStats::default());
    }

    #[test]
    fn order_preservation_flags() {
        assert!(SchedulerPolicy::proactive().preserves_transaction_order());
        assert!(SchedulerPolicy::read_over_write().preserves_transaction_order());
        assert!(SchedulerPolicy::speculative().preserves_transaction_order());
        assert!(SchedulerPolicy::fixed_cadence().preserves_transaction_order());
        assert!(!SchedulerPolicy::Unconstrained.preserves_transaction_order());
    }
}
