//! The paper's Proactive Bank scheduler (Algorithm 2).

use super::{CandidateOrder, PassPlan, SchedulePolicy, SchedulerPolicy};

/// Proactive Bank (paper Algorithm 2): identical to the FR-FCFS baseline
/// for the current transaction, but banks with no pending
/// current-transaction request may issue PRE/ACT for requests up to
/// `lookahead` transactions ahead. Data commands stay strictly
/// transaction-ordered; only bank preparation is pulled forward, and only
/// across transactions (never reordering within one), so the observable
/// access sequence is unchanged.
#[derive(Debug, Clone, Copy)]
pub struct ProactiveBank {
    lookahead: u64,
}

impl ProactiveBank {
    /// A PB scheduler looking `lookahead` transactions ahead (the paper
    /// uses 1; 0 degenerates to the baseline).
    #[must_use]
    pub fn new(lookahead: u64) -> Self {
        Self { lookahead }
    }
}

impl SchedulePolicy for ProactiveBank {
    fn name(&self) -> &'static str {
        "proactive-bank"
    }

    fn kind(&self) -> SchedulerPolicy {
        SchedulerPolicy::ProactiveBank {
            lookahead: self.lookahead,
        }
    }

    fn lookahead(&self) -> u64 {
        self.lookahead
    }

    fn plan(&mut self, _cycle: u64) -> PassPlan {
        PassPlan {
            issue: true,
            hit_order: CandidateOrder::Age,
            prep_order: CandidateOrder::Age,
            proactive: self.lookahead > 0,
        }
    }
}
