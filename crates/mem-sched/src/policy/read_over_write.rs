//! Read-priority scheduling with a bounded deferred write-drain.

use super::{CandidateOrder, PassPlan, PolicyStats, SchedulePolicy, SchedulerPolicy};

/// Prefers read data commands over writes: within every pass the read
/// candidates are tried (oldest-first) before the write candidates, so a
/// read row hit bypasses an older write row hit. Each such bypass defers
/// the write; once `drain_bound` consecutive deferrals accumulate the
/// policy flips into a drain mode that prefers writes until one issues,
/// bounding write starvation.
///
/// Reordering happens only *within* a transaction's legal candidate set —
/// the controller never offers candidates across the transaction barrier —
/// so the observable transaction-ordered access sequence is identical to
/// the baseline's.
#[derive(Debug, Clone, Copy)]
pub struct ReadOverWrite {
    drain_bound: u64,
    deferred: u64,
    draining: bool,
    stats: PolicyStats,
}

impl ReadOverWrite {
    /// A read-priority scheduler forcing a write drain after
    /// `drain_bound` bypasses (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// When `drain_bound` is 0 (the policy would never drain writes it
    /// keeps deferring).
    #[must_use]
    pub fn new(drain_bound: u64) -> Self {
        assert!(drain_bound >= 1, "drain_bound must be >= 1");
        Self {
            drain_bound,
            deferred: 0,
            draining: false,
            stats: PolicyStats::default(),
        }
    }
}

impl SchedulePolicy for ReadOverWrite {
    fn name(&self) -> &'static str {
        "read-over-write"
    }

    fn kind(&self) -> SchedulerPolicy {
        SchedulerPolicy::ReadOverWrite {
            drain_bound: self.drain_bound,
        }
    }

    fn plan(&mut self, _cycle: u64) -> PassPlan {
        let order = if self.draining {
            CandidateOrder::WritesFirst
        } else {
            CandidateOrder::ReadsFirst
        };
        PassPlan {
            issue: true,
            hit_order: order,
            prep_order: order,
            proactive: false,
        }
    }

    fn observe_data_issue(&mut self, is_write: bool, bypassed_write_hit: bool) {
        if is_write {
            if self.draining {
                self.stats.write_drains += 1;
            }
            self.deferred = 0;
            self.draining = false;
        } else if bypassed_write_hit {
            self.deferred += 1;
            self.stats.deferred_writes += 1;
            if self.deferred >= self.drain_bound {
                self.draining = true;
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}
