//! Proactive Bank generalized to a k-transaction lookahead window.

use super::{CandidateOrder, PassPlan, SchedulePolicy, SchedulerPolicy};

/// [`super::ProactiveBank`] generalized to a `window`-transaction PRE/ACT
/// lookahead. The inter-transaction-only guard is unchanged: a bank may
/// prepare for a future transaction only while it has no pending
/// current-transaction request, and the future window mirrors the
/// row-hit-preservation skip, so the guard's security argument carries
/// over for any k — the data-command sequence is untouched, only more
/// bank idle time is converted into early preparation.
#[derive(Debug, Clone, Copy)]
pub struct SpeculativeWindow {
    window: u64,
}

impl SpeculativeWindow {
    /// A speculative scheduler looking `window` transactions ahead
    /// (1 recovers Proactive Bank exactly).
    #[must_use]
    pub fn new(window: u64) -> Self {
        Self { window }
    }
}

impl SchedulePolicy for SpeculativeWindow {
    fn name(&self) -> &'static str {
        "speculative-window"
    }

    fn kind(&self) -> SchedulerPolicy {
        SchedulerPolicy::SpeculativeWindow {
            window: self.window,
        }
    }

    fn lookahead(&self) -> u64 {
        self.window
    }

    fn plan(&mut self, _cycle: u64) -> PassPlan {
        PassPlan {
            issue: true,
            hit_order: CandidateOrder::Age,
            prep_order: CandidateOrder::Age,
            proactive: self.window > 0,
        }
    }
}
