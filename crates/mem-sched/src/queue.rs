//! Per-channel read and write request queues.

use crate::request::{Request, TxnId};

/// Error returned when a queue has no free entry; the ORAM controller must
/// stall and retry (which, as the paper notes, back-pressures the core
/// pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory request queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// The two request queues of one channel (Table II: 64 read + 64 write
/// entries per channel).
#[derive(Debug, Clone)]
pub(crate) struct ChannelQueues {
    pub reads: Vec<Request>,
    pub writes: Vec<Request>,
    capacity: usize,
}

impl ChannelQueues {
    pub fn new(capacity: usize) -> Self {
        Self {
            reads: Vec::with_capacity(capacity),
            writes: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Inserts a request into the appropriate queue.
    ///
    /// Requests must arrive in non-decreasing transaction order (the ORAM
    /// controller's natural order); this keeps both queues sorted by
    /// transaction so [`Self::min_txn`] is O(1).
    pub fn push(&mut self, req: Request) -> Result<(), QueueFull> {
        let q = if req.is_write {
            &mut self.writes
        } else {
            &mut self.reads
        };
        if q.len() >= self.capacity {
            return Err(QueueFull);
        }
        debug_assert!(
            q.last().is_none_or(|last| last.txn <= req.txn),
            "requests must be enqueued in transaction order"
        );
        q.push(req);
        Ok(())
    }

    /// Whether a request of the given direction would be accepted.
    pub fn has_room(&self, is_write: bool) -> bool {
        let q = if is_write { &self.writes } else { &self.reads };
        q.len() < self.capacity
    }

    /// Total queued requests.
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Queued requests in one direction.
    pub fn dir_len(&self, is_write: bool) -> usize {
        if is_write {
            self.writes.len()
        } else {
            self.reads.len()
        }
    }

    /// Configured capacity per direction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Smallest transaction id among queued requests, if any. O(1): both
    /// queues are transaction-sorted (see [`Self::push`]) and removal
    /// preserves order.
    pub fn min_txn(&self) -> Option<TxnId> {
        match (self.reads.first(), self.writes.first()) {
            (Some(a), Some(b)) => Some(a.txn.min(b.txn)),
            (Some(a), None) => Some(a.txn),
            (None, Some(b)) => Some(b.txn),
            (None, None) => None,
        }
    }

    /// Shared access to a request by (is_write, index).
    pub fn get(&self, key: (bool, usize)) -> &Request {
        if key.0 {
            &self.writes[key.1]
        } else {
            &self.reads[key.1]
        }
    }

    /// Mutable access to a request by (is_write, index).
    pub fn get_mut(&mut self, key: (bool, usize)) -> &mut Request {
        if key.0 {
            &mut self.writes[key.1]
        } else {
            &mut self.reads[key.1]
        }
    }

    /// Removes and returns a request by (is_write, index).
    pub fn remove(&mut self, key: (bool, usize)) -> Request {
        if key.0 {
            self.writes.remove(key.1)
        } else {
            self.reads.remove(key.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::DramLocation;

    fn req(id: u64, txn: u64, is_write: bool, bank: u32) -> Request {
        Request {
            id,
            txn: TxnId(txn),
            loc: DramLocation {
                channel: 0,
                rank: 0,
                bank,
                row: 0,
                column: 0,
            },
            is_write,
            arrival: 0,
            first_cmd_at: None,
            class: None,
        }
    }

    #[test]
    fn capacity_enforced_per_direction() {
        let mut q = ChannelQueues::new(2);
        q.push(req(0, 0, false, 0)).unwrap();
        q.push(req(1, 0, false, 0)).unwrap();
        assert_eq!(q.push(req(2, 0, false, 0)), Err(QueueFull));
        // Writes have their own capacity.
        q.push(req(3, 0, true, 0)).unwrap();
        assert!(q.has_room(true));
        assert!(!q.has_room(false));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn min_txn_spans_both_queues() {
        let mut q = ChannelQueues::new(8);
        q.push(req(0, 5, false, 0)).unwrap();
        q.push(req(1, 3, true, 0)).unwrap();
        assert_eq!(q.min_txn(), Some(TxnId(3)));
    }

    #[test]
    fn remove_returns_request() {
        let mut q = ChannelQueues::new(8);
        q.push(req(7, 1, false, 3)).unwrap();
        let r = q.remove((false, 0));
        assert_eq!(r.id, 7);
        assert_eq!(q.len(), 0);
    }
}
