//! Memory requests and their scheduling lifecycle.

use dram_sim::{DramLocation, PhysAddr};

/// Identifier of an ORAM transaction: all memory requests belonging to the
/// same ORAM operation (read path, eviction, reshuffle) share one id, and
/// ids are issued in strictly increasing protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Row-buffer outcome of a request, classified at the moment the scheduler
/// issues the *first* command on the request's behalf:
///
/// * the bank already had the right row open → [`RowClass::Hit`];
/// * the bank was precharged → [`RowClass::Miss`] (ACT needed);
/// * another row was open → [`RowClass::Conflict`] (PRE + ACT needed).
///
/// Because classification happens when the need is *determined* rather than
/// when the data moves, the Proactive Bank scheduler reports identical
/// counts to the baseline — it only shifts PRE/ACT issue time, exactly as
/// the paper argues ("without reducing or changing the number of row buffer
/// conflicts").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowClass {
    /// Row already open: RD/WR only.
    Hit,
    /// Bank precharged: ACT + RD/WR.
    Miss,
    /// Wrong row open: PRE + ACT + RD/WR.
    Conflict,
}

/// A request as submitted by the ORAM controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpec {
    /// Physical byte address of the block.
    pub addr: PhysAddr,
    /// `true` for a write-back, `false` for a read.
    pub is_write: bool,
    /// Owning ORAM transaction.
    pub txn: TxnId,
}

/// Internal scheduling state of a queued request.
#[derive(Debug, Clone)]
pub(crate) struct Request {
    /// Monotonic id assigned at enqueue (also the global age order).
    pub id: u64,
    pub txn: TxnId,
    pub loc: DramLocation,
    pub is_write: bool,
    /// Cycle the request entered the queue.
    pub arrival: u64,
    /// Cycle of the first command issued on this request's behalf.
    pub first_cmd_at: Option<u64>,
    /// Row-buffer classification (set with the first command).
    pub class: Option<RowClass>,
}

impl Request {
    /// Records the first command issued for this request, classifying it.
    pub fn record_first_command(&mut self, cycle: u64, class: RowClass) {
        if self.first_cmd_at.is_none() {
            self.first_cmd_at = Some(cycle);
            self.class = Some(class);
        }
    }
}

/// A finished request, handed back to the ORAM/system layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completed {
    /// Enqueue id.
    pub id: u64,
    /// Owning transaction.
    pub txn: TxnId,
    /// Direction.
    pub is_write: bool,
    /// Cycle the request entered the queue.
    pub arrival: u64,
    /// Cycle the first command was issued for it.
    pub first_cmd_at: u64,
    /// Cycle the RD/WR command was issued.
    pub issue_at: u64,
    /// Cycle the data burst completed.
    pub data_done_at: u64,
    /// Row-buffer outcome.
    pub class: RowClass,
}

impl Completed {
    /// Queueing delay: from arrival to the first command issued on the
    /// request's behalf (the paper's "memory request queuing time").
    #[must_use]
    pub fn queue_wait(&self) -> u64 {
        self.first_cmd_at.saturating_sub(self.arrival)
    }

    /// Total latency from arrival to the last data beat.
    #[must_use]
    pub fn total_latency(&self) -> u64 {
        self.data_done_at.saturating_sub(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_ids_order() {
        assert!(TxnId(1) < TxnId(2));
        assert_eq!(TxnId(3).to_string(), "T3");
    }

    #[test]
    fn first_command_classification_is_sticky() {
        let mut r = Request {
            id: 0,
            txn: TxnId(0),
            loc: DramLocation {
                channel: 0,
                rank: 0,
                bank: 0,
                row: 0,
                column: 0,
            },
            is_write: false,
            arrival: 5,
            first_cmd_at: None,
            class: None,
        };
        r.record_first_command(10, RowClass::Conflict);
        r.record_first_command(12, RowClass::Hit); // ignored
        assert_eq!(r.first_cmd_at, Some(10));
        assert_eq!(r.class, Some(RowClass::Conflict));
    }

    #[test]
    fn completed_derived_metrics() {
        let c = Completed {
            id: 1,
            txn: TxnId(2),
            is_write: false,
            arrival: 100,
            first_cmd_at: 130,
            issue_at: 150,
            data_done_at: 165,
            class: RowClass::Miss,
        };
        assert_eq!(c.queue_wait(), 30);
        assert_eq!(c.total_latency(), 65);
    }
}
