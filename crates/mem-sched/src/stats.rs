//! Scheduler-level statistics.

use crate::policy::PolicyStats;
use crate::request::{Completed, RowClass};

/// Counters the memory controller accumulates while scheduling.
///
/// Together with the DRAM module's bank-busy accounting these provide every
/// series the paper's Figs. 11 and 12 report: queueing times per direction,
/// queue occupancy, row-buffer class mix, and the fraction of PRE/ACT
/// commands the active policy's proactive pass managed to issue early.
/// The policy-local counters ([`PolicyStats`]) are folded in via
/// [`SchedulerStats::absorb_policy`] whenever a backend snapshot is taken.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Scheduler ticks observed.
    pub ticks: u64,
    /// Sum over ticks of total queued requests (mean occupancy numerator).
    pub queue_occupancy_integral: u64,
    /// Completed reads.
    pub reads_completed: u64,
    /// Completed writes.
    pub writes_completed: u64,
    /// Total queue-wait cycles of completed reads.
    pub read_queue_wait: u64,
    /// Total queue-wait cycles of completed writes.
    pub write_queue_wait: u64,
    /// Row-buffer hits among completed requests.
    pub hits: u64,
    /// Row-buffer misses among completed requests.
    pub misses: u64,
    /// Row-buffer conflicts among completed requests.
    pub conflicts: u64,
    /// PRE commands issued by the scheduler on behalf of queued requests.
    pub precharges: u64,
    /// ACT commands issued by the scheduler on behalf of queued requests.
    pub activates: u64,
    /// PRE commands issued ahead of their transaction by any policy's
    /// proactive pass (Proactive Bank, speculative window, …).
    pub early_precharges: u64,
    /// ACT commands issued ahead of their transaction by any policy's
    /// proactive pass.
    pub early_activates: u64,
    /// Write row-hits bypassed in favor of a read data command (absorbed
    /// from the policy's local counters; nonzero only under read-priority
    /// policies).
    pub deferred_writes: u64,
    /// Forced write drains after a read-priority policy's deferral bound
    /// was reached (absorbed from the policy's local counters).
    pub write_drains: u64,
    /// Ticks in which the policy withheld every issue slot (absorbed from
    /// the policy's local counters; nonzero only under fixed-cadence
    /// policies).
    pub withheld_issue_slots: u64,
    /// Bank-cycles in which a bank had pending requests but executed
    /// nothing (the "bank idle time" the paper's Fig. 12(a) attributes to
    /// the transaction-based scheduling barrier).
    pub stalled_bank_cycles: u64,
    /// Bank-cycles in which a bank had pending requests and was executing.
    pub busy_pending_bank_cycles: u64,
    /// Requests completed per channel (for channel-imbalance analysis,
    /// cf. the imbalance-aware scheduler of Che et al., ICCD'19).
    pub per_channel_requests: Vec<u64>,
    /// Sum over ticks of banks with an open row (for the power model's
    /// active-background term).
    pub open_bank_integral: u64,
    /// Sum over ticks of total banks (denominator for the above).
    pub bank_tick_integral: u64,
    /// Data responses delayed by injected late-response faults.
    pub responses_delayed: u64,
    /// Data commands whose response was dropped by fault injection and
    /// later reissued.
    pub responses_dropped: u64,
    /// Cycle windows during which injected queue saturation halved the
    /// effective queue capacity (counted once per window, on the first
    /// enqueue attempt that observed it).
    pub queue_saturation_windows: u64,
}

impl SchedulerStats {
    /// Folds one completed request into the counters.
    pub(crate) fn record_completion(&mut self, c: &Completed) {
        if c.is_write {
            self.writes_completed += 1;
            self.write_queue_wait += c.queue_wait();
        } else {
            self.reads_completed += 1;
            self.read_queue_wait += c.queue_wait();
        }
        match c.class {
            RowClass::Hit => self.hits += 1,
            RowClass::Miss => self.misses += 1,
            RowClass::Conflict => self.conflicts += 1,
        }
    }

    /// Mean queue wait of reads, in cycles.
    #[must_use]
    pub fn mean_read_queue_wait(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_queue_wait as f64 / self.reads_completed as f64
        }
    }

    /// Mean queue wait of writes, in cycles.
    #[must_use]
    pub fn mean_write_queue_wait(&self) -> f64 {
        if self.writes_completed == 0 {
            0.0
        } else {
            self.write_queue_wait as f64 / self.writes_completed as f64
        }
    }

    /// Mean total queue occupancy (requests) per tick.
    #[must_use]
    pub fn mean_queue_occupancy(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.queue_occupancy_integral as f64 / self.ticks as f64
        }
    }

    /// Fraction of completed requests that were row-buffer conflicts
    /// (the paper's "row buffer conflict rate").
    #[must_use]
    pub fn conflict_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.conflicts;
        if total == 0 {
            0.0
        } else {
            self.conflicts as f64 / total as f64
        }
    }

    /// Fraction of PRE commands issued ahead of their transaction
    /// (Fig. 12(b), "PB operation proportion").
    #[must_use]
    pub fn early_precharge_fraction(&self) -> f64 {
        if self.precharges == 0 {
            0.0
        } else {
            self.early_precharges as f64 / self.precharges as f64
        }
    }

    /// Fraction of ACT commands issued ahead of their transaction.
    #[must_use]
    pub fn early_activate_fraction(&self) -> f64 {
        if self.activates == 0 {
            0.0
        } else {
            self.early_activates as f64 / self.activates as f64
        }
    }

    /// Counter-wise difference `self - earlier`, for measurement windows
    /// (run warm-up, snapshot, subtract at reporting time). `earlier` must
    /// be a prior snapshot of the same controller.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            ticks: self.ticks - earlier.ticks,
            queue_occupancy_integral: self.queue_occupancy_integral
                - earlier.queue_occupancy_integral,
            reads_completed: self.reads_completed - earlier.reads_completed,
            writes_completed: self.writes_completed - earlier.writes_completed,
            read_queue_wait: self.read_queue_wait - earlier.read_queue_wait,
            write_queue_wait: self.write_queue_wait - earlier.write_queue_wait,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            conflicts: self.conflicts - earlier.conflicts,
            precharges: self.precharges - earlier.precharges,
            activates: self.activates - earlier.activates,
            early_precharges: self.early_precharges - earlier.early_precharges,
            early_activates: self.early_activates - earlier.early_activates,
            deferred_writes: self.deferred_writes - earlier.deferred_writes,
            write_drains: self.write_drains - earlier.write_drains,
            withheld_issue_slots: self.withheld_issue_slots - earlier.withheld_issue_slots,
            per_channel_requests: self
                .per_channel_requests
                .iter()
                .zip(&earlier.per_channel_requests)
                .map(|(a, b)| a - b)
                .collect(),
            open_bank_integral: self.open_bank_integral - earlier.open_bank_integral,
            bank_tick_integral: self.bank_tick_integral - earlier.bank_tick_integral,
            stalled_bank_cycles: self.stalled_bank_cycles - earlier.stalled_bank_cycles,
            busy_pending_bank_cycles: self.busy_pending_bank_cycles
                - earlier.busy_pending_bank_cycles,
            responses_delayed: self.responses_delayed - earlier.responses_delayed,
            responses_dropped: self.responses_dropped - earlier.responses_dropped,
            queue_saturation_windows: self.queue_saturation_windows
                - earlier.queue_saturation_windows,
        }
    }

    /// Folds the counters of a *disjoint* controller into `self`, for
    /// combining per-shard scheduler statistics into one merged view. Every
    /// counter adds; `per_channel_requests` concatenates, since each shard
    /// owns physically distinct channels (callers merging shards do so in
    /// shard-id order, keeping the channel ordering deterministic).
    pub fn merge_from(&mut self, other: &Self) {
        self.ticks += other.ticks;
        self.queue_occupancy_integral += other.queue_occupancy_integral;
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.read_queue_wait += other.read_queue_wait;
        self.write_queue_wait += other.write_queue_wait;
        self.hits += other.hits;
        self.misses += other.misses;
        self.conflicts += other.conflicts;
        self.precharges += other.precharges;
        self.activates += other.activates;
        self.early_precharges += other.early_precharges;
        self.early_activates += other.early_activates;
        self.deferred_writes += other.deferred_writes;
        self.write_drains += other.write_drains;
        self.withheld_issue_slots += other.withheld_issue_slots;
        self.stalled_bank_cycles += other.stalled_bank_cycles;
        self.busy_pending_bank_cycles += other.busy_pending_bank_cycles;
        self.per_channel_requests
            .extend_from_slice(&other.per_channel_requests);
        self.open_bank_integral += other.open_bank_integral;
        self.bank_tick_integral += other.bank_tick_integral;
        self.responses_delayed += other.responses_delayed;
        self.responses_dropped += other.responses_dropped;
        self.queue_saturation_windows += other.queue_saturation_windows;
    }

    /// Overwrites the policy-attributed counters with a policy's local
    /// cumulative totals. Called at snapshot time so windowed deltas and
    /// shard merges see consistent values without double bookkeeping in
    /// the controller hot path.
    pub fn absorb_policy(&mut self, p: PolicyStats) {
        self.deferred_writes = p.deferred_writes;
        self.write_drains = p.write_drains;
        self.withheld_issue_slots = p.withheld_slots;
    }

    /// Channel imbalance: the max-over-mean ratio of per-channel completed
    /// requests (1.0 = perfectly balanced). The ORAM's uniform path
    /// randomization keeps this near 1 in the long run; short transactions
    /// are transiently imbalanced, which is what Che et al. exploit.
    #[must_use]
    pub fn channel_imbalance(&self) -> f64 {
        let total: u64 = self.per_channel_requests.iter().sum();
        if total == 0 || self.per_channel_requests.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.per_channel_requests.len() as f64;
        let max = self.per_channel_requests.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Mean fraction of banks holding an open row (drives the power
    /// model's active-background term).
    #[must_use]
    pub fn open_bank_fraction(&self) -> f64 {
        if self.bank_tick_integral == 0 {
            0.0
        } else {
            self.open_bank_integral as f64 / self.bank_tick_integral as f64
        }
    }

    /// Of the bank-cycles with pending work, the fraction spent idle —
    /// the paper's bank idle time caused by the scheduling barrier.
    #[must_use]
    pub fn pending_bank_idle_proportion(&self) -> f64 {
        let total = self.stalled_bank_cycles + self.busy_pending_bank_cycles;
        if total == 0 {
            0.0
        } else {
            self.stalled_bank_cycles as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TxnId;

    fn completed(is_write: bool, class: RowClass, wait: u64) -> Completed {
        Completed {
            id: 0,
            txn: TxnId(0),
            is_write,
            arrival: 0,
            first_cmd_at: wait,
            issue_at: wait + 1,
            data_done_at: wait + 10,
            class,
        }
    }

    #[test]
    fn completion_accounting() {
        let mut s = SchedulerStats::default();
        s.record_completion(&completed(false, RowClass::Hit, 10));
        s.record_completion(&completed(false, RowClass::Conflict, 30));
        s.record_completion(&completed(true, RowClass::Miss, 20));
        assert_eq!(s.reads_completed, 2);
        assert_eq!(s.writes_completed, 1);
        assert!((s.mean_read_queue_wait() - 20.0).abs() < 1e-12);
        assert!((s.mean_write_queue_wait() - 20.0).abs() < 1e-12);
        assert!((s.conflict_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = SchedulerStats::default();
        assert_eq!(s.mean_read_queue_wait(), 0.0);
        assert_eq!(s.mean_write_queue_wait(), 0.0);
        assert_eq!(s.mean_queue_occupancy(), 0.0);
        assert_eq!(s.conflict_rate(), 0.0);
        assert_eq!(s.early_precharge_fraction(), 0.0);
        assert_eq!(s.early_activate_fraction(), 0.0);
    }

    #[test]
    fn pending_idle_proportion() {
        let s = SchedulerStats {
            stalled_bank_cycles: 30,
            busy_pending_bank_cycles: 10,
            ..SchedulerStats::default()
        };
        assert!((s.pending_bank_idle_proportion() - 0.75).abs() < 1e-12);
        assert_eq!(
            SchedulerStats::default().pending_bank_idle_proportion(),
            0.0
        );
    }

    #[test]
    fn open_bank_fraction() {
        let s = SchedulerStats {
            open_bank_integral: 8,
            bank_tick_integral: 32,
            ..SchedulerStats::default()
        };
        assert!((s.open_bank_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(SchedulerStats::default().open_bank_fraction(), 0.0);
    }

    #[test]
    fn channel_imbalance_metric() {
        let s = SchedulerStats {
            per_channel_requests: vec![10, 10, 10, 10],
            ..SchedulerStats::default()
        };
        assert!((s.channel_imbalance() - 1.0).abs() < 1e-12);
        let s = SchedulerStats {
            per_channel_requests: vec![30, 10, 10, 10],
            ..SchedulerStats::default()
        };
        assert!((s.channel_imbalance() - 2.0).abs() < 1e-12);
        assert_eq!(SchedulerStats::default().channel_imbalance(), 1.0);
    }

    #[test]
    fn absorb_policy_overwrites_attributed_counters() {
        let mut s = SchedulerStats::default();
        s.absorb_policy(PolicyStats {
            withheld_slots: 7,
            deferred_writes: 3,
            write_drains: 2,
        });
        assert_eq!(s.withheld_issue_slots, 7);
        assert_eq!(s.deferred_writes, 3);
        assert_eq!(s.write_drains, 2);
        // Absorbing is idempotent on cumulative totals, so a re-snapshot
        // does not double-count.
        s.absorb_policy(PolicyStats {
            withheld_slots: 7,
            deferred_writes: 3,
            write_drains: 2,
        });
        assert_eq!(s.deferred_writes, 3);
        // Windowed deltas subtract the new counters like any other.
        let earlier = SchedulerStats::default();
        assert_eq!(s.delta(&earlier).write_drains, 2);
        let mut merged = SchedulerStats::default();
        merged.merge_from(&s);
        merged.merge_from(&s);
        assert_eq!(merged.withheld_issue_slots, 14);
    }

    #[test]
    fn early_fractions() {
        let s = SchedulerStats {
            precharges: 10,
            early_precharges: 6,
            activates: 8,
            early_activates: 4,
            ..SchedulerStats::default()
        };
        assert!((s.early_precharge_fraction() - 0.6).abs() < 1e-12);
        assert!((s.early_activate_fraction() - 0.5).abs() < 1e-12);
    }
}
