//! A fixed-capacity oblivious array.

use ring_oram::{AccessOutcome, BlockId, RingConfig, RingOram};

/// Error returned by oblivious-collection operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectionError {
    /// Index beyond the declared capacity.
    IndexOutOfBounds {
        /// Offending index.
        index: u64,
        /// Declared capacity.
        capacity: u64,
    },
    /// Value longer than one block payload.
    ValueTooLarge {
        /// Supplied length.
        len: usize,
        /// Maximum payload bytes per element.
        max: usize,
    },
    /// The structure is full.
    Full,
    /// The structure is empty.
    Empty,
}

impl std::fmt::Display for CollectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::IndexOutOfBounds { index, capacity } => {
                write!(f, "index {index} out of bounds (capacity {capacity})")
            }
            Self::ValueTooLarge { len, max } => {
                write!(
                    f,
                    "value of {len} bytes exceeds the {max}-byte element size"
                )
            }
            Self::Full => write!(f, "collection is full"),
            Self::Empty => write!(f, "collection is empty"),
        }
    }
}

impl std::error::Error for CollectionError {}

/// A fixed-capacity array of fixed-size elements whose accesses are
/// oblivious: every `get`/`set` is exactly one ORAM access, so the physical
/// access sequence is independent of which index is touched.
///
/// Elements are stored length-prefixed inside one ORAM block each, so the
/// usable element size is `block_bytes - 2`.
///
/// # Examples
///
/// ```
/// use oram_collections::ObliviousArray;
/// use ring_oram::RingConfig;
///
/// let mut arr = ObliviousArray::new(RingConfig::test_small(), 64, 42);
/// arr.set(7, b"hello").unwrap();
/// assert_eq!(arr.get(7).unwrap(), Some(b"hello".to_vec()));
/// assert_eq!(arr.get(8).unwrap(), None);
/// ```
#[derive(Debug)]
pub struct ObliviousArray {
    oram: RingOram,
    capacity: u64,
    block_bytes: usize,
}

impl ObliviousArray {
    /// Creates an array of `capacity` elements backed by a Ring ORAM with
    /// configuration `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid, `capacity` is zero, or the tree cannot
    /// hold `capacity` blocks at ~50 % utilization.
    #[must_use]
    pub fn new(cfg: RingConfig, capacity: u64, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        assert!(
            capacity * 2 <= cfg.real_capacity_blocks(),
            "capacity {} exceeds half the tree's real capacity {}",
            capacity,
            cfg.real_capacity_blocks()
        );
        let block_bytes = cfg.block_bytes as usize;
        assert!(block_bytes > 2, "blocks must hold a length prefix");
        Self {
            oram: RingOram::new(cfg, seed),
            capacity,
            block_bytes,
        }
    }

    /// Declared capacity in elements.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Maximum bytes per element.
    #[must_use]
    pub fn element_bytes(&self) -> usize {
        self.block_bytes - 2
    }

    /// The underlying ORAM (for statistics).
    #[must_use]
    pub fn oram(&self) -> &RingOram {
        &self.oram
    }

    fn check_index(&self, index: u64) -> Result<(), CollectionError> {
        if index >= self.capacity {
            Err(CollectionError::IndexOutOfBounds {
                index,
                capacity: self.capacity,
            })
        } else {
            Ok(())
        }
    }

    /// Reads element `index`; `None` if never written.
    ///
    /// # Errors
    ///
    /// [`CollectionError::IndexOutOfBounds`].
    pub fn get(&mut self, index: u64) -> Result<Option<Vec<u8>>, CollectionError> {
        self.check_index(index)?;
        let (_, data) = self.oram.read_block(BlockId(index));
        Ok(data.map(|d| decode(&d)))
    }

    /// Writes element `index`.
    ///
    /// # Errors
    ///
    /// [`CollectionError::IndexOutOfBounds`] or
    /// [`CollectionError::ValueTooLarge`].
    pub fn set(&mut self, index: u64, value: &[u8]) -> Result<AccessOutcome, CollectionError> {
        self.check_index(index)?;
        let encoded = encode(value, self.block_bytes).ok_or(CollectionError::ValueTooLarge {
            len: value.len(),
            max: self.element_bytes(),
        })?;
        Ok(self.oram.write_block(BlockId(index), &encoded))
    }
}

/// Encodes `value` into a fixed-size block: 2-byte little-endian length
/// prefix + payload + zero padding. Returns `None` when too large.
pub(crate) fn encode(value: &[u8], block_bytes: usize) -> Option<Vec<u8>> {
    if value.len() > block_bytes - 2 {
        return None;
    }
    let mut out = vec![0u8; block_bytes];
    let len = value.len() as u16;
    out[..2].copy_from_slice(&len.to_le_bytes());
    out[2..2 + value.len()].copy_from_slice(value);
    Some(out)
}

/// Decodes a block produced by [`encode`].
pub(crate) fn decode(block: &[u8]) -> Vec<u8> {
    let len = u16::from_le_bytes([block[0], block[1]]) as usize;
    block[2..2 + len.min(block.len() - 2)].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> ObliviousArray {
        ObliviousArray::new(RingConfig::test_small(), 128, 1)
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = arr();
        a.set(0, b"zero").unwrap();
        a.set(127, b"last").unwrap();
        assert_eq!(a.get(0).unwrap(), Some(b"zero".to_vec()));
        assert_eq!(a.get(127).unwrap(), Some(b"last".to_vec()));
        assert_eq!(a.get(64).unwrap(), None);
    }

    #[test]
    fn overwrite_takes_latest() {
        let mut a = arr();
        a.set(5, b"one").unwrap();
        a.set(5, b"two").unwrap();
        assert_eq!(a.get(5).unwrap(), Some(b"two".to_vec()));
    }

    #[test]
    fn bounds_checked() {
        let mut a = arr();
        assert_eq!(
            a.get(128),
            Err(CollectionError::IndexOutOfBounds {
                index: 128,
                capacity: 128
            })
        );
        // set() shares the bounds check (AccessOutcome is not Eq; compare
        // the error side only).
        assert!(a.set(200, b"x").is_err());
    }

    #[test]
    fn value_size_checked() {
        let mut a = arr();
        let too_big = vec![0u8; a.element_bytes() + 1];
        assert_eq!(
            a.set(0, &too_big).unwrap_err(),
            CollectionError::ValueTooLarge {
                len: too_big.len(),
                max: a.element_bytes()
            }
        );
        // Exactly the maximum fits.
        let max = vec![7u8; a.element_bytes()];
        a.set(0, &max).unwrap();
        assert_eq!(a.get(0).unwrap(), Some(max));
    }

    #[test]
    fn empty_values_roundtrip() {
        let mut a = arr();
        a.set(3, b"").unwrap();
        assert_eq!(a.get(3).unwrap(), Some(Vec::new()));
    }

    #[test]
    fn every_access_is_one_oram_access() {
        let mut a = arr();
        let before = a.oram().stats().read_paths;
        a.set(1, b"x").unwrap();
        let _ = a.get(2).unwrap();
        let _ = a.get(1).unwrap();
        assert_eq!(a.oram().stats().read_paths, before + 3);
    }

    #[test]
    fn survives_churn() {
        let mut a = arr();
        for round in 0..10u64 {
            for i in 0..50u64 {
                a.set(i, format!("v{}-{}", i, round).as_bytes()).unwrap();
            }
            for i in 0..50u64 {
                assert_eq!(
                    a.get(i).unwrap(),
                    Some(format!("v{}-{}", i, round).into_bytes())
                );
            }
        }
        a.oram().check_invariants();
    }

    #[test]
    fn encode_decode_roundtrip() {
        for len in [0usize, 1, 10, 62] {
            let v: Vec<u8> = (0..len as u8).collect();
            let e = encode(&v, 64).unwrap();
            assert_eq!(e.len(), 64);
            assert_eq!(decode(&e), v);
        }
        assert!(encode(&[0u8; 63], 64).is_none());
    }
}
