//! A fixed-capacity oblivious min-heap (priority queue).

use ring_oram::{BlockId, RingConfig, RingOram};

use crate::array::{decode, encode, CollectionError};

/// A bounded binary min-heap whose operations perform a **fixed number of
/// ORAM accesses determined only by the capacity**: both `push` and
/// `pop_min` walk the full `ceil(log2(capacity + 1))` levels with a constant
/// number of accesses per level, padding with dummy accesses when the live
/// path is shorter.
///
/// Which *indices* those accesses touch depends on the data — but every
/// index is an ORAM block, and the ORAM makes accesses to different blocks
/// indistinguishable; only the access *count* could leak, and it is fixed.
/// This is the standard way data structures inherit obliviousness from an
/// ORAM substrate.
///
/// Keys are `u64` priorities (smallest first) with byte-payload values.
///
/// # Examples
///
/// ```
/// use oram_collections::ObliviousHeap;
/// use ring_oram::RingConfig;
///
/// let mut h = ObliviousHeap::new(RingConfig::test_small(), 31, 4);
/// h.push(30, b"low").unwrap();
/// h.push(10, b"high").unwrap();
/// h.push(20, b"mid").unwrap();
/// assert_eq!(h.pop_min().unwrap(), Some((10, b"high".to_vec())));
/// assert_eq!(h.pop_min().unwrap(), Some((20, b"mid".to_vec())));
/// assert_eq!(h.pop_min().unwrap(), Some((30, b"low".to_vec())));
/// assert_eq!(h.pop_min().unwrap(), None);
/// ```
#[derive(Debug)]
pub struct ObliviousHeap {
    oram: RingOram,
    capacity: u64,
    levels: u32,
    block_bytes: usize,
}

const SIZE_SLOT: BlockId = BlockId(0);

/// Entry wire format inside a block payload: `[key: 8 bytes][value...]`.
fn pack(key: u64, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + value.len());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(value);
    out
}

fn unpack(entry: &[u8]) -> (u64, Vec<u8>) {
    let mut k = [0u8; 8];
    k.copy_from_slice(&entry[..8]);
    (u64::from_le_bytes(k), entry[8..].to_vec())
}

impl ObliviousHeap {
    /// Creates a heap of at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid, `capacity` is zero, or the tree cannot
    /// hold `capacity + 1` blocks at ~50 % utilization.
    #[must_use]
    pub fn new(cfg: RingConfig, capacity: u64, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        assert!(
            (capacity + 2) * 2 <= cfg.real_capacity_blocks(),
            "heap exceeds half the tree's real capacity"
        );
        let block_bytes = cfg.block_bytes as usize;
        assert!(block_bytes >= 12, "blocks must hold a key");
        let levels = 64 - (capacity + 1).leading_zeros();
        Self {
            oram: RingOram::new(cfg, seed),
            capacity,
            levels,
            block_bytes,
        }
    }

    /// Declared capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The underlying ORAM (for statistics).
    #[must_use]
    pub fn oram(&self) -> &RingOram {
        &self.oram
    }

    fn read_size(&mut self) -> u64 {
        let (_, data) = self.oram.read_block(SIZE_SLOT);
        data.map_or(0, |b| {
            let raw = decode(&b);
            let mut s = [0u8; 8];
            s.copy_from_slice(&raw[..8]);
            u64::from_le_bytes(s)
        })
    }

    fn write_size(&mut self, size: u64) {
        let encoded = encode(&size.to_le_bytes(), self.block_bytes).expect("8 bytes fit");
        let _ = self.oram.write_block(SIZE_SLOT, &encoded);
    }

    /// Current entry count (costs one ORAM access).
    pub fn len(&mut self) -> u64 {
        self.read_size()
    }

    /// Whether the heap is empty (costs one ORAM access).
    pub fn is_empty(&mut self) -> bool {
        self.read_size() == 0
    }

    fn read_entry(&mut self, idx: u64) -> Option<(u64, Vec<u8>)> {
        let (_, data) = self.oram.read_block(BlockId(idx));
        data.map(|b| unpack(&decode(&b)))
    }

    fn write_entry(&mut self, idx: u64, key: u64, value: &[u8]) {
        let entry = pack(key, value);
        let encoded = encode(&entry, self.block_bytes).expect("checked at push");
        let _ = self.oram.write_block(BlockId(idx), &encoded);
    }

    /// Scratch block used by dummy accesses (outside the heap's range, so
    /// dummies can never corrupt live entries).
    fn scratch_slot(&self) -> BlockId {
        BlockId(self.capacity + 1)
    }

    /// One dummy ORAM read (padding; indistinguishable on the bus).
    fn dummy_read(&mut self) {
        let slot = self.scratch_slot();
        let _ = self.oram.read_block(slot);
    }

    /// One dummy ORAM write (padding; indistinguishable on the bus).
    fn dummy_write(&mut self) {
        let slot = self.scratch_slot();
        let encoded = encode(&pack(u64::MAX, &[]), self.block_bytes).expect("fits");
        let _ = self.oram.write_block(slot, &encoded);
    }

    /// Inserts `(key, value)`. Fixed cost: exactly `2 + 2 * levels` ORAM
    /// accesses (1 read + 1 write per level, padded with dummies).
    ///
    /// # Errors
    ///
    /// [`CollectionError::Full`] at capacity,
    /// [`CollectionError::ValueTooLarge`] for oversized values.
    pub fn push(&mut self, key: u64, value: &[u8]) -> Result<(), CollectionError> {
        if 8 + value.len() > self.block_bytes - 2 {
            return Err(CollectionError::ValueTooLarge {
                len: value.len(),
                max: self.block_bytes - 10,
            });
        }
        let size = self.read_size();
        if size >= self.capacity {
            self.write_size(size);
            return Err(CollectionError::Full);
        }
        // Sift up from the new leaf, always touching exactly `levels`
        // tree levels (one read + one write each), padding beyond the live
        // path with scratch-slot dummies.
        let mut idx = size + 1; // heap indices are 1-based over blocks 1..
        let carry_key = key;
        let carry_val = value.to_vec();
        let mut live = true;
        for _ in 0..self.levels {
            if live && idx > 1 {
                let parent = idx / 2;
                let (pk, pv) = self
                    .read_entry(parent)
                    .expect("parents of live nodes exist");
                if pk > carry_key {
                    // Move the parent down into this slot, carry upward.
                    self.write_entry(idx, pk, &pv);
                    idx = parent;
                } else {
                    // Settle here; the remaining levels become dummies.
                    self.write_entry(idx, carry_key, &carry_val);
                    live = false;
                }
            } else if live {
                // Reached the root while still carrying.
                self.dummy_read();
                self.write_entry(idx, carry_key, &carry_val);
                live = false;
            } else {
                self.dummy_read();
                self.dummy_write();
            }
        }
        if live {
            // Carried all the way: idx is the root by construction.
            self.write_entry(idx, carry_key, &carry_val);
        } else {
            self.dummy_write();
        }
        self.write_size(size + 1);
        Ok(())
    }

    /// Removes and returns the minimum entry. Fixed cost: exactly
    /// `5 + 4 * levels` ORAM accesses — 2 reads + 2 writes per level plus
    /// header/root handling — with empty pops performing the same dummy
    /// pattern.
    pub fn pop_min(&mut self) -> Result<Option<(u64, Vec<u8>)>, CollectionError> {
        let size = self.read_size();
        if size == 0 {
            // Mirror the successful pattern with dummies (2 header-adjacent
            // reads, 4 per level, and the tail settle write).
            self.dummy_read();
            self.dummy_read();
            for _ in 0..self.levels {
                self.dummy_read();
                self.dummy_read();
                self.dummy_write();
                self.dummy_write();
            }
            self.dummy_write();
            self.write_size(0);
            return Ok(None);
        }
        let min = self.read_entry(1).expect("nonempty heap has a root");
        let (mut hole_key, mut hole_val) = self.read_entry(size).expect("last live entry exists");
        if size == 1 {
            hole_key = u64::MAX;
            hole_val.clear();
        }
        // Sift down from the root over exactly `levels` iterations with
        // exactly 2 reads + 2 writes per level.
        let mut idx = 1u64;
        let mut live = size > 1;
        for _ in 0..self.levels {
            if !live {
                self.dummy_read();
                self.dummy_read();
                self.dummy_write();
                self.dummy_write();
                continue;
            }
            let left = idx * 2;
            let right = idx * 2 + 1;
            let lk = if left < size {
                self.read_entry(left)
            } else {
                self.dummy_read();
                None
            };
            let rk = if right < size {
                self.read_entry(right)
            } else {
                self.dummy_read();
                None
            };
            let chosen = match (lk, rk) {
                (Some((lk, lv)), Some((rk, rv))) => {
                    if lk <= rk {
                        Some((left, lk, lv))
                    } else {
                        Some((right, rk, rv))
                    }
                }
                (Some((lk, lv)), None) => Some((left, lk, lv)),
                _ => None,
            };
            match chosen {
                Some((child, ck, cv)) if ck < hole_key => {
                    // Promote the smaller child; the hole moves down.
                    self.write_entry(idx, ck, &cv);
                    self.dummy_write();
                    idx = child;
                }
                _ => {
                    // Settle the hole value here.
                    self.write_entry(idx, hole_key, &hole_val);
                    self.dummy_write();
                    live = false;
                }
            }
        }
        if live {
            self.write_entry(idx, hole_key, &hole_val);
        } else {
            self.dummy_write();
        }
        self.write_size(size - 1);
        Ok(Some(min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> ObliviousHeap {
        ObliviousHeap::new(RingConfig::test_small(), 63, 6)
    }

    #[test]
    fn min_order() {
        let mut h = heap();
        for k in [50u64, 10, 40, 20, 30] {
            h.push(k, &k.to_le_bytes()).unwrap();
        }
        for expect in [10u64, 20, 30, 40, 50] {
            let (k, v) = h.pop_min().unwrap().expect("nonempty");
            assert_eq!(k, expect);
            assert_eq!(v, expect.to_le_bytes().to_vec());
        }
        assert_eq!(h.pop_min().unwrap(), None);
    }

    #[test]
    fn duplicate_keys_all_come_out() {
        let mut h = heap();
        for _ in 0..5 {
            h.push(7, b"dup").unwrap();
        }
        for _ in 0..5 {
            assert_eq!(h.pop_min().unwrap(), Some((7, b"dup".to_vec())));
        }
        assert!(h.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut h = ObliviousHeap::new(RingConfig::test_small(), 3, 6);
        for k in 0..3u64 {
            h.push(k, b"").unwrap();
        }
        assert_eq!(h.push(9, b""), Err(CollectionError::Full));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn model_based_churn() {
        let mut h = heap();
        let mut model = std::collections::BinaryHeap::new(); // max-heap
        let mut x = 12345u64;
        for i in 0..120u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if i % 3 == 2 {
                let got = h.pop_min().unwrap().map(|(k, _)| k);
                let expect = model.pop().map(|std::cmp::Reverse(k)| k);
                assert_eq!(got, expect, "step {i}");
            } else if model.len() < 63 {
                let key = x % 1000;
                h.push(key, b"v").unwrap();
                model.push(std::cmp::Reverse(key));
            }
        }
        while let Some(std::cmp::Reverse(expect)) = model.pop() {
            assert_eq!(h.pop_min().unwrap().map(|(k, _)| k), Some(expect));
        }
        h.oram().check_invariants();
    }

    #[test]
    fn operation_cost_is_fixed() {
        let mut h = heap();
        // Cost of a push into an empty heap...
        let before = h.oram().stats().read_paths;
        h.push(5, b"x").unwrap();
        let empty_push = h.oram().stats().read_paths - before;
        // ...equals the cost of a push into a loaded heap.
        for k in 0..20u64 {
            h.push(k * 3, b"y").unwrap();
        }
        let before = h.oram().stats().read_paths;
        h.push(1, b"z").unwrap();
        let loaded_push = h.oram().stats().read_paths - before;
        assert_eq!(empty_push, loaded_push, "push cost varies with content");

        // Pop cost: loaded vs empty.
        let before = h.oram().stats().read_paths;
        let _ = h.pop_min().unwrap();
        let loaded_pop = h.oram().stats().read_paths - before;
        let mut fresh = heap();
        let before = fresh.oram().stats().read_paths;
        let _ = fresh.pop_min().unwrap();
        let empty_pop = fresh.oram().stats().read_paths - before;
        assert_eq!(loaded_pop, empty_pop, "pop cost leaks emptiness");
    }

    #[test]
    fn oversized_value_rejected() {
        let mut h = heap();
        let big = vec![0u8; 64];
        assert!(matches!(
            h.push(1, &big),
            Err(CollectionError::ValueTooLarge { .. })
        ));
    }
}
