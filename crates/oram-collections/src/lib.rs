//! # oram-collections — oblivious data structures over Ring ORAM
//!
//! The String ORAM paper motivates ORAM with programs whose *data-structure
//! traversals* leak secrets (searchable encryption, DNN extraction, RSA key
//! recovery). This crate closes the loop for downstream users: classic
//! collections whose **physical access pattern is independent of the keys,
//! indices and operations performed**, built on the `ring-oram` engine's
//! payload-carrying block API:
//!
//! * [`ObliviousArray`] — one ORAM access per `get`/`set`;
//! * [`ObliviousMap`] — fixed-probe open addressing: every operation walks
//!   exactly [`ObliviousMap::PROBES`] slots, so hits, misses, inserts and
//!   updates are indistinguishable;
//! * [`ObliviousStack`] / [`ObliviousQueue`] — push/pop/enqueue/dequeue with
//!   on-ORAM headers and dummy accesses on the empty/full paths, hiding
//!   operation type and occupancy;
//! * [`ObliviousHeap`] — a priority queue whose push/pop cost a fixed
//!   number of accesses determined only by the capacity.
//!
//! Combined with `string-oram`'s timing stack these let you price an
//! oblivious workload end to end: protocol accesses per operation here,
//! DRAM cycles per access there.
//!
//! # Example
//!
//! ```
//! use oram_collections::ObliviousMap;
//! use ring_oram::RingConfig;
//!
//! let mut index = ObliviousMap::new(RingConfig::test_small(), 128, 1);
//! index.put(b"patient-993", b"record-17")?;
//! assert_eq!(index.get(b"patient-993")?, Some(b"record-17".to_vec()));
//! // A miss costs exactly the same accesses as the hit above.
//! assert_eq!(index.get(b"patient-000")?, None);
//! # Ok::<(), oram_collections::CollectionError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod array;
pub mod heap;
pub mod map;
pub mod queue;
pub mod stack;

pub use array::{CollectionError, ObliviousArray};
pub use heap::ObliviousHeap;
pub use map::ObliviousMap;
pub use queue::ObliviousQueue;
pub use stack::ObliviousStack;
