//! A fixed-capacity oblivious hash map.

use ring_oram::{BlockId, RingConfig, RingOram};

use crate::array::{decode, encode, CollectionError};

/// A fixed-capacity open-addressing hash map whose physical access pattern
/// is independent of the keys: every operation performs **exactly**
/// [`ObliviousMap::PROBES`] ORAM accesses (the full probe window is always
/// walked, hit or miss, get or put), so an observer cannot distinguish
/// hits, misses, inserts or updates, nor correlate operations on equal
/// keys.
///
/// This is the classic fixed-probe construction (as used by oblivious
/// storage systems such as ZeroTrace-style ODS). Capacity is bounded: an
/// insert fails with [`CollectionError::Full`] when all `PROBES` slots of
/// the key's window are occupied by other keys — size the table at most
/// ~50 % full to make that negligible.
///
/// # Examples
///
/// ```
/// use oram_collections::ObliviousMap;
/// use ring_oram::RingConfig;
///
/// let mut map = ObliviousMap::new(RingConfig::test_small(), 128, 7);
/// map.put(b"alice", b"41").unwrap();
/// map.put(b"alice", b"42").unwrap();
/// assert_eq!(map.get(b"alice").unwrap(), Some(b"42".to_vec()));
/// assert_eq!(map.get(b"bob").unwrap(), None);
/// ```
#[derive(Debug)]
pub struct ObliviousMap {
    oram: RingOram,
    buckets: u64,
    block_bytes: usize,
    len: u64,
}

/// One stored entry: `[key_len: u8][key][val_len: u8][val]` inside the
/// length-prefixed block payload.
fn pack_entry(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + key.len() + value.len());
    out.push(key.len() as u8);
    out.extend_from_slice(key);
    out.push(value.len() as u8);
    out.extend_from_slice(value);
    out
}

fn unpack_entry(entry: &[u8]) -> Option<(&[u8], &[u8])> {
    let klen = *entry.first()? as usize;
    let key = entry.get(1..1 + klen)?;
    let vlen = *entry.get(1 + klen)? as usize;
    let value = entry.get(2 + klen..2 + klen + vlen)?;
    Some((key, value))
}

/// FNV-1a, stable across platforms (determinism matters for tests).
fn hash(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl ObliviousMap {
    /// Probe-window size: every operation touches exactly this many slots.
    pub const PROBES: u64 = 4;

    /// Creates a map over `buckets` slots (each one ORAM block).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid, `buckets < PROBES`, or the tree cannot
    /// hold the table at ~50 % utilization.
    #[must_use]
    pub fn new(cfg: RingConfig, buckets: u64, seed: u64) -> Self {
        assert!(buckets >= Self::PROBES, "need at least PROBES buckets");
        assert!(
            buckets * 2 <= cfg.real_capacity_blocks(),
            "table exceeds half the tree's real capacity"
        );
        let block_bytes = cfg.block_bytes as usize;
        Self {
            oram: RingOram::new(cfg, seed),
            buckets,
            block_bytes,
            len: 0,
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying ORAM (for statistics).
    #[must_use]
    pub fn oram(&self) -> &RingOram {
        &self.oram
    }

    /// Maximum combined key+value bytes per entry.
    #[must_use]
    pub fn entry_bytes(&self) -> usize {
        self.block_bytes - 4 // block length prefix + two entry length bytes
    }

    fn slot(&self, key: &[u8], probe: u64) -> BlockId {
        BlockId((hash(key).wrapping_add(probe)) % self.buckets)
    }

    fn check_sizes(&self, key: &[u8], value: &[u8]) -> Result<(), CollectionError> {
        let len = key.len() + value.len();
        if key.len() > u8::MAX as usize
            || value.len() > u8::MAX as usize
            || len > self.entry_bytes()
        {
            Err(CollectionError::ValueTooLarge {
                len,
                max: self.entry_bytes(),
            })
        } else {
            Ok(())
        }
    }

    /// Looks `key` up, always walking the full probe window (`PROBES` ORAM
    /// accesses) so hits and misses are indistinguishable.
    ///
    /// # Errors
    ///
    /// [`CollectionError::ValueTooLarge`] for oversized keys.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, CollectionError> {
        self.check_sizes(key, &[])?;
        let mut found = None;
        for probe in 0..Self::PROBES {
            let slot = self.slot(key, probe);
            let (_, data) = self.oram.read_block(slot);
            if found.is_none() {
                if let Some(block) = data {
                    let entry = decode(&block);
                    if let Some((k, v)) = unpack_entry(&entry) {
                        if k == key {
                            found = Some(v.to_vec());
                        }
                    }
                }
            }
        }
        Ok(found)
    }

    /// Inserts or updates `key`, always walking the full probe window and
    /// rewriting exactly one slot (every probe is a read-modify-write ORAM
    /// access, so position and success are hidden).
    ///
    /// # Errors
    ///
    /// [`CollectionError::ValueTooLarge`] or [`CollectionError::Full`] when
    /// the key's whole probe window is occupied by other keys.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), CollectionError> {
        self.check_sizes(key, value)?;
        let mut target: Option<(BlockId, bool)> = None; // (slot, was_update)
                                                        // Pass 1: read the full window obliviously, remembering the first
                                                        // usable slot (matching key wins over first empty).
        let mut first_empty = None;
        for probe in 0..Self::PROBES {
            let slot = self.slot(key, probe);
            let (_, data) = self.oram.read_block(slot);
            match data {
                Some(block) => {
                    let entry = decode(&block);
                    match unpack_entry(&entry) {
                        Some((k, _)) if k == key && target.is_none() => {
                            target = Some((slot, true));
                        }
                        Some(_) => {}
                        None if first_empty.is_none() => first_empty = Some(slot),
                        None => {}
                    }
                }
                None if first_empty.is_none() => first_empty = Some(slot),
                None => {}
            }
        }
        let (slot, update) = match target.or(first_empty.map(|s| (s, false))) {
            Some(t) => t,
            None => return Err(CollectionError::Full),
        };
        // Pass 2: one write (the slot choice is secret; on the bus this is
        // just another ORAM access).
        let entry = pack_entry(key, value);
        let encoded = encode(&entry, self.block_bytes).expect("checked sizes");
        let _ = self.oram.write_block(slot, &encoded);
        if !update {
            self.len += 1;
        }
        Ok(())
    }

    /// Removes `key`, walking the full probe window; returns the old value.
    ///
    /// # Errors
    ///
    /// [`CollectionError::ValueTooLarge`] for oversized keys.
    pub fn remove(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, CollectionError> {
        self.check_sizes(key, &[])?;
        let mut found: Option<(BlockId, Vec<u8>)> = None;
        for probe in 0..Self::PROBES {
            let slot = self.slot(key, probe);
            let (_, data) = self.oram.read_block(slot);
            if found.is_none() {
                if let Some(block) = data {
                    let entry = decode(&block);
                    if let Some((k, v)) = unpack_entry(&entry) {
                        if k == key {
                            found = Some((slot, v.to_vec()));
                        }
                    }
                }
            }
        }
        match found {
            Some((slot, old)) => {
                // Tombstone: an empty (zero-length) payload marks a free
                // slot; written through the same oblivious path.
                let encoded = encode(&[], self.block_bytes).expect("fits");
                let _ = self.oram.write_block(slot, &encoded);
                self.len -= 1;
                Ok(Some(old))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ObliviousMap {
        ObliviousMap::new(RingConfig::test_small(), 128, 3)
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut m = map();
        assert!(m.is_empty());
        m.put(b"k1", b"v1").unwrap();
        m.put(b"k2", b"v2").unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(m.get(b"k2").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(m.remove(b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(m.get(b"k1").unwrap(), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(b"k1").unwrap(), None);
    }

    #[test]
    fn update_in_place() {
        let mut m = map();
        m.put(b"k", b"old").unwrap();
        m.put(b"k", b"new").unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"k").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn every_get_costs_exactly_probes_accesses() {
        let mut m = map();
        m.put(b"present", b"1").unwrap();
        let before = m.oram().stats().read_paths;
        let _ = m.get(b"present").unwrap(); // hit
        let _ = m.get(b"absent!").unwrap(); // miss
        let after = m.oram().stats().read_paths;
        assert_eq!(after - before, 2 * ObliviousMap::PROBES);
    }

    #[test]
    fn tombstone_slots_are_reusable() {
        let mut m = map();
        m.put(b"a", b"1").unwrap();
        m.remove(b"a").unwrap();
        m.put(b"a", b"2").unwrap();
        assert_eq!(m.get(b"a").unwrap(), Some(b"2".to_vec()));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn many_keys_survive() {
        let mut m = ObliviousMap::new(RingConfig::test_small(), 256, 9);
        let n = 60u32; // ~23 % load keeps probe-window overflow negligible
        for i in 0..n {
            m.put(format!("key{i}").as_bytes(), format!("val{i}").as_bytes())
                .unwrap();
        }
        for i in 0..n {
            assert_eq!(
                m.get(format!("key{i}").as_bytes()).unwrap(),
                Some(format!("val{i}").into_bytes()),
                "key{i}"
            );
        }
        m.oram().check_invariants();
    }

    #[test]
    fn full_window_reports_full() {
        // Force collisions with a tiny table: 4 buckets = one shared window.
        let mut m = ObliviousMap::new(RingConfig::test_small(), 4, 5);
        let mut inserted = 0;
        let mut full = false;
        for i in 0..10u32 {
            match m.put(format!("k{i}").as_bytes(), b"v") {
                Ok(()) => inserted += 1,
                Err(CollectionError::Full) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(full, "a 4-slot table must fill");
        assert!(inserted <= 4);
        assert_eq!(m.len(), inserted);
    }

    #[test]
    fn oversized_entries_rejected() {
        let mut m = map();
        let big = vec![b'x'; 100];
        assert!(matches!(
            m.put(&big, b"v"),
            Err(CollectionError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn entry_packing_roundtrip() {
        let e = pack_entry(b"key", b"value");
        let (k, v) = unpack_entry(&e).unwrap();
        assert_eq!(k, b"key");
        assert_eq!(v, b"value");
        // Tombstone (empty payload) unpacks to an empty-key entry or None.
        assert!(unpack_entry(&[]).is_none());
    }
}
