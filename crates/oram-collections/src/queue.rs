//! A fixed-capacity oblivious FIFO queue.

use ring_oram::{BlockId, RingConfig, RingOram};

use crate::array::{decode, encode, CollectionError};

/// A bounded FIFO ring buffer whose enqueue and dequeue each cost a fixed
/// number of ORAM accesses (one header access + one element access),
/// independent of occupancy and of whether the operation succeeds.
///
/// Layout on the ORAM: block 0 holds the `(head, len)` header; element
/// slot `i` lives at block `i + 1` with `i` in `0..capacity`.
///
/// # Examples
///
/// ```
/// use oram_collections::ObliviousQueue;
/// use ring_oram::RingConfig;
///
/// let mut q = ObliviousQueue::new(RingConfig::test_small(), 16, 3);
/// q.enqueue(b"first").unwrap();
/// q.enqueue(b"second").unwrap();
/// assert_eq!(q.dequeue().unwrap(), Some(b"first".to_vec()));
/// assert_eq!(q.dequeue().unwrap(), Some(b"second".to_vec()));
/// assert_eq!(q.dequeue().unwrap(), None);
/// ```
#[derive(Debug)]
pub struct ObliviousQueue {
    oram: RingOram,
    capacity: u64,
    block_bytes: usize,
}

const HEADER_SLOT: BlockId = BlockId(0);

impl ObliviousQueue {
    /// Creates a queue of at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid, `capacity` is zero, or the tree cannot
    /// hold `capacity + 1` blocks at ~50 % utilization.
    #[must_use]
    pub fn new(cfg: RingConfig, capacity: u64, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        assert!(
            (capacity + 1) * 2 <= cfg.real_capacity_blocks(),
            "queue exceeds half the tree's real capacity"
        );
        let block_bytes = cfg.block_bytes as usize;
        assert!(block_bytes >= 18, "blocks must hold the header");
        Self {
            oram: RingOram::new(cfg, seed),
            capacity,
            block_bytes,
        }
    }

    /// Declared capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The underlying ORAM (for statistics).
    #[must_use]
    pub fn oram(&self) -> &RingOram {
        &self.oram
    }

    fn read_header(&mut self) -> (u64, u64) {
        let (_, data) = self.oram.read_block(HEADER_SLOT);
        match data {
            Some(block) => {
                let raw = decode(&block);
                let mut head = [0u8; 8];
                let mut len = [0u8; 8];
                head.copy_from_slice(&raw[..8]);
                len.copy_from_slice(&raw[8..16]);
                (u64::from_le_bytes(head), u64::from_le_bytes(len))
            }
            None => (0, 0),
        }
    }

    fn write_header(&mut self, head: u64, len: u64) {
        let mut raw = [0u8; 16];
        raw[..8].copy_from_slice(&head.to_le_bytes());
        raw[8..].copy_from_slice(&len.to_le_bytes());
        let encoded = encode(&raw, self.block_bytes).expect("16 bytes fit");
        let _ = self.oram.write_block(HEADER_SLOT, &encoded);
    }

    /// Current occupancy (costs one ORAM access).
    pub fn len(&mut self) -> u64 {
        self.read_header().1
    }

    /// Whether the queue is empty (costs one ORAM access).
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Appends `value` at the tail.
    ///
    /// # Errors
    ///
    /// [`CollectionError::Full`] at capacity,
    /// [`CollectionError::ValueTooLarge`] for oversized values.
    pub fn enqueue(&mut self, value: &[u8]) -> Result<(), CollectionError> {
        let encoded = encode(value, self.block_bytes).ok_or(CollectionError::ValueTooLarge {
            len: value.len(),
            max: self.block_bytes - 2,
        })?;
        let (head, len) = self.read_header();
        if len >= self.capacity {
            // Dummy writes mirror the successful path on the bus.
            self.write_header(head, len);
            return Err(CollectionError::Full);
        }
        let tail = (head + len) % self.capacity;
        let _ = self.oram.write_block(BlockId(tail + 1), &encoded);
        self.write_header(head, len + 1);
        Ok(())
    }

    /// Removes and returns the head element; `None` when empty (with the
    /// same access count as a successful dequeue).
    pub fn dequeue(&mut self) -> Result<Option<Vec<u8>>, CollectionError> {
        let (head, len) = self.read_header();
        if len == 0 {
            let _ = self.oram.read_block(BlockId(1));
            self.write_header(head, 0);
            return Ok(None);
        }
        let (_, data) = self.oram.read_block(BlockId(head + 1));
        self.write_header((head + 1) % self.capacity, len - 1);
        Ok(data.map(|d| decode(&d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> ObliviousQueue {
        ObliviousQueue::new(RingConfig::test_small(), 16, 8)
    }

    #[test]
    fn fifo_order() {
        let mut q = queue();
        for i in 0..10u8 {
            q.enqueue(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(q.dequeue().unwrap(), Some(vec![i]));
        }
        assert_eq!(q.dequeue().unwrap(), None);
    }

    #[test]
    fn wraps_around_the_ring() {
        let mut q = ObliviousQueue::new(RingConfig::test_small(), 4, 8);
        // Fill, drain half, refill past the physical end.
        for i in 0..4u8 {
            q.enqueue(&[i]).unwrap();
        }
        assert_eq!(q.dequeue().unwrap(), Some(vec![0]));
        assert_eq!(q.dequeue().unwrap(), Some(vec![1]));
        q.enqueue(&[4]).unwrap();
        q.enqueue(&[5]).unwrap();
        for expect in 2..=5u8 {
            assert_eq!(q.dequeue().unwrap(), Some(vec![expect]));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects() {
        let mut q = ObliviousQueue::new(RingConfig::test_small(), 2, 8);
        q.enqueue(b"a").unwrap();
        q.enqueue(b"b").unwrap();
        assert_eq!(q.enqueue(b"c"), Err(CollectionError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue().unwrap(), Some(b"a".to_vec()));
    }

    #[test]
    fn dequeue_cost_is_occupancy_independent() {
        let mut q = queue();
        q.enqueue(b"x").unwrap();
        let before = q.oram().stats().read_paths;
        let _ = q.dequeue().unwrap();
        let ok_cost = q.oram().stats().read_paths - before;
        let before = q.oram().stats().read_paths;
        let _ = q.dequeue().unwrap(); // empty
        let empty_cost = q.oram().stats().read_paths - before;
        assert_eq!(ok_cost, empty_cost);
    }

    #[test]
    fn model_based_churn() {
        let mut q = queue();
        let mut model = std::collections::VecDeque::new();
        for i in 0..200u32 {
            if i % 5 == 4 || (i % 3 == 0 && !model.is_empty()) {
                assert_eq!(q.dequeue().unwrap(), model.pop_front(), "step {i}");
            } else if model.len() < 16 {
                let v = i.to_le_bytes().to_vec();
                q.enqueue(&v).unwrap();
                model.push_back(v);
            }
        }
        assert_eq!(q.len(), model.len() as u64);
        q.oram().check_invariants();
    }
}
