//! A fixed-capacity oblivious stack.

use ring_oram::{BlockId, RingConfig, RingOram};

use crate::array::{decode, encode, CollectionError};

/// A bounded stack whose push and pop are each **exactly two ORAM
/// accesses** (one for the element slot, one for the on-ORAM depth
/// counter), so the access sequence reveals neither the operation type nor
/// the stack depth.
///
/// The depth counter lives in a reserved ORAM block rather than client
/// state to illustrate fully-externalized oblivious structures (a client
/// holding only the ORAM key can resume the stack).
///
/// # Examples
///
/// ```
/// use oram_collections::ObliviousStack;
/// use ring_oram::RingConfig;
///
/// let mut s = ObliviousStack::new(RingConfig::test_small(), 32, 9);
/// s.push(b"a").unwrap();
/// s.push(b"b").unwrap();
/// assert_eq!(s.pop().unwrap(), Some(b"b".to_vec()));
/// assert_eq!(s.pop().unwrap(), Some(b"a".to_vec()));
/// assert_eq!(s.pop().unwrap(), None);
/// ```
#[derive(Debug)]
pub struct ObliviousStack {
    oram: RingOram,
    capacity: u64,
    block_bytes: usize,
}

/// Block id of the depth counter (element `i` lives at block `i + 1`).
const DEPTH_SLOT: BlockId = BlockId(0);

impl ObliviousStack {
    /// Creates a stack of at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid, `capacity` is zero, or the tree cannot
    /// hold `capacity + 1` blocks at ~50 % utilization.
    #[must_use]
    pub fn new(cfg: RingConfig, capacity: u64, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        assert!(
            (capacity + 1) * 2 <= cfg.real_capacity_blocks(),
            "stack exceeds half the tree's real capacity"
        );
        let block_bytes = cfg.block_bytes as usize;
        assert!(block_bytes >= 12, "blocks must hold the depth counter");
        Self {
            oram: RingOram::new(cfg, seed),
            capacity,
            block_bytes,
        }
    }

    /// Declared capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The underlying ORAM (for statistics).
    #[must_use]
    pub fn oram(&self) -> &RingOram {
        &self.oram
    }

    fn read_depth(&mut self) -> u64 {
        let (_, data) = self.oram.read_block(DEPTH_SLOT);
        match data {
            Some(block) => {
                let raw = decode(&block);
                let mut b = [0u8; 8];
                b.copy_from_slice(&raw[..8]);
                u64::from_le_bytes(b)
            }
            None => 0,
        }
    }

    fn write_depth(&mut self, depth: u64) {
        let encoded = encode(&depth.to_le_bytes(), self.block_bytes).expect("8 bytes always fit");
        let _ = self.oram.write_block(DEPTH_SLOT, &encoded);
    }

    /// Current depth (costs one ORAM access).
    pub fn len(&mut self) -> u64 {
        self.read_depth()
    }

    /// Whether the stack is empty (costs one ORAM access).
    pub fn is_empty(&mut self) -> bool {
        self.read_depth() == 0
    }

    /// Pushes `value`.
    ///
    /// # Errors
    ///
    /// [`CollectionError::Full`] at capacity,
    /// [`CollectionError::ValueTooLarge`] for oversized values.
    pub fn push(&mut self, value: &[u8]) -> Result<(), CollectionError> {
        let encoded = encode(value, self.block_bytes).ok_or(CollectionError::ValueTooLarge {
            len: value.len(),
            max: self.block_bytes - 2,
        })?;
        let depth = self.read_depth();
        if depth >= self.capacity {
            // Dummy write keeps the failed push indistinguishable on the
            // bus from a successful one (same two accesses).
            self.write_depth(depth);
            return Err(CollectionError::Full);
        }
        let _ = self.oram.write_block(BlockId(depth + 1), &encoded);
        self.write_depth(depth + 1);
        Ok(())
    }

    /// Pops the top element; `None` when empty (still performs the same
    /// number of ORAM accesses as a successful pop).
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>, CollectionError> {
        let depth = self.read_depth();
        if depth == 0 {
            // Dummy accesses mirror the successful path.
            let _ = self.oram.read_block(BlockId(1));
            self.write_depth(0);
            return Ok(None);
        }
        let (_, data) = self.oram.read_block(BlockId(depth));
        self.write_depth(depth - 1);
        Ok(data.map(|d| decode(&d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> ObliviousStack {
        ObliviousStack::new(RingConfig::test_small(), 64, 2)
    }

    #[test]
    fn lifo_order() {
        let mut s = stack();
        for i in 0..10u8 {
            s.push(&[i]).unwrap();
        }
        for i in (0..10u8).rev() {
            assert_eq!(s.pop().unwrap(), Some(vec![i]));
        }
        assert_eq!(s.pop().unwrap(), None);
    }

    #[test]
    fn depth_is_persistent_state() {
        let mut s = stack();
        assert!(s.is_empty());
        s.push(b"x").unwrap();
        s.push(b"y").unwrap();
        assert_eq!(s.len(), 2);
        let _ = s.pop().unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_stack_rejects_push() {
        let mut s = ObliviousStack::new(RingConfig::test_small(), 3, 4);
        for i in 0..3u8 {
            s.push(&[i]).unwrap();
        }
        assert_eq!(s.push(b"overflow"), Err(CollectionError::Full));
        assert_eq!(s.len(), 3);
        assert_eq!(s.pop().unwrap(), Some(vec![2]));
    }

    #[test]
    fn pop_and_failed_pop_cost_the_same() {
        let mut s = stack();
        s.push(b"x").unwrap();
        let before = s.oram().stats().read_paths;
        let _ = s.pop().unwrap(); // successful: depth read + elem read + depth write
        let ok_cost = s.oram().stats().read_paths - before;
        let before = s.oram().stats().read_paths;
        let _ = s.pop().unwrap(); // empty
        let empty_cost = s.oram().stats().read_paths - before;
        assert_eq!(ok_cost, empty_cost, "pop timing leaks emptiness");
    }

    #[test]
    fn push_after_pop_reuses_slots() {
        let mut s = stack();
        s.push(b"a").unwrap();
        let _ = s.pop().unwrap();
        s.push(b"b").unwrap();
        assert_eq!(s.pop().unwrap(), Some(b"b".to_vec()));
        s.oram().check_invariants();
    }

    #[test]
    fn interleaved_churn() {
        let mut s = stack();
        let mut model = Vec::new();
        for i in 0..100u32 {
            if i % 3 == 2 {
                assert_eq!(
                    s.pop().unwrap(),
                    model.pop(),
                    "model divergence at step {i}"
                );
            } else {
                let v = i.to_le_bytes().to_vec();
                s.push(&v).unwrap();
                model.push(v);
            }
        }
        while let Some(expect) = model.pop() {
            assert_eq!(s.pop().unwrap(), Some(expect));
        }
        assert!(s.is_empty());
    }
}
