//! Model-based property tests: each oblivious collection must behave
//! exactly like its `std` counterpart under arbitrary operation sequences,
//! while paying a fixed, operation-independent ORAM cost. Sequences come
//! from the in-repo deterministic PRNG so the suite runs identically
//! offline.

use oram_collections::{ObliviousArray, ObliviousMap, ObliviousStack};
use oram_rng::{Rng, StdRng};
use ring_oram::RingConfig;

const CASES: u64 = 32;

#[test]
fn array_matches_vec_model() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let n_ops = rng.gen_range(1usize..120);
        let seed = rng.gen::<u64>();
        let mut arr = ObliviousArray::new(RingConfig::test_small(), 64, seed);
        let mut model: Vec<Option<Vec<u8>>> = vec![None; 64];
        for _ in 0..n_ops {
            let idx = rng.gen_range(0u64..64);
            let is_set = rng.gen::<bool>();
            let tag = rng.gen::<u8>();
            if is_set {
                let value = vec![tag; (tag % 30) as usize];
                arr.set(idx, &value).expect("in range");
                model[idx as usize] = Some(value);
            } else {
                assert_eq!(arr.get(idx).expect("in range"), model[idx as usize].clone());
            }
        }
        arr.oram().check_invariants();
    }
}

#[test]
fn map_matches_hashmap_model() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x11);
        let n_ops = rng.gen_range(1usize..100);
        let seed = rng.gen::<u64>();
        let mut map = ObliviousMap::new(RingConfig::test_small(), 256, seed);
        let mut model: std::collections::HashMap<Vec<u8>, Vec<u8>> =
            std::collections::HashMap::new();
        for _ in 0..n_ops {
            let key_sel = rng.gen_range(0u8..24);
            let op = rng.gen_range(0u8..3);
            let tag = rng.gen::<u8>();
            let key = format!("key-{key_sel}").into_bytes();
            match op {
                0 => {
                    let value = vec![tag; 8];
                    // A full probe window is possible but vanishingly rare
                    // at <10% load; treat it as a hard failure.
                    map.put(&key, &value).expect("table far from full");
                    model.insert(key, value);
                }
                1 => {
                    assert_eq!(map.get(&key).expect("sized"), model.get(&key).cloned());
                }
                _ => {
                    assert_eq!(map.remove(&key).expect("sized"), model.remove(&key));
                }
            }
            assert_eq!(map.len() as usize, model.len());
        }
        map.oram().check_invariants();
    }
}

#[test]
fn stack_matches_vec_model() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x22);
        let n_ops = rng.gen_range(1usize..80);
        let seed = rng.gen::<u64>();
        let mut stack = ObliviousStack::new(RingConfig::test_small(), 128, seed);
        let mut model: Vec<Vec<u8>> = Vec::new();
        for _ in 0..n_ops {
            let is_push = rng.gen::<bool>();
            let tag = rng.gen::<u8>();
            if is_push {
                let value = vec![tag; 4];
                stack.push(&value).expect("capacity 128 not reached");
                model.push(value);
            } else {
                assert_eq!(stack.pop().expect("no size errors"), model.pop());
            }
        }
        assert_eq!(stack.len(), model.len() as u64);
        stack.oram().check_invariants();
    }
}

#[test]
fn map_cost_is_operation_independent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case ^ 0x33);
        let n_keys = rng.gen_range(2usize..20);
        let seed = rng.gen::<u64>();
        // Whatever mix of hits and misses, every get costs exactly PROBES
        // read paths — the obliviousness contract.
        let mut map = ObliviousMap::new(RingConfig::test_small(), 256, seed);
        map.put(b"present", b"x").expect("insert");
        for _ in 0..n_keys {
            let k = rng.gen_range(0u16..1000);
            let key = format!("k{k}").into_bytes();
            let before = map.oram().stats().read_paths;
            let _ = map.get(&key).expect("sized");
            assert_eq!(map.oram().stats().read_paths - before, ObliviousMap::PROBES);
        }
    }
}
