//! Model-based property tests: each oblivious collection must behave
//! exactly like its `std` counterpart under arbitrary operation sequences,
//! while paying a fixed, operation-independent ORAM cost.

use proptest::prelude::*;

use oram_collections::{ObliviousArray, ObliviousMap, ObliviousStack};
use ring_oram::RingConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn array_matches_vec_model(
        ops in proptest::collection::vec((0u64..64, any::<bool>(), any::<u8>()), 1..120),
        seed in any::<u64>(),
    ) {
        let mut arr = ObliviousArray::new(RingConfig::test_small(), 64, seed);
        let mut model: Vec<Option<Vec<u8>>> = vec![None; 64];
        for (idx, is_set, tag) in ops {
            if is_set {
                let value = vec![tag; (tag % 30) as usize];
                arr.set(idx, &value).expect("in range");
                model[idx as usize] = Some(value);
            } else {
                prop_assert_eq!(arr.get(idx).expect("in range"), model[idx as usize].clone());
            }
        }
        arr.oram().check_invariants();
    }

    #[test]
    fn map_matches_hashmap_model(
        ops in proptest::collection::vec((0u8..24, 0u8..3, any::<u8>()), 1..100),
        seed in any::<u64>(),
    ) {
        let mut map = ObliviousMap::new(RingConfig::test_small(), 256, seed);
        let mut model: std::collections::HashMap<Vec<u8>, Vec<u8>> =
            std::collections::HashMap::new();
        for (key_sel, op, tag) in ops {
            let key = format!("key-{key_sel}").into_bytes();
            match op {
                0 => {
                    let value = vec![tag; 8];
                    // A full probe window is possible but vanishingly rare
                    // at <10% load; treat it as a hard failure.
                    map.put(&key, &value).expect("table far from full");
                    model.insert(key, value);
                }
                1 => {
                    prop_assert_eq!(
                        map.get(&key).expect("sized"),
                        model.get(&key).cloned()
                    );
                }
                _ => {
                    prop_assert_eq!(
                        map.remove(&key).expect("sized"),
                        model.remove(&key)
                    );
                }
            }
            prop_assert_eq!(map.len() as usize, model.len());
        }
        map.oram().check_invariants();
    }

    #[test]
    fn stack_matches_vec_model(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..80),
        seed in any::<u64>(),
    ) {
        let mut stack = ObliviousStack::new(RingConfig::test_small(), 128, seed);
        let mut model: Vec<Vec<u8>> = Vec::new();
        for (is_push, tag) in ops {
            if is_push {
                let value = vec![tag; 4];
                stack.push(&value).expect("capacity 128 not reached");
                model.push(value);
            } else {
                prop_assert_eq!(stack.pop().expect("no size errors"), model.pop());
            }
        }
        prop_assert_eq!(stack.len(), model.len() as u64);
        stack.oram().check_invariants();
    }

    #[test]
    fn map_cost_is_operation_independent(
        keys in proptest::collection::vec(0u16..1000, 2..20),
        seed in any::<u64>(),
    ) {
        // Whatever mix of hits and misses, every get costs exactly PROBES
        // read paths — the obliviousness contract.
        let mut map = ObliviousMap::new(RingConfig::test_small(), 256, seed);
        map.put(b"present", b"x").expect("insert");
        for k in keys {
            let key = format!("k{k}").into_bytes();
            let before = map.oram().stats().read_paths;
            let _ = map.get(&key).expect("sized");
            prop_assert_eq!(
                map.oram().stats().read_paths - before,
                ObliviousMap::PROBES
            );
        }
    }
}
