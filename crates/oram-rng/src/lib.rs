//! # oram-rng — self-contained deterministic pseudo-randomness
//!
//! The workspace must build and test with **no network access**, so it
//! cannot depend on the `rand` crate. This crate supplies the small slice
//! of functionality the simulators actually use, with the same call-site
//! shapes (`gen`, `gen_range`, `gen_bool`, `shuffle`, `choose`,
//! `StdRng::seed_from_u64`), backed by two well-known public-domain
//! generators:
//!
//! * [`SplitMix64`] — the seed expander (one multiply, two xor-shifts per
//!   output; equidistributed over its full 2^64 period);
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman/Vigna
//!   xoshiro256**, 2^256 − 1 period), aliased as [`StdRng`].
//!
//! Determinism is a hard requirement here, not a convenience: simulation
//! runs must be bit-identical across machines and releases, so the
//! algorithms are frozen by the unit tests at the bottom of this file
//! (known-answer vectors from the reference C implementations).
//!
//! # Examples
//!
//! ```
//! use oram_rng::{Rng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: u64 = rng.gen();
//! let lane = rng.gen_range(0..4u32);
//! assert!(lane < 4);
//! let coin = rng.gen_bool(0.5);
//! let _ = (x, coin);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::redundant_clone)]
#![warn(clippy::large_enum_variant)]

use core::ops::Range;

/// SplitMix64: Sebastiano Vigna's public-domain seed expander.
///
/// Every output of the 64-bit counter sequence is bijectively mixed, so any
/// seed — including 0 — produces a full-quality stream. Used to derive
/// [`Xoshiro256StarStar`] state and available directly for cheap hashing.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed (all values are fine).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// xoshiro256**: Blackman and Vigna's general-purpose 256-bit generator.
///
/// The workspace's standard generator (see the [`StdRng`] alias). Passes
/// BigCrush, has a 2^256 − 1 period, and is seeded from a single `u64` by
/// running [`SplitMix64`] four times, exactly as the reference code
/// recommends.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's default generator, by analogy with `rand::rngs::StdRng`.
pub type StdRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the generator from a single `u64` via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value samplable uniformly from a generator's raw 64-bit stream
/// (the analogue of `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives the seed of an independent randomness stream from a master
/// seed: the hash of the concatenation `master || stream` run through two
/// rounds of [`SplitMix64`] mixing.
///
/// This is how sharded simulations split one configured seed into one
/// stream per shard: stream `s` of master `m` is
/// `derive_stream_seed(m, s)`. Because every 64-bit output of SplitMix64
/// is bijectively mixed, distinct `(master, stream)` pairs land on
/// well-separated xoshiro256** states, so the per-shard generators are
/// statistically independent (the `shard_properties` suite additionally
/// pins pairwise non-overlap of the first 10 k draws).
///
/// Stream 0 is *not* the master seed itself: callers that need an
/// unsharded run to be bit-identical to legacy behaviour must pass the
/// master seed through untouched for the single-stream case (see
/// `string_oram::pipeline::shard`).
#[must_use]
pub fn derive_stream_seed(master: u64, stream: u64) -> u64 {
    // Round 1: expand the master so nearby masters decorrelate.
    let mut sm = SplitMix64::new(master);
    let expanded = sm.next_u64();
    // Round 2: fold the stream index into the expanded state. XOR before
    // re-mixing keeps the pair bijective in `stream` for a fixed master.
    let mut sm = SplitMix64::new(expanded ^ stream);
    sm.next_u64()
}

/// An integer type usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Draws a value uniformly from `range` (half-open).
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Maps a raw 64-bit draw onto `0..span` by 128-bit multiply-shift
/// (Lemire). The residual bias is at most `span / 2^64` — irrelevant for
/// simulation workloads and worth the branch-free determinism.
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end - range.start) as u64;
                range.start + below(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// The generator interface: one required method, everything else derived.
///
/// Mirrors the subset of `rand::Rng` the workspace uses, so migrating a
/// call site is an import swap.
pub trait Rng {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Draws one value of an inferable type (`u64`, `u32`, `u8`, `bool`,
    /// `f64`); uniform over the type's range, `[0, 1)` for `f64`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws an integer uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

/// Slice helpers driven by an [`Rng`] (the analogue of
/// `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, uniform over
    /// permutations up to the generator's quality).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from Vigna's splitmix64.c with seed 1234567.
    #[test]
    fn splitmix64_known_answers() {
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    /// The zero seed must still produce a usable stream.
    #[test]
    fn splitmix64_zero_seed_is_fine() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    /// xoshiro256** from a splitmix-expanded state, checked against the
    /// reference C implementation (seed 42).
    #[test]
    fn xoshiro_known_answers() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        // Self-consistency: reseeding reproduces the stream exactly.
        let mut again = Xoshiro256StarStar::seed_from_u64(42);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // And the stream is frozen: these values are load-bearing for
        // reproducibility of every seeded simulation in the workspace.
        let mut sm = SplitMix64::new(42);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        let expect0 = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        assert_eq!(first[0], expect0);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(0..7u32);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(5..6u64);
            assert_eq!(v, 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(3..3u64);
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // And with overwhelming probability it actually moved something.
        assert_ne!(v, sorted);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn derived_stream_seeds_are_distinct_and_frozen() {
        // Distinct across streams and masters.
        let mut seen = std::collections::HashSet::new();
        for master in [0u64, 1, 42, 0xD15EA5E] {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(derive_stream_seed(master, stream)),
                    "collision at master {master} stream {stream}"
                );
            }
        }
        // Deterministic: the derivation is part of the reproducibility
        // contract, so freeze one reference value against the SplitMix64
        // definition above.
        let mut sm = SplitMix64::new(0xD15EA5E);
        let expanded = sm.next_u64();
        let mut sm = SplitMix64::new(expanded ^ 3);
        assert_eq!(derive_stream_seed(0xD15EA5E, 3), sm.next_u64());
        assert_eq!(derive_stream_seed(7, 0), derive_stream_seed(7, 0));
    }

    #[test]
    fn derived_stream_zero_differs_from_master() {
        // Stream 0 is a fresh stream, not the master passed through.
        for master in [1u64, 99, 0xABCD] {
            assert_ne!(derive_stream_seed(master, 0), master);
        }
    }

    #[test]
    fn rng_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert!(draw(&mut rng) < 100);
    }
}
