//! Service configuration: tenants, submission policy, deadlines and the
//! overload governor's watermarks.

use ring_oram::ProtocolKind;
use string_oram::{ConfigError, SystemConfig};
use trace_synth::ArrivalSpec;

/// How the batcher turns queued requests into engine submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionPolicy {
    /// Work-conserving: submit up to `batch` requests per cycle whenever
    /// the engine has transaction-window room. Highest throughput; request
    /// timing is load-dependent (the timing channel is open).
    BestEffort {
        /// Maximum submissions per cycle.
        batch: u32,
    },
    /// Cloak-style fixed rate: every `interval` cycles submit exactly
    /// `batch` slots — queued requests first, **cover accesses** for every
    /// empty slot — and nothing in between. The submission schedule is a
    /// pure function of the clock, so request timing cannot leak through
    /// the access stream; the cost is the padding overhead and added
    /// queueing delay.
    FixedRate {
        /// Cycles between submission ticks. Must be ≥ 1.
        interval: u64,
        /// Slots per submission tick. Must be ≥ 1.
        batch: u32,
    },
}

impl SubmissionPolicy {
    /// Stable label used in reports and bench JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::BestEffort { .. } => "best-effort",
            Self::FixedRate { .. } => "fixed-rate",
        }
    }
}

/// One tenant of the service: its queue bound, arrival shape and block
/// footprint. Tenant `t`'s blocks live at `(t << 20) .. (t << 20) + blocks`
/// — disjoint per-tenant ranges by construction.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (reports, violations).
    pub name: String,
    /// Maximum requests queued for this tenant; arrivals beyond it are
    /// shed with [`RejectReason::QueueFull`].
    pub queue_cap: usize,
    /// Arrival process shape (seeded per tenant by the service).
    pub arrivals: ArrivalSpec,
    /// Number of distinct blocks the tenant touches (uniform over its
    /// range). Must be in `1 ..= 2^20`.
    pub blocks: u64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
}

impl TenantSpec {
    /// A tenant with sane defaults: 64-deep queue, 25% writes, 4096
    /// blocks, the given arrival shape.
    #[must_use]
    pub fn new(name: impl Into<String>, arrivals: ArrivalSpec) -> Self {
        Self {
            name: name.into(),
            queue_cap: 64,
            arrivals,
            blocks: 4096,
            write_fraction: 0.25,
        }
    }
}

/// Watermarks of the overload governor's three-state machine
/// (Healthy → Degraded → Shedding), as fractions of total queue capacity,
/// with hysteresis on the way back down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Healthy → Degraded when total queue fill reaches this fraction.
    pub degrade_enter: f64,
    /// Degraded → Healthy when fill falls back to this fraction.
    pub degrade_exit: f64,
    /// Degraded → Shedding when fill reaches this fraction.
    pub shed_enter: f64,
    /// Shedding → Degraded when fill falls back to this fraction.
    pub shed_exit: f64,
    /// While Degraded, each tenant's effective queue bound is
    /// `ceil(queue_cap × degraded_quota)`; arrivals beyond it are shed
    /// with [`RejectReason::Throttled`].
    pub degraded_quota: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            degrade_enter: 0.6,
            degrade_exit: 0.3,
            shed_enter: 0.9,
            shed_exit: 0.5,
            degraded_quota: 0.5,
        }
    }
}

/// Why admission shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's queue was at capacity.
    QueueFull,
    /// The governor was Degraded and the tenant exceeded its tightened
    /// quota.
    Throttled,
    /// The governor was Shedding: no arrivals are admitted.
    Shedding,
}

impl RejectReason {
    /// Stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::QueueFull => "queue-full",
            Self::Throttled => "throttled",
            Self::Shedding => "shedding",
        }
    }
}

/// A structured shed: which tenant was refused and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// Index of the refused tenant.
    pub tenant: usize,
    /// Why admission refused it.
    pub reason: RejectReason,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {} rejected: {}",
            self.tenant,
            self.reason.label()
        )
    }
}

/// Full service configuration: the underlying system, the tenants, and
/// the serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The ORAM system the service fronts. `system.shards > 1` runs the
    /// sharded lockstep engine; `system.cores` is ignored (the service is
    /// request-driven, not trace-driven).
    pub system: SystemConfig,
    /// The tenants, in id order.
    pub tenants: Vec<TenantSpec>,
    /// Submission policy.
    pub policy: SubmissionPolicy,
    /// Cycles from admission to deadline. A request unresolved at its
    /// deadline retries (if budget remains) or resolves TimedOut —
    /// eagerly, at exactly the deadline cycle.
    pub deadline_cycles: u64,
    /// Retries a request may consume before timing out for good.
    pub retry_budget: u32,
    /// Overload governor watermarks.
    pub governor: GovernorConfig,
    /// Cycles during which tenants generate arrivals; after the horizon
    /// the service drains (keeping the fixed-rate cadence while queues
    /// are non-empty).
    pub horizon: u64,
    /// Hard cycle bound on the whole run including drain (wedge guard).
    pub max_cycles: u64,
}

impl ServiceConfig {
    /// A small configuration over [`SystemConfig::test_small`] for tests
    /// and examples: the given tenants, best-effort batching, generous
    /// deadlines.
    #[must_use]
    pub fn test_small(tenants: Vec<TenantSpec>, horizon: u64) -> Self {
        Self {
            system: SystemConfig::test_small(string_oram::Scheme::All),
            tenants,
            policy: SubmissionPolicy::BestEffort { batch: 4 },
            deadline_cycles: 20_000,
            retry_budget: 1,
            governor: GovernorConfig::default(),
            horizon,
            max_cycles: 50_000_000,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] when the underlying system config fails
    /// its own validation, a numeric knob is out of range, or the policy
    /// is unsupported: fixed-rate padding requires a protocol with native
    /// cover accesses (Ring / Ring+CB) and no recursion.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.system.validate()?;
        let bad = |m: String| Err(ConfigError::Invalid(m));
        if self.tenants.is_empty() {
            return bad("service needs at least one tenant".into());
        }
        for (t, spec) in self.tenants.iter().enumerate() {
            if spec.queue_cap == 0 {
                return bad(format!("tenant {t}: queue_cap must be >= 1"));
            }
            if spec.blocks == 0 || spec.blocks > (1 << 20) {
                return bad(format!("tenant {t}: blocks must be in 1..=2^20"));
            }
            if !(0.0..=1.0).contains(&spec.write_fraction) {
                return bad(format!("tenant {t}: write_fraction must be in [0, 1]"));
            }
            spec.arrivals
                .validate()
                .map_err(|e| ConfigError::Invalid(format!("tenant {t}: {e}")))?;
        }
        match self.policy {
            SubmissionPolicy::BestEffort { batch } | SubmissionPolicy::FixedRate { batch, .. }
                if batch == 0 =>
            {
                return bad("submission batch must be >= 1".into());
            }
            SubmissionPolicy::FixedRate { interval, .. } => {
                if interval == 0 {
                    return bad("fixed-rate interval must be >= 1".into());
                }
                if !matches!(
                    self.system.protocol,
                    ProtocolKind::RingCb | ProtocolKind::Ring
                ) {
                    return bad(format!(
                        "fixed-rate padding needs a protocol with native cover accesses; {} has \
                         none (use best-effort)",
                        self.system.protocol
                    ));
                }
                if self.system.recursion.is_some() {
                    return bad(
                        "fixed-rate padding is not supported under recursion (cover accesses \
                         cover only the data ORAM)"
                            .into(),
                    );
                }
            }
            SubmissionPolicy::BestEffort { .. } => {}
        }
        if self.deadline_cycles == 0 {
            return bad("deadline_cycles must be >= 1".into());
        }
        if self.horizon == 0 {
            return bad("horizon must be >= 1".into());
        }
        let g = &self.governor;
        for (v, name) in [
            (g.degrade_enter, "degrade_enter"),
            (g.degrade_exit, "degrade_exit"),
            (g.shed_enter, "shed_enter"),
            (g.shed_exit, "shed_exit"),
            (g.degraded_quota, "degraded_quota"),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return bad(format!("governor {name} must be in [0, 1], got {v}"));
            }
        }
        if g.degrade_exit >= g.degrade_enter || g.shed_exit >= g.shed_enter {
            return bad("governor exit watermarks must sit below their enter watermarks".into());
        }
        if g.degrade_enter > g.shed_enter {
            return bad("degrade_enter must not exceed shed_enter".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServiceConfig {
        ServiceConfig::test_small(
            vec![TenantSpec::new("a", ArrivalSpec::steady(10.0))],
            10_000,
        )
    }

    #[test]
    fn small_config_validates() {
        cfg().validate().unwrap();
    }

    #[test]
    fn fixed_rate_rejects_protocols_without_cover_accesses() {
        let mut c = cfg();
        c.policy = SubmissionPolicy::FixedRate {
            interval: 64,
            batch: 2,
        };
        c.validate().unwrap();
        c.system.protocol = ProtocolKind::Path;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("cover accesses"), "{err}");
    }

    #[test]
    fn governor_watermarks_need_hysteresis() {
        let mut c = cfg();
        c.governor.degrade_exit = c.governor.degrade_enter;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tenant_knobs_are_range_checked() {
        let mut c = cfg();
        c.tenants[0].queue_cap = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.tenants[0].blocks = (1 << 20) + 1;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.tenants[0].write_fraction = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn reject_labels_are_stable() {
        assert_eq!(RejectReason::QueueFull.label(), "queue-full");
        let r = Rejected {
            tenant: 2,
            reason: RejectReason::Shedding,
        };
        assert!(r.to_string().contains("tenant 2"));
        assert!(r.to_string().contains("shedding"));
    }
}
