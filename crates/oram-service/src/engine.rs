//! The request-driven engine: one five-stage pipeline instance per shard,
//! planned at dispatch time instead of from a trace.
//!
//! [`ShardPipeline`] composes the same public stage components as
//! `string_oram::Simulation` — [`Planner`], [`TxnTracker`], the pluggable
//! memory backend, [`Metrics`] and [`Conformance`] — but inverts the
//! driver: instead of cores replaying a fixed trace, the service injects
//! requests one at a time ([`ShardPipeline::dispatch_real`] /
//! [`ShardPipeline::dispatch_cover`]) and steps the pipeline cycle by
//! cycle. Requests are tagged through the planner's `CoreRequest::core`
//! field (an opaque `usize` the pipeline threads through to [`Wake::core`]
//! untouched), so each completion carries its service attempt id back out.
//! The tag never enters the access digest — the digest mixes only block
//! ids and lowered plans — so tagged and untagged runs are bus-identical.

use mem_sched::MemoryBackend;
use string_oram::pipeline::{
    build_backend, Conformance, CounterSnapshot, Metrics, Planner, TxnTracker, Wake,
};
use string_oram::{ConfigError, CoreRequest, SystemConfig};

/// One shard's request-driven pipeline: plan → enqueue → schedule →
/// retire → attribute, advanced one memory-bus cycle per [`Self::step`].
#[derive(Debug)]
pub struct ShardPipeline {
    planner: Planner,
    tracker: TxnTracker,
    backend: Box<dyn MemoryBackend>,
    metrics: Metrics,
    conformance: Conformance,
    planned_scratch: Vec<string_oram::pipeline::PlannedTxn>,
    retired_scratch: Vec<mem_sched::Completed>,
    cycle: u64,
}

impl ShardPipeline {
    /// Builds the pipeline for one shard's (validated, `shards = 1`)
    /// configuration, mirroring `Simulation::try_new`'s stage wiring.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] when the planner rejects the
    /// configuration (e.g. a recursive stack that does not fit DRAM).
    pub fn build(cfg: &SystemConfig) -> Result<Self, ConfigError> {
        let planner = Planner::build(cfg)?;
        let mut backend = build_backend(cfg);
        let conformance = Conformance::new(
            &cfg.verify,
            cfg.protocol,
            &cfg.effective_ring(),
            &cfg.geometry,
            &cfg.timing,
            backend.dram_module().is_some(),
            cfg.sched_policy.name(),
        );
        if conformance.stream_enabled() {
            backend.enable_command_trace();
        }
        Ok(Self {
            planner,
            tracker: TxnTracker::new(),
            backend,
            metrics: Metrics::new(),
            conformance,
            planned_scratch: Vec::new(),
            retired_scratch: Vec::new(),
            cycle: 0,
        })
    }

    /// Plans and admits one real access for `block` (shard-local id),
    /// tagged with the caller's attempt id. Returns the immediate wake
    /// when the access degenerates to a fully on-chip transaction (stash /
    /// tree-top hit): the tag comes back in [`Wake::core`] with
    /// `at = cycle + 1`.
    pub fn dispatch_real(&mut self, tag: usize, block: u64, is_write: bool) -> Option<Wake> {
        let req = CoreRequest {
            core: tag,
            block,
            is_write,
        };
        let mut planned = std::mem::take(&mut self.planned_scratch);
        self.planner
            .plan_into(&req, &mut self.conformance, &mut planned);
        let mut wake_out = None;
        for txn in planned.drain(..) {
            let (spent, wake) = self.tracker.admit(txn, self.cycle);
            self.planner.recycle_requests(spent);
            if wake.is_some() {
                debug_assert!(wake_out.is_none(), "one wake per access");
                wake_out = wake;
            }
        }
        self.planned_scratch = planned;
        self.conformance.collect();
        wake_out
    }

    /// Plans and admits one cover (padding) access. Returns `false` when
    /// the protocol has no native dummy-access mechanism — configuration
    /// validation rejects padded policies for those up front, so a `false`
    /// here is a caller bug.
    pub fn dispatch_cover(&mut self) -> bool {
        let mut planned = std::mem::take(&mut self.planned_scratch);
        let ok = self
            .planner
            .plan_cover_into(&mut self.conformance, &mut planned);
        for txn in planned.drain(..) {
            let (spent, wake) = self.tracker.admit(txn, self.cycle);
            self.planner.recycle_requests(spent);
            debug_assert!(wake.is_none(), "cover accesses carry no wake");
            let _ = wake;
        }
        self.planned_scratch = planned;
        self.conformance.collect();
        ok
    }

    /// Advances one memory-bus cycle through enqueue → schedule → retire →
    /// attribute, appending every core release to `wakes` ([`Wake::core`]
    /// carries the dispatch tag; [`Wake::at`] the cycle the data is
    /// available, always `> cycle`).
    pub fn step(&mut self, wakes: &mut Vec<Wake>) {
        let cycle = self.cycle;
        self.tracker.enqueue_ready(self.backend.as_mut(), cycle);
        self.backend.tick(cycle);
        if self.conformance.stream_enabled() {
            for ev in self.backend.take_command_events() {
                self.conformance.observe_command(&ev);
            }
            self.conformance.collect();
        }
        let mut done = std::mem::take(&mut self.retired_scratch);
        done.clear();
        self.backend.drain_completed_into(&mut done);
        for d in &done {
            if let Some(retired) = self.tracker.retire(d, cycle) {
                self.metrics.record_class(retired.kind, d.class);
                if let Some(wake) = retired.wake {
                    if let Some(latency) = wake.latency {
                        self.metrics.read_latencies.push(latency);
                    }
                    wakes.push(wake);
                }
            }
        }
        self.retired_scratch = done;
        self.metrics.attribute(self.tracker.oldest_kind());
        self.cycle += 1;
    }

    /// Unfinished transactions in the window (best-effort's dispatch gate).
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.tracker.inflight()
    }

    /// Whether all admitted work has retired.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.tracker.is_drained()
    }

    /// Cycles stepped so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// The running access digest (kinds, physical addresses, directions).
    #[must_use]
    pub fn access_digest(&self) -> u64 {
        self.planner.digest()
    }

    /// Real accesses planned so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.planner.accesses()
    }

    /// Cover accesses planned so far.
    #[must_use]
    pub fn cover_accesses(&self) -> u64 {
        self.planner.cover_accesses()
    }

    /// Engine-level read-latency samples (plan → data, in cycles).
    #[must_use]
    pub fn read_latency_samples(&self) -> &[u64] {
        &self.metrics.read_latencies
    }

    /// Conformance violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[sim_verify::Violation] {
        self.conformance.violations()
    }

    /// Freezes every counter into a snapshot for merged reporting.
    /// `instructions` is 0: the service is request-driven, there are no
    /// simulated cores retiring instructions.
    #[must_use]
    pub fn capture(&self) -> CounterSnapshot {
        CounterSnapshot {
            cycle: self.cycle,
            instructions: 0,
            oram_accesses: self.planner.accesses(),
            cycles_by_kind: self.metrics.cycles_by_kind,
            transactions_by_kind: self.tracker.transactions_by_kind().clone(),
            row_class_by_kind: self.metrics.row_class_map(),
            retry_cycles: self.metrics.retry_cycles,
            read_latency_idx: self.metrics.read_latencies.len(),
            backend: self.backend.snapshot(),
            protocol: self.planner.protocol().stats().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use string_oram::Scheme;

    fn pipeline() -> ShardPipeline {
        ShardPipeline::build(&SystemConfig::test_small(Scheme::All)).unwrap()
    }

    fn drain(p: &mut ShardPipeline) -> Vec<Wake> {
        let mut wakes = Vec::new();
        let mut guard = 0;
        while !p.is_drained() {
            p.step(&mut wakes);
            guard += 1;
            assert!(guard < 1_000_000, "engine wedged");
        }
        wakes
    }

    #[test]
    fn tagged_dispatch_returns_the_tag_through_the_wake() {
        let mut p = pipeline();
        let mut wakes = Vec::new();
        if let Some(w) = p.dispatch_real(0xBEE, 42, false) {
            wakes.push(w);
        }
        wakes.extend(drain(&mut p));
        assert_eq!(wakes.len(), 1, "exactly one wake per access");
        assert_eq!(wakes[0].core, 0xBEE);
        assert!(wakes[0].at > 0);
        assert_eq!(p.accesses(), 1);
        assert!(p.violations().is_empty(), "{:?}", p.violations());
    }

    #[test]
    fn cover_dispatch_wakes_nothing_and_counts_separately() {
        let mut p = pipeline();
        assert!(p.dispatch_cover());
        let wakes = drain(&mut p);
        assert!(wakes.is_empty());
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.cover_accesses(), 1);
        assert!(p.violations().is_empty(), "{:?}", p.violations());
    }

    #[test]
    fn tags_are_digest_invisible() {
        let mut a = pipeline();
        let mut b = pipeline();
        for (tag_a, tag_b, block) in [(7usize, 9000usize, 3u64), (8, 1, 11), (9, 2, 3)] {
            a.dispatch_real(tag_a, block, false);
            b.dispatch_real(tag_b, block, false);
        }
        drain(&mut a);
        drain(&mut b);
        assert_eq!(
            a.access_digest(),
            b.access_digest(),
            "attempt tags must never reach the bus-observable stream"
        );
    }

    #[test]
    fn interleaved_cover_and_real_traffic_audits_cleanly() {
        let mut p = pipeline();
        let mut wakes = Vec::new();
        for i in 0..24u64 {
            if i % 3 == 0 {
                assert!(p.dispatch_cover());
            } else if let Some(w) = p.dispatch_real(i as usize, i % 7, i % 2 == 0) {
                wakes.push(w);
            }
            for _ in 0..40 {
                p.step(&mut wakes);
            }
        }
        wakes.extend(drain(&mut p));
        assert_eq!(p.accesses(), 16);
        assert_eq!(p.cover_accesses(), 8);
        assert_eq!(wakes.len(), 16);
        assert!(p.violations().is_empty(), "{:?}", p.violations());
        let snap = p.capture();
        assert_eq!(snap.oram_accesses, 16);
        assert_eq!(snap.instructions, 0);
        assert_eq!(snap.cycles_by_kind.total(), p.cycles());
    }
}
