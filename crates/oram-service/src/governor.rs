//! The overload governor: a three-state hysteresis machine over total
//! queue pressure.
//!
//! ```text
//!            fill ≥ degrade_enter          fill ≥ shed_enter
//!  Healthy ───────────────────────▶ Degraded ───────────────▶ Shedding
//!     ▲                                │  ▲                      │
//!     └────────────────────────────────┘  └──────────────────────┘
//!            fill ≤ degrade_exit          fill ≤ shed_exit
//! ```
//!
//! The governor acts **only at admission** — it tightens per-tenant quotas
//! (Degraded) or refuses all arrivals (Shedding). It never touches the
//! batcher or the engine, so governor transitions cannot change the
//! engine-visible submission schedule; under the fixed-rate policy the
//! schedule stays a pure function of the clock through every transition
//! (shed arrivals simply mean more slots carry cover accesses, which the
//! protocol already makes indistinguishable from real ones).

use string_oram::GovernorSummary;

/// The governor's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorState {
    /// Normal admission: each tenant is bounded by its own queue cap.
    Healthy,
    /// Elevated pressure: per-tenant quotas are tightened to
    /// `ceil(cap × degraded_quota)`.
    Degraded,
    /// Critical pressure: all arrivals are shed until pressure recedes.
    Shedding,
}

impl GovernorState {
    /// Stable label for reports and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::Shedding => "shedding",
        }
    }
}

/// The state machine plus its transition counters.
#[derive(Debug)]
pub struct Governor {
    cfg: crate::config::GovernorConfig,
    state: GovernorState,
    summary: GovernorSummary,
}

impl Governor {
    /// A Healthy governor with the given watermarks.
    #[must_use]
    pub fn new(cfg: crate::config::GovernorConfig) -> Self {
        Self {
            cfg,
            state: GovernorState::Healthy,
            summary: GovernorSummary::default(),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> GovernorState {
        self.state
    }

    /// Transition counters so far.
    #[must_use]
    pub fn summary(&self) -> GovernorSummary {
        self.summary
    }

    /// Folds one observation of total queue pressure (`fill` = total
    /// queued / total capacity) and performs at most one transition.
    /// Called once per cycle; admission on the *next* cycle sees the new
    /// state (one-cycle-delayed control, which keeps admission for a cycle
    /// independent of that same cycle's arrivals).
    pub fn observe(&mut self, fill: f64) {
        self.state = match self.state {
            GovernorState::Healthy if fill >= self.cfg.degrade_enter => {
                self.summary.degraded_entries += 1;
                GovernorState::Degraded
            }
            GovernorState::Degraded if fill >= self.cfg.shed_enter => {
                self.summary.shed_entries += 1;
                GovernorState::Shedding
            }
            GovernorState::Degraded if fill <= self.cfg.degrade_exit => {
                self.summary.recoveries += 1;
                GovernorState::Healthy
            }
            GovernorState::Shedding if fill <= self.cfg.shed_exit => GovernorState::Degraded,
            s => s,
        };
    }

    /// The effective queue bound for a tenant with capacity `cap` under
    /// the current state (`None` = shed everything).
    #[must_use]
    pub fn effective_cap(&self, cap: usize) -> Option<usize> {
        match self.state {
            GovernorState::Healthy => Some(cap),
            GovernorState::Degraded => {
                let quota = (cap as f64 * self.cfg.degraded_quota).ceil() as usize;
                Some(quota.max(1).min(cap))
            }
            GovernorState::Shedding => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GovernorConfig;

    #[test]
    fn full_pressure_cycle_walks_all_states_and_counts() {
        let mut g = Governor::new(GovernorConfig::default());
        assert_eq!(g.state(), GovernorState::Healthy);
        g.observe(0.5); // below degrade_enter
        assert_eq!(g.state(), GovernorState::Healthy);
        g.observe(0.7);
        assert_eq!(g.state(), GovernorState::Degraded);
        g.observe(0.7); // between exit and shed_enter: hold
        assert_eq!(g.state(), GovernorState::Degraded);
        g.observe(0.95);
        assert_eq!(g.state(), GovernorState::Shedding);
        g.observe(0.6); // above shed_exit: hold
        assert_eq!(g.state(), GovernorState::Shedding);
        g.observe(0.4);
        assert_eq!(g.state(), GovernorState::Degraded);
        g.observe(0.2);
        assert_eq!(g.state(), GovernorState::Healthy);
        let s = g.summary();
        assert_eq!(s.degraded_entries, 1);
        assert_eq!(s.shed_entries, 1);
        assert_eq!(s.recoveries, 1);
    }

    #[test]
    fn one_transition_per_observation() {
        // Even a jump straight to 1.0 passes through Degraded first.
        let mut g = Governor::new(GovernorConfig::default());
        g.observe(1.0);
        assert_eq!(g.state(), GovernorState::Degraded);
        g.observe(1.0);
        assert_eq!(g.state(), GovernorState::Shedding);
    }

    #[test]
    fn effective_caps_follow_the_state() {
        let mut g = Governor::new(GovernorConfig::default());
        assert_eq!(g.effective_cap(10), Some(10));
        g.observe(0.7);
        assert_eq!(g.effective_cap(10), Some(5)); // ceil(10 * 0.5)
        assert_eq!(g.effective_cap(1), Some(1)); // never below 1
        g.observe(0.95);
        assert_eq!(g.effective_cap(10), None);
    }
}
