//! # oram-service — a multi-tenant front-end for the String ORAM engine
//!
//! This crate turns the trace-driven String ORAM pipeline into a
//! request-driven *service*: tenants submit block accesses into bounded
//! per-tenant queues, an admission layer sheds overload with structured
//! [`Rejected`] outcomes, a batcher submits queued work to the sharded
//! lockstep engine under either a work-conserving **best-effort** policy
//! or a Cloak-style **fixed-rate** policy (cover-access padding makes the
//! submission schedule a pure function of the clock — the timing channel
//! closes), and per-request **deadlines** with bounded retries guarantee
//! every admitted request resolves exactly once.
//!
//! An overload [`Governor`] walks Healthy → Degraded → Shedding on queue
//! pressure watermarks with hysteresis. Crucially it acts *only at
//! admission* — governor transitions can never change the engine-visible
//! access sequence, so graceful degradation costs nothing in obliviousness.
//!
//! Everything runs on virtual time (engine cycles). Same seed, same
//! configuration → byte-identical [`SimReport`]s, which the
//! `ServiceAuditor` in `sim-verify` and `tests/service_robustness.rs`
//! exploit for exact golden assertions.
//!
//! # Quickstart
//!
//! ```
//! use oram_service::{OramService, ServiceConfig, TenantSpec};
//! use trace_synth::ArrivalSpec;
//!
//! let cfg = ServiceConfig::test_small(
//!     vec![
//!         TenantSpec::new("latency-sensitive", ArrivalSpec::steady(4.0)),
//!         TenantSpec::new("batch", ArrivalSpec::bursty(2.0, 6.0)),
//!     ],
//!     20_000,
//! );
//! let mut service = OramService::new(cfg).expect("valid config");
//! let report = service.run().expect("terminates");
//! let summary = report.service.expect("service summary attached");
//! for tenant in &summary.tenants {
//!     assert_eq!(tenant.resolved(), tenant.arrivals); // exactly once
//! }
//! ```
//!
//! [`SimReport`]: string_oram::SimReport

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::redundant_clone)]
#![warn(clippy::large_enum_variant)]
// Library code must surface failures as values or documented panics, never
// as ad-hoc unwraps; tests are free to unwrap (a panic IS the failure).
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod engine;
pub mod governor;
pub mod service;

pub use config::{
    GovernorConfig, RejectReason, Rejected, ServiceConfig, SubmissionPolicy, TenantSpec,
};
pub use engine::ShardPipeline;
pub use governor::{Governor, GovernorState};
pub use service::OramService;
