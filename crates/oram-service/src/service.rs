//! The service proper: multi-tenant admission, batching, deadlines and
//! the merged report.
//!
//! [`OramService`] owns one [`ShardPipeline`] per shard and advances them
//! in lockstep on a single virtual clock (one service tick = one
//! memory-bus cycle). Each tick runs a fixed phase order:
//!
//! 1. resolve engine completions due this tick,
//! 2. expire deadlines due this tick (completions win ties),
//! 3. generate arrivals and run admission (against the governor state
//!    observed at the *end of the previous* tick),
//! 4. dispatch queued requests (and cover padding) per the submission
//!    policy,
//! 5. step every shard one cycle, in shard-id order,
//! 6. audit the tick and fold the submission envelope digest,
//! 7. observe queue pressure into the governor.
//!
//! Everything is deterministic: arrivals, block choices and cover routing
//! all draw from streams derived from the master seed with
//! [`oram_rng::derive_stream_seed`], and no wall-clock time exists
//! anywhere. Same seed, same config → byte-identical [`SimReport`]s.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use oram_rng::{derive_stream_seed, Rng, StdRng};
use ring_oram::{BlockId, ShardMap};
use sim_verify::{AuditedPolicy, RequestOutcome, ServiceAuditor};
use string_oram::pipeline::{build_report, merge_snapshots, CounterSnapshot};
use string_oram::{
    ConfigError, LatencyPercentiles, ServiceSummary, SimReport, SystemConfig, TenantSummary,
};
use trace_synth::ArrivalProcess;

use crate::config::{RejectReason, Rejected, ServiceConfig, SubmissionPolicy, TenantSpec};
use crate::engine::ShardPipeline;
use crate::governor::{Governor, GovernorState};

/// Stream tweak for the arrival-process master seed.
const ARRIVALS_STREAM: u64 = 0xA112;
/// Tweak xored into the arrivals master for tenant block/write draws.
const BLOCKS_TWEAK: u64 = 0xB10C;
/// Stream tweak for the cover-access shard-routing draw.
const COVER_STREAM: u64 = 0xC0_7E2;
/// Tenant `t`'s blocks live at `t << TENANT_SHIFT`.
const TENANT_SHIFT: u32 = 20;
/// Marker for "no live engine attempt".
const NO_ATTEMPT: u64 = u64::MAX;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u64(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Where a request currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting in its tenant's queue.
    Queued,
    /// Submitted to the engine; a live attempt is in flight.
    Dispatched,
    /// Resolved exactly once (completed, timed out or rejected).
    Resolved,
}

/// One request's bookkeeping entry. Entries are append-only — the request
/// id is the index into the table.
#[derive(Debug)]
struct Request {
    tenant: usize,
    /// Global block id (tenant base + offset).
    block: u64,
    is_write: bool,
    arrived_at: u64,
    /// Current deadline tick (extended on retry).
    deadline: u64,
    retries_used: u32,
    /// The live engine attempt id, or [`NO_ATTEMPT`] while queued. A wake
    /// for any other attempt id is stale and dropped.
    attempt: u64,
    phase: Phase,
}

/// Per-tenant runtime state: the bounded queue and the outcome counters.
#[derive(Debug)]
struct Tenant {
    spec: TenantSpec,
    /// First global block id of the tenant's range.
    base: u64,
    /// Request ids in arrival order. May contain ghosts (already-resolved
    /// requests, skipped lazily at dispatch); `queued_live` is the true
    /// depth used for caps, high-water marks and governor pressure.
    queue: VecDeque<u64>,
    queued_live: usize,
    high_water: usize,
    arrivals: u64,
    admitted: u64,
    completed: u64,
    timed_out: u64,
    rejected_queue_full: u64,
    rejected_throttled: u64,
    rejected_shed: u64,
    retries: u64,
    late_completions: u64,
    /// Admission-to-completion latencies of completed requests, in ticks.
    latencies: Vec<u64>,
    /// Block and write-fraction draws.
    rng: StdRng,
}

impl Tenant {
    fn new(spec: TenantSpec, id: usize, block_seed: u64) -> Self {
        Self {
            base: (id as u64) << TENANT_SHIFT,
            queue: VecDeque::new(),
            queued_live: 0,
            high_water: 0,
            arrivals: 0,
            admitted: 0,
            completed: 0,
            timed_out: 0,
            rejected_queue_full: 0,
            rejected_throttled: 0,
            rejected_shed: 0,
            retries: 0,
            late_completions: 0,
            latencies: Vec::new(),
            rng: StdRng::seed_from_u64(block_seed),
            spec,
        }
    }

    fn summary(&self) -> TenantSummary {
        TenantSummary {
            tenant: self.spec.name.clone(),
            arrivals: self.arrivals,
            admitted: self.admitted,
            completed: self.completed,
            timed_out: self.timed_out,
            rejected_queue_full: self.rejected_queue_full,
            rejected_throttled: self.rejected_throttled,
            rejected_shed: self.rejected_shed,
            retries: self.retries,
            late_completions: self.late_completions,
            queue_depth_high_water: self.high_water,
            latency: LatencyPercentiles::from_samples(&self.latencies),
        }
    }
}

/// The multi-tenant front-end. Build with [`OramService::new`], then
/// either drive it to completion with [`OramService::run`] or inject
/// requests by hand with [`OramService::submit`] between
/// [`OramService::tick_once`] calls.
#[derive(Debug)]
pub struct OramService {
    cfg: ServiceConfig,
    map: ShardMap,
    shards: Vec<ShardPipeline>,
    tenants: Vec<Tenant>,
    arrival_procs: Vec<ArrivalProcess>,
    requests: Vec<Request>,
    /// Attempt id → request id. Attempt ids are assigned densely at
    /// dispatch time.
    attempt_req: Vec<u64>,
    /// Min-heap of (deadline, request id). Entries whose request resolved
    /// or whose deadline moved (retry) are stale and skipped on pop.
    deadlines: BinaryHeap<Reverse<(u64, u64)>>,
    /// Min-heap of (wake tick, sequence, attempt id). The sequence number
    /// makes pop order deterministic for equal wake ticks.
    wakes: BinaryHeap<Reverse<(u64, u64, u64)>>,
    wake_seq: u64,
    wake_scratch: Vec<string_oram::pipeline::Wake>,
    cover_rng: StdRng,
    governor: Governor,
    auditor: ServiceAuditor,
    schedule_digest: u64,
    tick: u64,
    /// Round-robin cursor over tenants for dispatch fairness.
    rr: usize,
    /// Admitted requests not yet resolved.
    unresolved: u64,
    real_dispatched: u64,
    cover_dispatched: u64,
    total_caps: usize,
}

impl OramService {
    /// Validates `cfg` and builds the per-shard pipelines, mirroring the
    /// sharded engine's construction: each shard gets `shards = 1`, the
    /// shard-reduced ring, and (for `N > 1`) a decorrelated seed derived
    /// with [`derive_stream_seed`]`(master, shard_id)`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] from configuration validation or shard
    /// construction.
    pub fn new(cfg: ServiceConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let map = ShardMap::new(cfg.system.shards).map_err(ConfigError::Invalid)?;
        let shard_ring = map
            .shard_ring_config(&cfg.system.ring)
            .map_err(ConfigError::Invalid)?;
        let mut shards = Vec::with_capacity(map.shards());
        for s in 0..map.shards() {
            let mut shard_cfg: SystemConfig = cfg.system.clone();
            shard_cfg.shards = 1;
            shard_cfg.ring = shard_ring.clone();
            if map.shards() > 1 {
                shard_cfg.seed = derive_stream_seed(cfg.system.seed, s as u64);
            }
            shards.push(ShardPipeline::build(&shard_cfg)?);
        }
        let arrivals_master = derive_stream_seed(cfg.system.seed, ARRIVALS_STREAM);
        let arrival_procs: Vec<ArrivalProcess> = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                ArrivalProcess::new(spec.arrivals, derive_stream_seed(arrivals_master, t as u64))
            })
            .collect();
        let tenants: Vec<Tenant> = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let seed = derive_stream_seed(arrivals_master ^ BLOCKS_TWEAK, t as u64);
                Tenant::new(spec.clone(), t, seed)
            })
            .collect();
        let total_caps = tenants.iter().map(|t| t.spec.queue_cap).sum();
        let audited = match cfg.policy {
            SubmissionPolicy::BestEffort { .. } => AuditedPolicy::BestEffort,
            SubmissionPolicy::FixedRate { interval, batch } => {
                AuditedPolicy::FixedRate { interval, batch }
            }
        };
        let caps = tenants.iter().map(|t| t.spec.queue_cap).collect();
        Ok(Self {
            map,
            shards,
            tenants,
            arrival_procs,
            requests: Vec::new(),
            attempt_req: Vec::new(),
            deadlines: BinaryHeap::new(),
            wakes: BinaryHeap::new(),
            wake_seq: 0,
            wake_scratch: Vec::new(),
            cover_rng: StdRng::seed_from_u64(derive_stream_seed(cfg.system.seed, COVER_STREAM)),
            governor: Governor::new(cfg.governor),
            auditor: ServiceAuditor::new(audited, caps),
            schedule_digest: FNV_OFFSET,
            tick: 0,
            rr: 0,
            unresolved: 0,
            real_dispatched: 0,
            cover_dispatched: 0,
            total_caps,
            cfg,
        })
    }

    /// Submits one request for tenant `tenant`'s block `offset` (taken
    /// modulo the tenant's block count). Admission applies the governor's
    /// current effective quota and the tenant's queue cap; a shed request
    /// resolves immediately with a structured [`Rejected`].
    ///
    /// # Errors
    ///
    /// [`Rejected`] when admission sheds the request (it still counts as
    /// an arrival and resolves exactly once, as rejected).
    ///
    /// # Panics
    ///
    /// When `tenant` is out of range (caller bug).
    pub fn submit(&mut self, tenant: usize, offset: u64, is_write: bool) -> Result<u64, Rejected> {
        assert!(tenant < self.tenants.len(), "tenant {tenant} out of range");
        let now = self.tick;
        let id = self.requests.len() as u64;
        self.auditor.observe_arrival(now, id);
        let cap = self
            .governor
            .effective_cap(self.tenants[tenant].spec.queue_cap);
        let ten = &mut self.tenants[tenant];
        ten.arrivals += 1;
        let block = ten.base + (offset % ten.spec.blocks);
        let verdict = match cap {
            None => Some(RejectReason::Shedding),
            Some(_) if ten.queued_live >= ten.spec.queue_cap => Some(RejectReason::QueueFull),
            Some(eff) if ten.queued_live >= eff => Some(RejectReason::Throttled),
            Some(_) => None,
        };
        if let Some(reason) = verdict {
            match reason {
                RejectReason::QueueFull => ten.rejected_queue_full += 1,
                RejectReason::Throttled => ten.rejected_throttled += 1,
                RejectReason::Shedding => ten.rejected_shed += 1,
            }
            self.requests.push(Request {
                tenant,
                block,
                is_write,
                arrived_at: now,
                deadline: now,
                retries_used: 0,
                attempt: NO_ATTEMPT,
                phase: Phase::Resolved,
            });
            self.auditor
                .observe_resolution(now, id, RequestOutcome::Rejected);
            return Err(Rejected { tenant, reason });
        }
        ten.admitted += 1;
        ten.queue.push_back(id);
        ten.queued_live += 1;
        ten.high_water = ten.high_water.max(ten.queued_live);
        let deadline = now + self.cfg.deadline_cycles;
        self.requests.push(Request {
            tenant,
            block,
            is_write,
            arrived_at: now,
            deadline,
            retries_used: 0,
            attempt: NO_ATTEMPT,
            phase: Phase::Queued,
        });
        self.deadlines.push(Reverse((deadline, id)));
        self.unresolved += 1;
        Ok(id)
    }

    /// Resolves engine completions whose wake tick has arrived. A wake
    /// whose attempt no longer matches its request's live attempt (the
    /// request timed out or retried) is dropped and counted as a late
    /// completion.
    fn process_wakes(&mut self, now: u64) {
        while let Some(&Reverse((at, _, attempt))) = self.wakes.peek() {
            if at > now {
                break;
            }
            self.wakes.pop();
            let id = self.attempt_req[attempt as usize];
            let req = &mut self.requests[id as usize];
            if req.phase == Phase::Dispatched && req.attempt == attempt {
                req.phase = Phase::Resolved;
                let ten = &mut self.tenants[req.tenant];
                ten.completed += 1;
                ten.latencies.push(at.saturating_sub(req.arrived_at));
                self.unresolved -= 1;
                self.auditor
                    .observe_resolution(now, id, RequestOutcome::Completed);
            } else {
                self.tenants[req.tenant].late_completions += 1;
            }
        }
    }

    /// Expires deadlines due at `now`: unresolved requests retry while
    /// budget remains (new deadline, fresh attempt on redispatch) and
    /// otherwise resolve TimedOut — eagerly, at exactly the deadline tick.
    fn process_deadlines(&mut self, now: u64) {
        while let Some(&Reverse((deadline, id))) = self.deadlines.peek() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            let req = &mut self.requests[id as usize];
            // Stale entries: already resolved, or the deadline moved.
            if req.phase == Phase::Resolved || req.deadline != deadline {
                continue;
            }
            if req.retries_used < self.cfg.retry_budget {
                req.retries_used += 1;
                req.deadline = now + self.cfg.deadline_cycles;
                self.deadlines.push(Reverse((req.deadline, id)));
                self.tenants[req.tenant].retries += 1;
                match req.phase {
                    // Still queued: the retry just extends the deadline in
                    // place; the request keeps its queue position.
                    Phase::Queued => {}
                    // In flight: supersede the attempt and re-queue at the
                    // tail — unless the queue is full, in which case the
                    // retry is stillborn and the request times out now.
                    Phase::Dispatched => {
                        let tenant = req.tenant;
                        if self.tenants[tenant].queued_live < self.tenants[tenant].spec.queue_cap {
                            req.attempt = NO_ATTEMPT;
                            req.phase = Phase::Queued;
                            let ten = &mut self.tenants[tenant];
                            ten.queue.push_back(id);
                            ten.queued_live += 1;
                            ten.high_water = ten.high_water.max(ten.queued_live);
                        } else {
                            self.resolve_timeout(id, now);
                        }
                    }
                    Phase::Resolved => unreachable!("filtered above"),
                }
            } else {
                self.resolve_timeout(id, now);
            }
        }
    }

    fn resolve_timeout(&mut self, id: u64, now: u64) {
        let req = &mut self.requests[id as usize];
        debug_assert_ne!(req.phase, Phase::Resolved, "double timeout");
        if req.phase == Phase::Queued {
            // Leaves a ghost in the queue, skipped lazily at dispatch.
            self.tenants[req.tenant].queued_live -= 1;
        }
        req.phase = Phase::Resolved;
        self.tenants[req.tenant].timed_out += 1;
        self.unresolved -= 1;
        self.auditor
            .observe_resolution(now, id, RequestOutcome::TimedOut);
    }

    /// Pops the next dispatchable request, round-robin over tenants.
    /// `gated` applies best-effort's per-shard transaction-window check: a
    /// tenant whose head-of-line request targets a full shard is skipped
    /// this tick (FIFO per tenant is preserved; the head is not bypassed).
    fn pop_next_real(&mut self, gated: bool) -> Option<u64> {
        let n = self.tenants.len();
        for i in 0..n {
            let t = (self.rr + i) % n;
            // Shed ghosts at the head.
            while let Some(&id) = self.tenants[t].queue.front() {
                if self.requests[id as usize].phase == Phase::Queued {
                    break;
                }
                self.tenants[t].queue.pop_front();
            }
            let Some(&id) = self.tenants[t].queue.front() else {
                continue;
            };
            if gated {
                let shard = self.map.shard_of(BlockId(self.requests[id as usize].block));
                if self.shards[shard].inflight() >= self.cfg.system.max_inflight_txns {
                    continue;
                }
            }
            self.tenants[t].queue.pop_front();
            self.tenants[t].queued_live -= 1;
            self.rr = (t + 1) % n;
            return Some(id);
        }
        None
    }

    /// Dispatches request `id` into its shard under a fresh attempt id.
    fn dispatch_real(&mut self, id: u64, now: u64) {
        let attempt = self.attempt_req.len() as u64;
        self.attempt_req.push(id);
        let req = &mut self.requests[id as usize];
        req.attempt = attempt;
        req.phase = Phase::Dispatched;
        let block = BlockId(req.block);
        let is_write = req.is_write;
        let shard = self.map.shard_of(block);
        let local = self.map.local_block(block);
        self.auditor.observe_dispatch(now, Some(id));
        self.real_dispatched += 1;
        if let Some(wake) = self.shards[shard].dispatch_real(attempt as usize, local.0, is_write) {
            self.wakes.push(Reverse((wake.at, self.wake_seq, attempt)));
            self.wake_seq += 1;
        }
    }

    /// Dispatches one cover access to a uniformly drawn shard.
    fn dispatch_cover(&mut self, now: u64) {
        let shard = if self.shards.len() > 1 {
            self.cover_rng.gen_range(0..self.shards.len())
        } else {
            0
        };
        self.auditor.observe_dispatch(now, None);
        self.cover_dispatched += 1;
        let ok = self.shards[shard].dispatch_cover();
        debug_assert!(ok, "validated policies always have cover accesses");
    }

    fn total_queued(&self) -> usize {
        self.tenants.iter().map(|t| t.queued_live).sum()
    }

    /// Advances the service one tick (one memory-bus cycle) through the
    /// fixed phase order documented at module level.
    pub fn tick_once(&mut self) {
        let now = self.tick;
        // 1. Completions first: a request whose data arrives on its
        //    deadline tick completes rather than timing out.
        self.process_wakes(now);
        // 2. Deadlines.
        self.process_deadlines(now);
        // 3. Arrivals (inside the horizon), against the governor state
        //    observed at the end of the previous tick.
        if now < self.cfg.horizon {
            for t in 0..self.tenants.len() {
                let n = self.arrival_procs[t].next_tick();
                for _ in 0..n {
                    let blocks = self.tenants[t].spec.blocks;
                    let wf = self.tenants[t].spec.write_fraction;
                    let offset = self.tenants[t].rng.gen_range(0..blocks);
                    let is_write = self.tenants[t].rng.gen_bool(wf);
                    let _ = self.submit(t, offset, is_write);
                }
            }
        }
        for t in 0..self.tenants.len() {
            self.auditor
                .observe_queue_depth(now, t, self.tenants[t].queued_live);
        }
        // 4. Dispatch. The service keeps submitting past the horizon while
        //    queues hold live requests (drain keeps the cadence).
        let submitting = now < self.cfg.horizon || self.total_queued() > 0;
        let mut slots: u64 = 0;
        if submitting {
            match self.cfg.policy {
                SubmissionPolicy::BestEffort { batch } => {
                    for _ in 0..batch {
                        let Some(id) = self.pop_next_real(true) else {
                            break;
                        };
                        self.dispatch_real(id, now);
                        slots += 1;
                    }
                }
                SubmissionPolicy::FixedRate { interval, batch } => {
                    if now.is_multiple_of(interval) {
                        for _ in 0..batch {
                            match self.pop_next_real(false) {
                                Some(id) => self.dispatch_real(id, now),
                                None => self.dispatch_cover(now),
                            }
                            slots += 1;
                        }
                    }
                }
            }
            self.auditor.seal_tick(now);
        }
        // The envelope digest covers the steady-state window only: inside
        // the horizon the fixed-rate envelope is a pure function of the
        // clock and policy, so the digest is load-invariant. Past the
        // horizon the envelope length itself depends on backlog size —
        // the aggregate-drain leak the design doc discusses.
        if now < self.cfg.horizon {
            self.schedule_digest = fnv1a_u64(fnv1a_u64(self.schedule_digest, now), slots);
        }
        // 5. Lockstep step, shard-id order.
        let mut scratch = std::mem::take(&mut self.wake_scratch);
        for shard in &mut self.shards {
            scratch.clear();
            shard.step(&mut scratch);
            for wake in scratch.drain(..) {
                self.wakes
                    .push(Reverse((wake.at, self.wake_seq, wake.core as u64)));
                self.wake_seq += 1;
            }
        }
        self.wake_scratch = scratch;
        // 6. Governor sees this tick's closing pressure; admission next
        //    tick acts on it.
        let fill = if self.total_caps == 0 {
            0.0
        } else {
            self.total_queued() as f64 / self.total_caps as f64
        };
        self.governor.observe(fill);
        self.tick += 1;
    }

    /// Whether the run is complete: the horizon has passed, every admitted
    /// request has resolved, every shard has drained, and no engine wakes
    /// remain to account for.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.tick >= self.cfg.horizon
            && self.unresolved == 0
            && self.wakes.is_empty()
            && self.shards.iter().all(ShardPipeline::is_drained)
    }

    /// Runs the service to completion and returns the merged report.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Invalid`] when the run exceeds
    /// [`ServiceConfig::max_cycles`] (wedge guard); every well-formed
    /// configuration terminates because each admitted request resolves by
    /// its final deadline at the latest.
    pub fn run(&mut self) -> Result<SimReport, ConfigError> {
        while !self.is_finished() {
            if self.tick >= self.cfg.max_cycles {
                return Err(ConfigError::Invalid(format!(
                    "service exceeded max_cycles = {} with {} requests unresolved",
                    self.cfg.max_cycles, self.unresolved
                )));
            }
            self.tick_once();
        }
        self.auditor.finish(self.tick);
        Ok(self.report())
    }

    /// Builds the merged report: extensive counters summed over shards in
    /// shard-id order, latency percentiles over the pooled engine samples,
    /// per-shard conformance findings prefixed with their shard id,
    /// service-auditor findings appended, and the serving-layer summary
    /// attached.
    #[must_use]
    pub fn report(&self) -> SimReport {
        let snapshots: Vec<CounterSnapshot> =
            self.shards.iter().map(ShardPipeline::capture).collect();
        let merged = merge_snapshots(&snapshots);
        let pooled: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.read_latency_samples().iter().copied())
            .collect();
        let mut violations: Vec<String> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            violations.extend(shard.violations().iter().map(|v| format!("shard {s}: {v}")));
        }
        violations.extend(self.auditor.violations().iter().map(ToString::to_string));
        let label = format!("service/{}", self.policy_label());
        let mut report = build_report(&self.cfg.system, label, &merged, &pooled, violations);
        report.shards = self.shards.len();
        report.makespan_cycles = snapshots.iter().map(|s| s.cycle).max().unwrap_or(0);
        report.service = Some(ServiceSummary {
            policy: self.policy_label(),
            ticks: self.tick,
            real_accesses: self.real_dispatched,
            padding_accesses: self.cover_dispatched,
            schedule_digest: self.schedule_digest,
            governor: self.governor.summary(),
            tenants: self.tenants.iter().map(Tenant::summary).collect(),
        });
        report
    }

    fn policy_label(&self) -> String {
        match self.cfg.policy {
            SubmissionPolicy::BestEffort { batch } => format!("best-effort/batch={batch}"),
            SubmissionPolicy::FixedRate { interval, batch } => {
                format!("fixed-rate/interval={interval}/batch={batch}")
            }
        }
    }

    /// Current governor state.
    #[must_use]
    pub fn governor_state(&self) -> GovernorState {
        self.governor.state()
    }

    /// The submission-envelope digest folded so far (ticks inside the
    /// horizon only).
    #[must_use]
    pub fn schedule_digest(&self) -> u64 {
        self.schedule_digest
    }

    /// Ticks advanced so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Requests seen so far (admitted or shed).
    #[must_use]
    pub fn requests_seen(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::ArrivalSpec;

    fn two_tenant_cfg(horizon: u64) -> ServiceConfig {
        ServiceConfig::test_small(
            vec![
                TenantSpec::new("alpha", ArrivalSpec::steady(4.0)),
                TenantSpec::new("beta", ArrivalSpec::bursty(2.0, 6.0)),
            ],
            horizon,
        )
    }

    #[test]
    fn every_request_resolves_exactly_once() {
        let mut svc = OramService::new(two_tenant_cfg(30_000)).unwrap();
        let report = svc.run().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let service = report.service.expect("service summary attached");
        assert!(service.real_accesses > 0, "some requests must dispatch");
        for t in &service.tenants {
            assert_eq!(t.resolved(), t.arrivals, "tenant {}", t.tenant);
            assert!(t.queue_depth_high_water <= 64);
        }
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let run = || {
            let mut svc = OramService::new(two_tenant_cfg(20_000)).unwrap();
            svc.run().unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.service, b.service);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn manual_submission_reports_structured_sheds() {
        let mut cfg = two_tenant_cfg(1_000);
        cfg.tenants[0].queue_cap = 2;
        let mut svc = OramService::new(cfg).unwrap();
        assert!(svc.submit(0, 1, false).is_ok());
        assert!(svc.submit(0, 2, false).is_ok());
        let err = svc.submit(0, 3, false).unwrap_err();
        assert_eq!(err.reason, RejectReason::QueueFull);
        assert_eq!(err.tenant, 0);
    }

    #[test]
    fn fixed_rate_pads_every_interval_slot() {
        let mut cfg = two_tenant_cfg(8_192);
        cfg.policy = SubmissionPolicy::FixedRate {
            interval: 512,
            batch: 2,
        };
        let mut svc = OramService::new(cfg).unwrap();
        let report = svc.run().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let service = report.service.expect("service summary");
        // Inside the horizon the envelope is exact: 16 interval ticks × 2.
        assert!(service.real_accesses + service.padding_accesses >= 32);
        assert!(service.padding_accesses > 0, "idle slots must be padded");
    }
}
