//! AES-128, implemented from FIPS-197 first principles.
//!
//! The S-box is *derived* (multiplicative inverse in GF(2^8) followed by
//! the affine transform) rather than transcribed, so correctness rests on
//! the algebra plus the FIPS-197 / SP 800-38A test vectors below — not on
//! a 256-entry table being typed correctly.
//!
//! # Security
//!
//! This is a straightforward table-based software implementation: it is
//! **not constant-time** (S-box lookups are data-dependent) and therefore
//! unsuitable for protecting real secrets on shared hardware. Within this
//! simulator it provides *functionally real* encryption for the ORAM's
//! E/D logic; see `crate::crypto` for how it is used in CTR mode.

/// GF(2^8) multiplication modulo the AES polynomial `x^8+x^4+x^3+x+1`.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut out = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            out ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    out
}

/// Process-wide S-box, derived once and shared by every `Aes128` instance.
/// Key schedules are per-key, but the S-box is key-independent: caching it
/// keeps cipher construction cheap when N shard ciphers are built on worker
/// threads during parallel setup.
fn shared_sbox() -> &'static [u8; 256] {
    static SBOX: std::sync::OnceLock<[u8; 256]> = std::sync::OnceLock::new();
    SBOX.get_or_init(build_sbox)
}

/// Builds the AES S-box from its definition: `S(x) = affine(x^-1)` with
/// `S(0) = affine(0) = 0x63`.
#[allow(clippy::expect_used)] // invariant, stated in the expect message
fn build_sbox() -> [u8; 256] {
    // Multiplicative inverses via log/antilog tables over generator 3.
    let mut sbox = [0u8; 256];
    for x in 0..=255u8 {
        let inv = if x == 0 {
            0
        } else {
            // Brute-force inverse: the domain is tiny and this runs once.
            (1..=255u8)
                .find(|&y| gf_mul(x, y) == 1)
                .expect("every nonzero element has an inverse")
        };
        let b = inv;
        sbox[x as usize] =
            b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
    }
    sbox
}

/// AES-128 block cipher (encryption direction only — CTR mode needs no
/// decryption direction).
#[derive(Debug, Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; 11],
    sbox: [u8; 256],
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    #[must_use]
    pub fn new(key: [u8; 16]) -> Self {
        let sbox = *shared_sbox();
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self { round_keys, sbox }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    /// State layout: column-major (byte `state[4c + r]` is row r, col c),
    /// matching the FIPS-197 input ordering.
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn add_round_key(&self, state: &mut [u8; 16], round: usize) {
        for (b, k) in state.iter_mut().zip(&self.round_keys[round]) {
            *b ^= k;
        }
    }

    /// Encrypts one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut state = block;
        self.add_round_key(&mut state, 0);
        for round in 1..10 {
            self.sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            self.add_round_key(&mut state, round);
        }
        self.sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        self.add_round_key(&mut state, 10);
        state
    }

    /// XORs `data` with the CTR keystream for `(nonce, starting counter 0)`:
    /// block `i` of the keystream is `AES(nonce || i)`.
    pub fn ctr_xor(&self, nonce: u64, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let mut ctr_block = [0u8; 16];
            ctr_block[..8].copy_from_slice(&nonce.to_le_bytes());
            ctr_block[8..].copy_from_slice(&(i as u64).to_le_bytes());
            let ks = self.encrypt_block(ctr_block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    #[test]
    fn sbox_matches_known_anchors() {
        let sbox = build_sbox();
        // Canonical anchors from FIPS-197 Figure 7.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        // The S-box is a permutation.
        let mut seen = [false; 256];
        for &v in &sbox {
            assert!(!seen[v as usize], "duplicate {v:#x}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: the fully worked example.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let pt: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes128::new(key);
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 001122...ff.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(key);
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn sp800_38a_ecb_vector() {
        // NIST SP 800-38A F.1.1, block #1.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let pt: [u8; 16] = hex("6bc1bee22e409f96e93d7e117393172a").try_into().unwrap();
        let aes = Aes128::new(key);
        assert_eq!(
            aes.encrypt_block(pt).to_vec(),
            hex("3ad77bb40d7a3660a89ecaf32466ef97")
        );
    }

    #[test]
    fn ctr_xor_is_an_involution() {
        let aes = Aes128::new([7u8; 16]);
        let original: Vec<u8> = (0..100).collect();
        let mut data = original.clone();
        aes.ctr_xor(42, &mut data);
        assert_ne!(data, original, "keystream must change the data");
        aes.ctr_xor(42, &mut data);
        assert_eq!(data, original, "CTR is its own inverse");
    }

    #[test]
    fn ctr_nonces_produce_distinct_streams() {
        let aes = Aes128::new([7u8; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        aes.ctr_xor(1, &mut a);
        aes.ctr_xor(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn gf_mul_basics() {
        // x * x^-1 = 1 spot checks and the classic 0x57 * 0x83 = 0xc1
        // example from FIPS-197 §4.2.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }
}
