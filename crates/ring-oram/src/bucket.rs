//! Bucket state and the Compact Bucket (CB) access rules.
//!
//! A Ring ORAM bucket has `Z` real-block slots and, in baseline Ring ORAM,
//! `S` reserved dummy slots; it may be touched `S` times between shuffles
//! because every touch invalidates one slot. The paper's **Compact Bucket**
//! keeps the access budget at `S` but provisions only `S - Y` physical dummy
//! slots: up to `Y` of the touches may fetch a *green* block — a real block
//! consumed as if it were a dummy and parked in the stash.
//!
//! On the memory bus every touch is a single indistinguishable block read,
//! so the green/dummy distinction is invisible to the adversary; it only
//! changes how fast the stash fills (analyzed in the paper's §VII-D/E).

use oram_rng::{Rng, SliceRandom};

use crate::config::RingConfig;
use crate::types::{BlockId, FetchKind};

/// Owned payload of a real block (ciphertext when encryption is enabled).
pub type BlockData = Box<[u8]>;

/// A real block together with its (optional) payload, as moved between
/// buckets and the stash.
pub type BlockEntry = (BlockId, Option<BlockData>);

/// One physical slot of a bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    /// `Some` when the slot holds a real block, `None` for a dummy.
    block: Option<BlockId>,
    /// Whether the slot may still be read before the next shuffle.
    valid: bool,
    /// Stored payload; `Some` only when `block` is `Some` and the caller
    /// supplied data (timing-only simulations leave payloads out).
    data: Option<BlockData>,
}

/// A bucket: `Z + S - Y` permuted slots plus the metadata the paper's Fig. 2
/// and Fig. 7 describe (valid/real bits, access counter, green counter).
#[derive(Debug, Clone)]
pub struct Bucket {
    slots: Vec<Slot>,
    /// Touches since the last shuffle (the paper's per-bucket counter).
    accesses: u32,
    /// Green fetches since the last shuffle (the paper's green counter,
    /// `log2(Y)` bits of metadata).
    greens_used: u32,
    /// Cached count of valid slots holding a real block, so the per-touch
    /// access rules ([`Self::needs_reshuffle_gated`], slot choice) are O(1)
    /// instead of re-scanning the slot vector.
    n_valid_reals: u32,
    /// Cached count of valid dummy slots.
    n_valid_dummies: u32,
}

impl Bucket {
    /// A freshly shuffled bucket holding `blocks` (at most `Z` of them,
    /// without payloads), with the remaining slots as valid dummies, in a
    /// random permutation.
    ///
    /// # Panics
    ///
    /// Panics if more than `cfg.z` blocks are supplied.
    #[must_use]
    pub fn with_blocks<R: Rng + ?Sized>(cfg: &RingConfig, blocks: &[BlockId], rng: &mut R) -> Self {
        Self::with_entries(cfg, blocks.iter().map(|&b| (b, None)).collect(), rng)
    }

    /// A freshly shuffled bucket holding `entries` (blocks with optional
    /// payloads), with the remaining slots as valid dummies, in a random
    /// permutation.
    ///
    /// # Panics
    ///
    /// Panics if more than `cfg.z` entries are supplied.
    #[must_use]
    pub fn with_entries<R: Rng + ?Sized>(
        cfg: &RingConfig,
        mut entries: Vec<BlockEntry>,
        rng: &mut R,
    ) -> Self {
        let mut bucket = Self {
            slots: Vec::new(),
            accesses: 0,
            greens_used: 0,
            n_valid_reals: 0,
            n_valid_dummies: 0,
        };
        bucket.reload(cfg, &mut entries, rng);
        bucket
    }

    /// An empty, freshly shuffled bucket (all dummies).
    #[must_use]
    pub fn empty<R: Rng + ?Sized>(cfg: &RingConfig, rng: &mut R) -> Self {
        Self::with_blocks(cfg, &[], rng)
    }

    /// Touches since the last shuffle.
    #[must_use]
    pub fn accesses(&self) -> u32 {
        self.accesses
    }

    /// Green fetches since the last shuffle.
    #[must_use]
    pub fn greens_used(&self) -> u32 {
        self.greens_used
    }

    /// Number of valid real blocks currently stored.
    #[must_use]
    pub fn real_count(&self) -> usize {
        debug_assert_eq!(
            self.n_valid_reals as usize,
            self.slots
                .iter()
                .filter(|s| s.valid && s.block.is_some())
                .count()
        );
        self.n_valid_reals as usize
    }

    /// Number of valid dummy slots remaining.
    #[must_use]
    pub fn valid_dummies(&self) -> usize {
        debug_assert_eq!(
            self.n_valid_dummies as usize,
            self.slots
                .iter()
                .filter(|s| s.valid && s.block.is_none())
                .count()
        );
        self.n_valid_dummies as usize
    }

    /// The valid real blocks currently stored.
    #[must_use]
    pub fn real_blocks(&self) -> Vec<BlockId> {
        self.slots
            .iter()
            .filter(|s| s.valid)
            .filter_map(|s| s.block)
            .collect()
    }

    /// Slot index of `block` if it is present and still valid.
    #[must_use]
    pub fn find(&self, block: BlockId) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.valid && s.block == Some(block))
    }

    /// Whether the bucket must be reshuffled *before* it can absorb another
    /// touch: either its access budget `S` is exhausted, or — a CB-specific
    /// condition — it can serve neither a dummy nor a green fetch.
    ///
    /// The second condition cannot arise in baseline Ring ORAM (`Y = 0`
    /// guarantees `S` physical dummies) but can under CB when the bucket
    /// holds fewer real blocks than the green budget assumes. The simulator
    /// counts these *forced reshuffles* separately; see
    /// `RingOram`'s statistics.
    #[must_use]
    pub fn needs_reshuffle(&self, cfg: &RingConfig) -> bool {
        self.needs_reshuffle_gated(cfg, true)
    }

    /// [`Self::needs_reshuffle`] with an explicit green gate: with
    /// `allow_green = false` (the resilience layer's degraded mode) a
    /// bucket whose dummies are exhausted must reshuffle even if its green
    /// budget remains — green substitution is what degraded mode disables
    /// to stop feeding the stash. The one exception is a completely full
    /// bucket in a `Y == S` configuration, which has zero dummy slots:
    /// there a reshuffle cannot help and the green fetch is unavoidable.
    #[must_use]
    pub fn needs_reshuffle_gated(&self, cfg: &RingConfig, allow_green: bool) -> bool {
        if self.accesses >= cfg.s {
            return true;
        }
        if self.valid_dummies() > 0 {
            return false;
        }
        if !allow_green && (self.real_count() as u32) < cfg.bucket_slots() {
            // Degraded mode: a reshuffle re-validates every non-real slot
            // as a dummy, so prefer it over a green fetch whenever the
            // bucket has room for dummies. Only a completely full bucket
            // (possible when Y == S leaves zero dummy slots) falls through
            // to an unavoidable green.
            return true;
        }
        !self.green_available(cfg)
    }

    fn green_available(&self, cfg: &RingConfig) -> bool {
        self.greens_used < cfg.y && self.real_count() > 0
    }

    /// Picks a uniformly random valid slot that holds a real block
    /// (`real = true`) or a dummy (`real = false`); `None` when no such
    /// slot exists.
    ///
    /// Draw-compatible with `candidates.choose(rng)` over the collected
    /// ascending candidate list: both consume exactly one
    /// `gen_range(0..n)`-style draw for a non-empty set and select the
    /// `k`-th candidate in slot order — this form just skips building the
    /// list, using the cached counts instead.
    fn choose_slot<R: Rng + ?Sized>(&self, real: bool, rng: &mut R) -> Option<usize> {
        let n = if real {
            self.n_valid_reals
        } else {
            self.n_valid_dummies
        } as usize;
        if n == 0 {
            return None;
        }
        let k = rng.gen_range(0..n);
        let mut seen = 0;
        for (i, s) in self.slots.iter().enumerate() {
            if s.valid && s.block.is_some() == real {
                if seen == k {
                    return Some(i);
                }
                seen += 1;
            }
        }
        unreachable!("cached slot counts out of sync with slot vector")
    }

    /// Serves one read-path touch.
    ///
    /// * If `target` is present and valid, its slot is read: the block moves
    ///   to the caller (stash) and the slot is invalidated.
    /// * Otherwise a valid **dummy** is preferred; when no valid dummy
    ///   remains and the green budget allows, a valid real block is fetched
    ///   as a **green** block (dummy-first policy — the paper allows "freely
    ///   choosing", and dummy-first maximizes the bucket's usable lifetime
    ///   while keeping stash pressure minimal).
    ///
    /// Background-eviction dummy read paths (which the paper specifies as
    /// "reading specifically dummy blocks") call this with `target = None`;
    /// dummy-first makes them consume greens only as a last resort.
    ///
    /// Returns the slot index read, what it carried, and the payload when
    /// a real block (target or green) was fetched.
    ///
    /// # Panics
    ///
    /// Panics if the bucket cannot serve the touch;
    /// callers must check [`Self::needs_reshuffle`] first.
    pub fn serve_read<R: Rng + ?Sized>(
        &mut self,
        cfg: &RingConfig,
        target: Option<BlockId>,
        rng: &mut R,
    ) -> (usize, FetchKind, Option<BlockData>) {
        self.serve_read_gated(cfg, target, true, rng)
    }

    /// [`Self::serve_read`] with an explicit green gate; callers must check
    /// [`Self::needs_reshuffle_gated`] with the same gate first.
    ///
    /// # Panics
    ///
    /// Panics if the bucket cannot serve the touch under the gate.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    pub fn serve_read_gated<R: Rng + ?Sized>(
        &mut self,
        cfg: &RingConfig,
        target: Option<BlockId>,
        allow_green: bool,
        rng: &mut R,
    ) -> (usize, FetchKind, Option<BlockData>) {
        // A bucket holding the wanted target can always serve it (the
        // target read needs no dummy/green); otherwise the caller must have
        // reshuffled first.
        debug_assert!(
            target.is_some_and(|t| self.find(t).is_some())
                || !self.needs_reshuffle_gated(cfg, allow_green),
            "bucket exhausted"
        );
        self.accesses += 1;
        if let Some(t) = target {
            if let Some(idx) = self.find(t) {
                self.slots[idx].valid = false;
                self.slots[idx].block = None;
                self.n_valid_reals -= 1;
                let data = self.slots[idx].data.take();
                return (idx, FetchKind::Target(t), data);
            }
        }
        // Dummy-first policy.
        if let Some(idx) = self.choose_slot(false, rng) {
            self.slots[idx].valid = false;
            self.n_valid_dummies -= 1;
            return (idx, FetchKind::Dummy, None);
        }
        // Fall back to a green block. Under the degraded-mode gate this is
        // legal only for a completely full bucket, where no reshuffle can
        // mint a dummy (Y == S configurations).
        assert!(
            allow_green || self.real_count() as u32 == cfg.bucket_slots(),
            "green substitution disabled; needs_reshuffle_gated() should have fired"
        );
        let idx = self
            .choose_slot(true, rng)
            .expect("needs_reshuffle() guaranteed a candidate");
        assert!(
            self.greens_used < cfg.y,
            "green budget exceeded; needs_reshuffle() should have fired"
        );
        let block = self.slots[idx].block.take().expect("real slot has block");
        let data = self.slots[idx].data.take();
        self.slots[idx].valid = false;
        self.n_valid_reals -= 1;
        self.greens_used += 1;
        (idx, FetchKind::Green(block), data)
    }

    /// Removes and returns every valid real block with its payload (the
    /// eviction/reshuffle read phase: the controller reads the `Z` real
    /// slots of the bucket).
    pub fn take_real_blocks(&mut self) -> Vec<BlockEntry> {
        let mut out = Vec::new();
        self.take_real_blocks_into(&mut out);
        out
    }

    /// Allocation-free form of [`Self::take_real_blocks`]: appends the
    /// removed entries to a caller-provided (reusable) buffer.
    pub fn take_real_blocks_into(&mut self, out: &mut Vec<BlockEntry>) {
        let before = out.len();
        for s in &mut self.slots {
            if s.valid {
                if let Some(b) = s.block.take() {
                    out.push((b, s.data.take()));
                }
            }
        }
        // The emptied slots stay valid, so each one now counts as a dummy.
        let taken = (out.len() - before) as u32;
        self.n_valid_reals -= taken;
        self.n_valid_dummies += taken;
    }

    /// Reshuffles the bucket: installs `entries` (at most `Z`, drained from
    /// the caller's reusable buffer), resets all metadata and re-permutes
    /// the slots (the eviction/reshuffle write phase: `Z + S - Y` encrypted
    /// blocks are written back).
    ///
    /// # Panics
    ///
    /// Panics if more than `cfg.z` entries are supplied.
    pub fn reload<R: Rng + ?Sized>(
        &mut self,
        cfg: &RingConfig,
        entries: &mut Vec<BlockEntry>,
        rng: &mut R,
    ) {
        assert!(
            entries.len() <= cfg.z as usize,
            "bucket can hold at most Z = {} real blocks, got {}",
            cfg.z,
            entries.len()
        );
        let reals = entries.len() as u32;
        // Rebuild in place, reusing the slot buffer (a reload happens on
        // every eviction level and every reshuffle; a fresh allocation per
        // call dominates the protocol's own work).
        self.slots.clear();
        self.slots.extend(entries.drain(..).map(|(b, data)| Slot {
            block: Some(b),
            valid: true,
            data,
        }));
        let slot_count = cfg.bucket_slots() as usize;
        self.slots.resize_with(slot_count, || Slot {
            block: None,
            valid: true,
            data: None,
        });
        self.slots.shuffle(rng);
        self.accesses = 0;
        self.greens_used = 0;
        self.n_valid_reals = reals;
        self.n_valid_dummies = slot_count as u32 - reals;
    }

    /// Number of physical slots.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether `slot` currently holds a valid real block.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn slot_holds_real(&self, slot: usize) -> bool {
        let s = &self.slots[slot];
        s.valid && s.block.is_some()
    }

    /// Removes the block stored in `slot`, if any, returning its payload
    /// (used when the tree-top cache serves a target directly: an on-chip
    /// read with no protocol side effects).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn clear_slot(&mut self, slot: usize) -> Option<BlockData> {
        let s = &mut self.slots[slot];
        if s.valid && s.block.is_some() {
            self.n_valid_reals -= 1;
            self.n_valid_dummies += 1;
        }
        s.block = None;
        s.data.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn cfg() -> RingConfig {
        RingConfig::test_small() // Z=4, S=4, Y=0
    }

    fn cb_cfg() -> RingConfig {
        RingConfig::test_small_cb() // Z=4, S=4, Y=2
    }

    #[test]
    fn fresh_bucket_shape() {
        let mut r = rng();
        let b = Bucket::with_blocks(&cfg(), &[BlockId(1), BlockId(2)], &mut r);
        assert_eq!(b.slot_count(), 8); // Z + S - Y = 4 + 4 - 0
        assert_eq!(b.real_count(), 2);
        assert_eq!(b.valid_dummies(), 6);
        assert_eq!(b.accesses(), 0);
        assert_eq!(b.greens_used(), 0);
    }

    #[test]
    fn cb_bucket_is_smaller() {
        let mut r = rng();
        let b = Bucket::empty(&cb_cfg(), &mut r);
        assert_eq!(b.slot_count(), 6); // 4 + 4 - 2
    }

    #[test]
    #[should_panic(expected = "at most Z")]
    fn overfull_bucket_rejected() {
        let mut r = rng();
        let blocks: Vec<BlockId> = (0..5).map(BlockId).collect();
        let _ = Bucket::with_blocks(&cfg(), &blocks, &mut r);
    }

    #[test]
    fn target_read_removes_block() {
        let mut r = rng();
        let mut b = Bucket::with_blocks(&cfg(), &[BlockId(42)], &mut r);
        let (slot, kind, _) = b.serve_read(&cfg(), Some(BlockId(42)), &mut r);
        assert_eq!(kind, FetchKind::Target(BlockId(42)));
        assert!(slot < b.slot_count());
        assert_eq!(b.real_count(), 0);
        assert_eq!(b.accesses(), 1);
        assert_eq!(b.find(BlockId(42)), None);
    }

    #[test]
    fn non_target_read_prefers_dummies() {
        let mut r = rng();
        let c = cb_cfg(); // Z=4, S=4, Y=2 -> 6 slots
        let blocks: Vec<BlockId> = (0..4).map(BlockId).collect();
        let mut b = Bucket::with_blocks(&c, &blocks, &mut r);
        // A full bucket leaves 2 physical dummies: the first two non-target
        // reads must consume them even though greens are allowed.
        for _ in 0..2 {
            let (_, kind, _) = b.serve_read(&c, None, &mut r);
            assert_eq!(kind, FetchKind::Dummy);
        }
        // Third non-target read must fall back to a green block.
        let (_, kind, _) = b.serve_read(&c, None, &mut r);
        assert!(matches!(kind, FetchKind::Green(_)), "{kind:?}");
        assert_eq!(b.greens_used(), 1);
        assert_eq!(b.real_count(), 3);
    }

    #[test]
    fn underfull_bucket_has_extra_dummies() {
        // Unoccupied real slots physically hold dummies, so an underfull
        // CB bucket can serve more dummy touches than S - Y.
        let mut r = rng();
        let c = cb_cfg(); // 6 slots
        let mut b = Bucket::with_blocks(&c, &[BlockId(1)], &mut r);
        assert_eq!(b.valid_dummies(), 5);
        // S = 4 touches are all served by dummies; no green needed.
        for _ in 0..4 {
            let (_, kind, _) = b.serve_read(&c, None, &mut r);
            assert_eq!(kind, FetchKind::Dummy);
        }
        assert_eq!(b.greens_used(), 0);
        assert!(b.needs_reshuffle(&c), "budget S exhausted");
    }

    #[test]
    fn budget_exhaustion_triggers_reshuffle_signal() {
        let mut r = rng();
        let c = cfg(); // S = 4
        let mut b = Bucket::with_blocks(&c, &[BlockId(1)], &mut r);
        for _ in 0..4 {
            assert!(!b.needs_reshuffle(&c));
            let _ = b.serve_read(&c, None, &mut r);
        }
        assert!(b.needs_reshuffle(&c), "S touches exhaust the budget");
    }

    #[test]
    fn forced_exhaustion_cannot_occur_with_valid_configs() {
        // With Y <= Z (enforced by RingConfig::validate), every bucket can
        // always serve its full budget of S touches: the number of touchable
        // slots is (slots - reals) dummies + min(Y, reals) greens >= S for
        // any real count 0..=Z. Exhaustive check over all occupancies.
        let mut r = rng();
        let c = cb_cfg(); // Z=4, S=4, Y=2
        for reals in 0..=c.z {
            let blocks: Vec<BlockId> = (0..u64::from(reals)).map(BlockId).collect();
            let mut b = Bucket::with_blocks(&c, &blocks, &mut r);
            for touch in 0..c.s {
                assert!(
                    !b.needs_reshuffle(&c),
                    "bucket with {reals} reals exhausted after {touch} touches"
                );
                let _ = b.serve_read(&c, None, &mut r);
            }
            assert!(b.needs_reshuffle(&c), "budget S must be the binding limit");
        }
    }

    #[test]
    fn green_budget_is_capped() {
        let mut r = rng();
        let c = cb_cfg(); // Y = 2
        let blocks: Vec<BlockId> = (0..4).map(BlockId).collect();
        let mut b = Bucket::with_blocks(&c, &blocks, &mut r);
        // Use up 2 dummies + 2 greens = S touches.
        let mut greens = 0;
        for _ in 0..4 {
            let (_, kind, _) = b.serve_read(&c, None, &mut r);
            if matches!(kind, FetchKind::Green(_)) {
                greens += 1;
            }
        }
        assert_eq!(greens, 2);
        assert!(b.needs_reshuffle(&c));
        // Two real blocks survived untouched.
        assert_eq!(b.real_count(), 2);
    }

    #[test]
    fn green_gate_forces_reshuffle_when_dummies_run_out() {
        let mut r = rng();
        let c = cb_cfg(); // Z=4, S=4, Y=2 -> 6 slots, 2 physical dummies
        let blocks: Vec<BlockId> = (0..4).map(BlockId).collect();
        let mut b = Bucket::with_blocks(&c, &blocks, &mut r);
        for _ in 0..2 {
            let (_, kind, _) = b.serve_read_gated(&c, None, false, &mut r);
            assert_eq!(kind, FetchKind::Dummy, "gate must not affect dummies");
        }
        // Dummies exhausted: an ungated bucket would serve a green, a gated
        // one must reshuffle.
        assert!(!b.needs_reshuffle(&c));
        assert!(b.needs_reshuffle_gated(&c, false));
    }

    #[test]
    fn take_real_blocks_empties_bucket() {
        let mut r = rng();
        let blocks: Vec<BlockId> = (10..13).map(BlockId).collect();
        let mut b = Bucket::with_blocks(&cfg(), &blocks, &mut r);
        let mut taken: Vec<BlockId> = b.take_real_blocks().into_iter().map(|(b, _)| b).collect();
        taken.sort();
        assert_eq!(taken, blocks);
        assert_eq!(b.real_count(), 0);
    }

    #[test]
    fn reload_resets_metadata() {
        let mut r = rng();
        let c = cfg();
        let mut b = Bucket::with_blocks(&c, &[BlockId(1)], &mut r);
        let _ = b.serve_read(&c, None, &mut r);
        b.reload(&c, &mut vec![(BlockId(9), None)], &mut r);
        assert_eq!(b.accesses(), 0);
        assert_eq!(b.greens_used(), 0);
        assert_eq!(b.real_blocks(), vec![BlockId(9)]);
        assert_eq!(b.valid_dummies(), 7);
    }

    #[test]
    fn invalid_slots_are_never_reread() {
        let mut r = rng();
        let c = cfg();
        let mut b = Bucket::empty(&c, &mut r);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..c.s {
            let (slot, _, _) = b.serve_read(&c, None, &mut r);
            assert!(seen.insert(slot), "slot {slot} read twice");
        }
    }

    #[test]
    fn target_miss_falls_back_to_dummy() {
        let mut r = rng();
        let c = cfg();
        let mut b = Bucket::with_blocks(&c, &[BlockId(1)], &mut r);
        // Ask for a block the bucket does not hold.
        let (_, kind, _) = b.serve_read(&c, Some(BlockId(99)), &mut r);
        assert_eq!(kind, FetchKind::Dummy);
        assert_eq!(b.real_count(), 1, "stored block untouched");
    }
}
