//! Circuit ORAM (Wang et al., CCS'15 lineage): the low-client-bandwidth
//! point of the protocol design space.
//!
//! Where Path ORAM rewrites the whole read path on every access and Ring
//! ORAM amortizes evictions over `A` selective reads, Circuit ORAM keeps
//! the read path *read-only* — the target block alone is removed into the
//! stash — and pays for placement with a fixed number of deterministic
//! eviction passes per access along reverse-lexicographic paths
//! ([`EVICTIONS_PER_ACCESS`]; the canonical choice of two keeps the stash
//! bounded by a constant w.h.p. for `Z >= 2`).
//!
//! This implementation models the *bandwidth-observable* behaviour at
//! bucket-slot granularity, the same contract the other engines follow:
//! a read path touches all `Z` slots of every off-chip bucket on the
//! target's path (selective *removal* is a content decision, not a traffic
//! one — on the bus every slot is transferred), and each eviction reads
//! and rewrites all `Z` slots of every off-chip bucket on its path. The
//! single-block "move along the path" of the literature's circuit
//! formulation is subsumed here by a greedy leaf-first write-back, which
//! places at least as well and keeps the plan shape identical.
//!
//! Buckets are exactly `Z` slots — no dummy budget, no metadata counters.
//! The configuration is expressed as a [`RingConfig`] with `S = Y = 1`
//! (`bucket_slots = Z + S - Y = Z`), the same encoding the layout code
//! uses for Path ORAM.

use oram_rng::StdRng;

use crate::config::RingConfig;
use crate::fasthash::DetHashMap;
use crate::faults::OramError;
use crate::oblivious::{ObliviousProtocol, ProtocolKind};
use crate::plan::{AccessPlan, OpKind, SlotTouch};
use crate::position_map::PositionMap;
use crate::protocol::{AccessOutcome, ProtocolStats, TargetSource};
use crate::stash::Stash;
use crate::tree::TreeGeometry;
use crate::types::{BlockId, BucketId, Level, PathId};

/// Deterministic evictions per access: the canonical Circuit ORAM rate
/// (two reverse-lexicographic paths per access bound the stash w.h.p.).
pub const EVICTIONS_PER_ACCESS: usize = 2;

/// Reusable buffers for the steady-state access path (same ownership rule
/// as `protocol::Scratch`: plan/touch lists flow out through
/// [`AccessOutcome`]s and return via [`CircuitOram::recycle_outcome`]; the
/// candidate buffer never leaves the engine).
#[derive(Default)]
struct Scratch {
    /// Pool of `plans` vectors backing [`AccessOutcome`]s.
    plan_lists: Vec<Vec<AccessPlan>>,
    /// Pool of per-plan touch vectors.
    touch_lists: Vec<Vec<SlotTouch>>,
    /// Eviction write phase: `(block, deepest eligible level, taken)`
    /// snapshot of the stash, sorted ascending by block id.
    candidates: Vec<(BlockId, u32, bool)>,
}

impl Scratch {
    fn plans(&mut self) -> Vec<AccessPlan> {
        self.plan_lists.pop().unwrap_or_default()
    }

    fn touches(&mut self) -> Vec<SlotTouch> {
        self.touch_lists.pop().unwrap_or_default()
    }
}

/// The Circuit ORAM controller over a lazily materialized `Z`-slot tree.
pub struct CircuitOram {
    cfg: RingConfig,
    geometry: TreeGeometry,
    /// Bucket contents (block ids only; payloads are out of scope for the
    /// bandwidth/timing studies this engine serves). Content vectors
    /// materialize with capacity `Z` and are cleared and refilled in
    /// place, never dropped, so a materialized tree stops allocating.
    buckets: DetHashMap<BucketId, Vec<BlockId>>,
    position_map: PositionMap,
    stash: Stash,
    /// Eviction counter `G` driving the reverse lexicographic order.
    eviction_count: u64,
    rng: StdRng,
    stats: ProtocolStats,
    scratch: Scratch,
}

impl std::fmt::Debug for CircuitOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitOram")
            .field("cfg", &self.cfg)
            .field("buckets_materialized", &self.buckets.len())
            .field("stash_len", &self.stash.len())
            .field("eviction_count", &self.eviction_count)
            .finish_non_exhaustive()
    }
}

impl CircuitOram {
    /// Creates a controller with an initially empty tree.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RingConfig::validate`] or if
    /// `cfg.bucket_slots() != cfg.z` — Circuit ORAM buckets are exactly
    /// `Z` slots; encode that as `S = Y` (canonically `S = Y = 1`).
    #[must_use]
    pub fn new(cfg: RingConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid RingConfig: {e}");
        }
        assert!(
            cfg.bucket_slots() == cfg.z,
            "Circuit ORAM buckets are exactly Z slots; pass S = Y (e.g. S = Y = 1), got \
             Z = {}, S = {}, Y = {}",
            cfg.z,
            cfg.s,
            cfg.y
        );
        let geometry = TreeGeometry::new(cfg.levels);
        let position_map = PositionMap::new(geometry.leaf_count());
        Self {
            cfg,
            geometry,
            buckets: DetHashMap::default(),
            position_map,
            stash: Stash::new(),
            eviction_count: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: ProtocolStats::default(),
            scratch: Scratch::default(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// The tree geometry in force.
    #[must_use]
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// Current stash occupancy.
    #[must_use]
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Peak stash occupancy.
    #[must_use]
    pub fn stash_peak(&self) -> usize {
        self.stash.peak()
    }

    /// Tree buckets materialized (touched at least once) so far.
    #[must_use]
    pub fn materialized_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Performs one access: a read-only path fetch removing the target
    /// into the stash, then [`EVICTIONS_PER_ACCESS`] deterministic
    /// evictions along reverse-lexicographic paths.
    pub fn access(&mut self, block: BlockId) -> AccessOutcome {
        let path = self.position_map.lookup_or_assign(block, &mut self.rng);
        let cached = self.cfg.tree_top_cached_levels;
        let z = self.cfg.z;
        let in_stash = self.stash.contains(block);
        let mut plans = self.scratch.plans();
        let mut touches = self.scratch.touches();
        let mut target_index = None;
        let mut source = TargetSource::New;

        // Read phase: transfer every off-chip bucket on the path (all Z
        // slots — traffic is content-independent), but remove *only* the
        // target block into the stash.
        for lvl in 0..self.cfg.levels {
            let id = self.geometry.bucket_at(path, Level(lvl));
            let content = self
                .buckets
                .entry(id)
                .or_insert_with(|| Vec::with_capacity(z as usize));
            let off_chip = lvl >= cached;
            if let Some(pos) = content.iter().position(|b| *b == block) {
                if off_chip {
                    target_index = Some(touches.len() + pos);
                    source = TargetSource::Tree(Level(lvl));
                } else {
                    source = TargetSource::TreeTop(Level(lvl));
                }
                content.swap_remove(pos);
            }
            if off_chip {
                for slot in 0..z {
                    touches.push(SlotTouch::read(id, slot));
                }
            }
        }
        if matches!(source, TargetSource::New) && in_stash {
            source = TargetSource::Stash;
        }

        // Remap the target; it (re-)enters the stash under its new path.
        let new_path = self.position_map.remap(block, &mut self.rng);
        self.stash.insert(block, new_path);
        plans.push(AccessPlan::new(OpKind::ReadPath, touches, target_index));

        for _ in 0..EVICTIONS_PER_ACCESS {
            let plan = self.evict();
            plans.push(plan);
        }

        self.stats.read_paths += 1;
        match source {
            TargetSource::Tree(_) => self.stats.targets_from_tree += 1,
            TargetSource::TreeTop(_) => self.stats.targets_from_treetop += 1,
            TargetSource::Stash => self.stats.targets_from_stash += 1,
            TargetSource::New => self.stats.new_blocks += 1,
        }
        self.stats.stash_samples.push(self.stash.len());
        AccessOutcome { plans, source }
    }

    /// Infallible-protocol counterpart of [`RingOram::try_access`]
    /// (Circuit ORAM has no fault layer, so access cannot fail).
    ///
    /// [`RingOram::try_access`]: crate::protocol::RingOram::try_access
    ///
    /// # Errors
    ///
    /// Never returns an error; the signature mirrors the Ring engine's.
    pub fn try_access(&mut self, block: BlockId) -> Result<AccessOutcome, OramError> {
        Ok(self.access(block))
    }

    /// One eviction pass: drain every bucket on the reverse-lexicographic
    /// path `G` into the stash, then refill leaf-first greedily.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn evict(&mut self) -> AccessPlan {
        let g = self.eviction_count;
        self.eviction_count += 1;
        let epath = self.geometry.reverse_lexicographic_path(g);
        let cached = self.cfg.tree_top_cached_levels;
        let z = self.cfg.z;
        let mut touches = self.scratch.touches();

        // Read phase: every block on the path moves to the stash.
        for lvl in 0..self.cfg.levels {
            let id = self.geometry.bucket_at(epath, Level(lvl));
            let content = self
                .buckets
                .entry(id)
                .or_insert_with(|| Vec::with_capacity(z as usize));
            for &b in content.iter() {
                let p = self.position_map.lookup(b).expect("tree blocks are mapped");
                self.stash.insert(b, p);
            }
            content.clear();
            if lvl >= cached {
                for slot in 0..z {
                    touches.push(SlotTouch::read(id, slot));
                }
            }
        }

        // One snapshot of eviction candidates, selected ascending by block
        // id (the same deterministic order drain_for_bucket would impose),
        // instead of re-walking the stash per level.
        let cand = &mut self.scratch.candidates;
        cand.clear();
        self.stash
            .for_each_candidate(&self.geometry, epath, |b, depth| {
                cand.push((b, depth.0, false));
            });
        cand.sort_unstable_by_key(|&(b, _, _)| b);

        // Write phase: greedy leaf-first placement; every off-chip bucket
        // is rewritten in full (Z slots) regardless of how many real
        // blocks it received.
        for lvl in (0..self.cfg.levels).rev() {
            let id = self.geometry.bucket_at(epath, Level(lvl));
            let content = self
                .buckets
                .entry(id)
                .or_insert_with(|| Vec::with_capacity(z as usize));
            let mut placed = 0;
            for c in self.scratch.candidates.iter_mut() {
                if placed == z {
                    break;
                }
                if !c.2 && c.1 >= lvl {
                    c.2 = true;
                    placed += 1;
                    self.stash.remove(c.0);
                    content.push(c.0);
                }
            }
            if lvl >= cached {
                for slot in 0..z {
                    touches.push(SlotTouch::write(id, slot));
                }
            }
        }

        self.stats.evictions += 1;
        AccessPlan::new(OpKind::Eviction, touches, None)
    }

    /// Returns an outcome's buffers to the engine's pools.
    pub fn recycle_outcome(&mut self, outcome: AccessOutcome) {
        let AccessOutcome { mut plans, .. } = outcome;
        for plan in plans.drain(..) {
            let AccessPlan { mut touches, .. } = plan;
            touches.clear();
            self.scratch.touch_lists.push(touches);
        }
        self.scratch.plan_lists.push(plans);
    }

    /// Pre-sizes per-access bookkeeping for `n` further accesses.
    pub fn reserve_accesses(&mut self, n: usize) {
        self.stats.stash_samples.reserve(n);
    }

    /// Snapshot of `(block, path)` position-map entries.
    #[must_use]
    pub fn position_entries(&self) -> Vec<(BlockId, PathId)> {
        self.position_map.entries()
    }

    /// Verifies the block-location invariant and bucket capacities.
    ///
    /// # Panics
    ///
    /// Panics if a mapped block is neither in the stash nor on its path,
    /// or if a bucket holds more than `Z` blocks.
    pub fn check_invariants(&self) {
        for (block, path) in self.position_map.entries() {
            if self.stash.contains(block) {
                continue;
            }
            let found = (0..self.cfg.levels).any(|lvl| {
                let id = self.geometry.bucket_at(path, Level(lvl));
                self.buckets.get(&id).is_some_and(|v| v.contains(&block))
            });
            assert!(found, "{block} lost: not in stash, not on {path}");
        }
        for (id, v) in &self.buckets {
            assert!(
                v.len() <= self.cfg.z as usize,
                "bucket {id} over capacity: {} > {}",
                v.len(),
                self.cfg.z
            );
        }
    }
}

impl ObliviousProtocol for CircuitOram {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Circuit
    }

    fn access(&mut self, block: BlockId) -> AccessOutcome {
        CircuitOram::access(self, block)
    }

    fn recycle_outcome(&mut self, outcome: AccessOutcome) {
        CircuitOram::recycle_outcome(self, outcome);
    }

    fn reserve_accesses(&mut self, n: usize) {
        CircuitOram::reserve_accesses(self, n);
    }

    fn stats(&self) -> &ProtocolStats {
        CircuitOram::stats(self)
    }

    fn stash_len(&self) -> usize {
        CircuitOram::stash_len(self)
    }

    fn stash_peak(&self) -> usize {
        CircuitOram::stash_peak(self)
    }

    fn materialized_buckets(&self) -> usize {
        CircuitOram::materialized_buckets(self)
    }

    fn check_invariants(&self) {
        CircuitOram::check_invariants(self);
    }

    fn position_entries(&self) -> Vec<(BlockId, PathId)> {
        CircuitOram::position_entries(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> RingConfig {
        RingConfig {
            levels: 8,
            z: 4,
            s: 1,
            a: 1,
            y: 1,
            block_bytes: 64,
            stash_capacity: 200,
            tree_top_cached_levels: 0,
        }
    }

    #[test]
    fn access_shape_is_one_read_path_plus_two_evictions() {
        let cfg = test_cfg();
        let mut o = CircuitOram::new(cfg.clone(), 1);
        let out = o.access(BlockId(3));
        assert_eq!(out.plans.len(), 1 + EVICTIONS_PER_ACCESS);
        let off = (cfg.levels - cfg.tree_top_cached_levels) as usize;
        let read = &out.plans[0];
        assert_eq!(read.kind, OpKind::ReadPath);
        assert_eq!(read.reads(), cfg.z as usize * off);
        assert_eq!(read.writes(), 0);
        for ev in &out.plans[1..] {
            assert_eq!(ev.kind, OpKind::Eviction);
            assert_eq!(ev.reads(), cfg.z as usize * off);
            assert_eq!(ev.writes(), cfg.z as usize * off);
        }
    }

    #[test]
    fn tree_top_cache_reduces_traffic() {
        let mut cfg = test_cfg();
        cfg.tree_top_cached_levels = 3;
        let mut o = CircuitOram::new(cfg.clone(), 2);
        let out = o.access(BlockId(1));
        let off = (cfg.levels - 3) as usize;
        assert_eq!(out.plans[0].reads(), cfg.z as usize * off);
    }

    #[test]
    fn blocks_survive_many_accesses() {
        let mut o = CircuitOram::new(test_cfg(), 3);
        for i in 0..500 {
            let out = o.access(BlockId(i % 23));
            o.recycle_outcome(out);
        }
        o.check_invariants();
        for i in 0..23 {
            let out = o.access(BlockId(i));
            // Every block is locatable: in stash, or found on its path.
            assert!(!matches!(out.source, TargetSource::New), "block {i} lost");
            o.recycle_outcome(out);
        }
        o.check_invariants();
    }

    #[test]
    fn stash_stays_bounded_under_uniform_load() {
        let mut o = CircuitOram::new(test_cfg(), 4);
        for i in 0..2000 {
            let out = o.access(BlockId(i % 100));
            o.recycle_outcome(out);
        }
        // Circuit ORAM's claim: two deterministic evictions per access
        // keep the stash constant-bounded w.h.p.
        assert!(
            o.stash_peak() < 50,
            "stash peak {} unexpectedly large",
            o.stash_peak()
        );
    }

    #[test]
    fn evictions_follow_reverse_lexicographic_order() {
        let cfg = test_cfg();
        let mut o = CircuitOram::new(cfg.clone(), 5);
        let out = o.access(BlockId(1));
        // First eviction pass uses G = 0, second G = 1: their leaf buckets
        // are the reverse-lexicographic paths 0 and 1. Reads run root→leaf,
        // so the last read touch is the leaf bucket.
        let g = TreeGeometry::new(cfg.levels);
        let leaf_of = |plan: &AccessPlan| plan.touches[plan.reads() - 1].bucket;
        assert_eq!(
            leaf_of(&out.plans[1]),
            g.bucket_at(g.reverse_lexicographic_path(0), Level(cfg.levels - 1))
        );
        assert_eq!(
            leaf_of(&out.plans[2]),
            g.bucket_at(g.reverse_lexicographic_path(1), Level(cfg.levels - 1))
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut o = CircuitOram::new(test_cfg(), 6);
        let a = o.access(BlockId(1));
        assert_eq!(a.source, TargetSource::New);
        o.recycle_outcome(a);
        let b = o.access(BlockId(1));
        assert!(!matches!(b.source, TargetSource::New));
        o.recycle_outcome(b);
        assert_eq!(o.stats().read_paths, 2);
        assert_eq!(o.stats().evictions, 2 * EVICTIONS_PER_ACCESS as u64);
        assert_eq!(o.stats().new_blocks, 1);
        assert_eq!(o.stats().stash_samples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exactly Z slots")]
    fn rejects_dummy_budget_configs() {
        // A Ring-shaped config (S > Y) has bucket_slots > Z.
        let _ = CircuitOram::new(RingConfig::test_small(), 1);
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let mut o = CircuitOram::new(test_cfg(), 7);
        let out = o.access(BlockId(1));
        o.recycle_outcome(out);
        assert_eq!(o.scratch.plan_lists.len(), 1);
        assert_eq!(o.scratch.touch_lists.len(), 1 + EVICTIONS_PER_ACCESS);
    }
}
