//! Ring ORAM / String ORAM configuration.

/// Parameters of a Ring ORAM instance, including the String ORAM Compact
/// Bucket (CB) extension.
///
/// Terminology follows the paper:
///
/// * `levels` — total tree levels `L + 1` (root at level 0, leaves at `L`);
/// * `z` — real-block slots per bucket;
/// * `s` — *logical* dummy budget per bucket: a bucket may be touched `s`
///   times between shuffles;
/// * `a` — eviction frequency: one eviction per `a` read-path operations;
/// * `y` — CB rate: up to `y` of the `s` dummy accesses may be served by
///   real ("green") blocks, so only `s - y` physical dummy slots exist.
///   `y = 0` is exactly baseline Ring ORAM.
///
/// # Examples
///
/// ```
/// use ring_oram::config::RingConfig;
///
/// let cfg = RingConfig::hpca_default();
/// assert_eq!((cfg.z, cfg.s, cfg.a, cfg.y), (8, 12, 8, 8));
/// assert_eq!(cfg.bucket_slots(), 12); // 8 real + (12 - 8) dummy slots
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingConfig {
    /// Total number of tree levels (`L + 1`).
    pub levels: u32,
    /// Real-block slots per bucket (`Z`).
    pub z: u32,
    /// Logical dummy budget per bucket (`S`).
    pub s: u32,
    /// Read-path operations between evictions (`A`).
    pub a: u32,
    /// Compact-Bucket rate (`Y`): real blocks usable as dummies per bucket.
    pub y: u32,
    /// Data block size in bytes (one cache line in the paper).
    pub block_bytes: u32,
    /// Stash capacity in blocks; reaching it triggers background eviction.
    pub stash_capacity: usize,
    /// Number of top tree levels held on-chip (no DRAM traffic).
    pub tree_top_cached_levels: u32,
}

impl RingConfig {
    /// The paper's Table III default: `L+1 = 24`, `Z = 8`, `S = 12`,
    /// `A = 8`, `Y = 8`, 64 B blocks, stash of 500, 6 cached tree-top
    /// levels. (Table III's "Binary Tree Levels (L+1): 24" matches the
    /// `L = 23` used throughout the space analysis.)
    #[must_use]
    pub fn hpca_default() -> Self {
        Self {
            levels: 24,
            z: 8,
            s: 12,
            a: 8,
            y: 8,
            block_bytes: 64,
            stash_capacity: 500,
            tree_top_cached_levels: 6,
        }
    }

    /// Baseline Ring ORAM (the paper's comparison point): the default
    /// configuration with the Compact Bucket disabled (`Y = 0`).
    #[must_use]
    pub fn hpca_baseline() -> Self {
        Self {
            y: 0,
            ..Self::hpca_default()
        }
    }

    /// The four bandwidth-optimal `(Z, A, S)` triples of the paper's Fig. 4
    /// (`S = A + X`): Config-1 = (4, 3, 5), Config-2 = (8, 8, 12),
    /// Config-3 = (16, 20, 27), Config-4 = (32, 46, 58). All with `Y = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `1..=4`.
    #[must_use]
    pub fn fig4_config(index: u32) -> Self {
        let (z, a, s) = match index {
            1 => (4, 3, 5),
            2 => (8, 8, 12),
            3 => (16, 20, 27),
            4 => (32, 46, 58),
            other => panic!("Fig. 4 defines configs 1..=4, got {other}"),
        };
        Self {
            levels: 24,
            z,
            s,
            a,
            y: 0,
            block_bytes: 64,
            stash_capacity: 500,
            tree_top_cached_levels: 6,
        }
    }

    /// The CB sensitivity configurations of the paper's Table V /
    /// Fig. 13: the default `(Z=8, S=12, A=8)` tree with
    /// `Y = 0, 2, 4, 6, 8` for Baseline and Config-1..4 respectively.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `0..=4` (0 = baseline).
    #[must_use]
    pub fn table5_config(index: u32) -> Self {
        assert!(index <= 4, "Table V defines configs 0..=4, got {index}");
        Self {
            y: index * 2,
            ..Self::hpca_baseline()
        }
    }

    /// A small configuration for fast unit tests: 8 levels, `Z=4, S=4, A=3,
    /// Y=0`, tiny stash, no tree-top cache.
    #[must_use]
    pub fn test_small() -> Self {
        Self {
            levels: 8,
            z: 4,
            s: 4,
            a: 3,
            y: 0,
            block_bytes: 64,
            stash_capacity: 200,
            tree_top_cached_levels: 0,
        }
    }

    /// [`Self::test_small`] with the Compact Bucket enabled (`Y = 2`).
    #[must_use]
    pub fn test_small_cb() -> Self {
        Self {
            y: 2,
            ..Self::test_small()
        }
    }

    /// The deepest level index `L`.
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.levels - 1
    }

    /// Number of leaves, i.e. distinct paths (`2^L`).
    #[must_use]
    pub fn leaf_count(&self) -> u64 {
        1u64 << self.max_level()
    }

    /// Total buckets in the tree (`2^(L+1) - 1`).
    #[must_use]
    pub fn bucket_count(&self) -> u64 {
        (1u64 << self.levels) - 1
    }

    /// Physical slots per bucket: `Z + S - Y` (the CB saving is `Y` slots).
    #[must_use]
    pub fn bucket_slots(&self) -> u32 {
        self.z + self.s - self.y
    }

    /// Physical dummy slots per bucket (`S - Y`).
    #[must_use]
    pub fn dummy_slots(&self) -> u32 {
        self.s - self.y
    }

    /// Bytes of one bucket's data slots (metadata is negligible and kept
    /// on-chip in this model, as in the paper's controller).
    #[must_use]
    pub fn bucket_bytes(&self) -> u64 {
        u64::from(self.bucket_slots()) * u64::from(self.block_bytes)
    }

    /// Maximum number of real blocks the tree can store (`Z` per bucket).
    #[must_use]
    pub fn real_capacity_blocks(&self) -> u64 {
        self.bucket_count() * u64::from(self.z)
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint:
    /// `levels >= 1`, `z >= 1`, `s >= 1`, `a >= 1`, `y <= s`, `y <= z`,
    /// nonzero block size and stash, cached levels < total levels.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels == 0 || self.levels > 40 {
            return Err(format!("levels ({}) must be in 1..=40", self.levels));
        }
        if self.z == 0 {
            return Err("z must be nonzero".into());
        }
        if self.s == 0 {
            return Err("s must be nonzero".into());
        }
        if self.a == 0 {
            return Err("a must be nonzero".into());
        }
        if self.y > self.s {
            return Err(format!("y ({}) must not exceed s ({})", self.y, self.s));
        }
        if self.y > self.z {
            return Err(format!(
                "y ({}) must not exceed z ({}): greens are real blocks",
                self.y, self.z
            ));
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be nonzero".into());
        }
        if self.stash_capacity == 0 {
            return Err("stash_capacity must be nonzero".into());
        }
        if self.tree_top_cached_levels >= self.levels {
            return Err(format!(
                "tree_top_cached_levels ({}) must be below levels ({})",
                self.tree_top_cached_levels, self.levels
            ));
        }
        Ok(())
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        Self::hpca_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        RingConfig::hpca_default().validate().unwrap();
        RingConfig::hpca_baseline().validate().unwrap();
        RingConfig::test_small().validate().unwrap();
        RingConfig::test_small_cb().validate().unwrap();
        for i in 1..=4 {
            RingConfig::fig4_config(i).validate().unwrap();
        }
        for i in 0..=4 {
            RingConfig::table5_config(i).validate().unwrap();
        }
    }

    #[test]
    fn default_tree_is_20gb_class() {
        let cfg = RingConfig::hpca_default();
        // (Z + S - Y) * buckets * 64 B with Y=8: 12 * (2^24 - 1) * 64 ~ 12 GiB.
        let total = cfg.bucket_bytes() * cfg.bucket_count();
        assert_eq!(total / (1 << 30), 11); // 11.99... GiB
        let baseline = RingConfig::hpca_baseline();
        let total = baseline.bucket_bytes() * baseline.bucket_count();
        assert_eq!(total / (1 << 30), 19); // 19.99... GiB ~ paper's "20 GB"
    }

    #[test]
    fn bucket_slot_arithmetic() {
        let cfg = RingConfig::hpca_default();
        assert_eq!(cfg.bucket_slots(), 12);
        assert_eq!(cfg.dummy_slots(), 4);
        let base = RingConfig::hpca_baseline();
        assert_eq!(base.bucket_slots(), 20);
        assert_eq!(base.dummy_slots(), 12);
    }

    #[test]
    fn tree_geometry() {
        let cfg = RingConfig::test_small();
        assert_eq!(cfg.max_level(), 7);
        assert_eq!(cfg.leaf_count(), 128);
        assert_eq!(cfg.bucket_count(), 255);
        assert_eq!(cfg.real_capacity_blocks(), 255 * 4);
    }

    #[test]
    fn y_bounds_enforced() {
        let mut cfg = RingConfig::hpca_default();
        cfg.y = cfg.s + 1;
        assert!(cfg.validate().is_err());
        let mut cfg = RingConfig::hpca_default();
        cfg.z = 4;
        cfg.y = 5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cached_levels_bound_enforced() {
        let mut cfg = RingConfig::test_small();
        cfg.tree_top_cached_levels = cfg.levels;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "configs 1..=4")]
    fn fig4_config_range_checked() {
        let _ = RingConfig::fig4_config(5);
    }

    #[test]
    fn table5_y_progression() {
        let ys: Vec<u32> = (0..=4).map(|i| RingConfig::table5_config(i).y).collect();
        assert_eq!(ys, vec![0, 2, 4, 6, 8]);
    }
}
