//! Block (re-)encryption emulation.
//!
//! The paper's controller contains E/D logic: every block leaving the
//! trusted boundary is encrypted with a fresh nonce so that ciphertexts are
//! indistinguishable and rewrites are unlinkable. Two keystreams are
//! available:
//!
//! * [`BlockCipher::new`] — a splitmix64 keystream: **not a secure
//!   cipher**, but fast; fine for timing simulations that only need the
//!   data path exercised.
//! * [`BlockCipher::aes`] — AES-128 in CTR mode ([`crate::aes`], verified
//!   against FIPS-197/SP 800-38A vectors): a real cipher, though the
//!   implementation is not constant-time and no integrity tag is added,
//!   so it is still simulation-grade rather than production-grade.

use crate::aes::Aes128;

/// Keystream selector.
#[derive(Debug, Clone)]
enum Keystream {
    /// splitmix64-based toy keystream.
    Splitmix(u64),
    /// AES-128-CTR.
    Aes(Box<Aes128>),
}

/// A keystream cipher for ciphertext-at-rest emulation.
///
/// # Examples
///
/// ```
/// use ring_oram::crypto::BlockCipher;
///
/// let cipher = BlockCipher::new(0xC0FFEE);
/// let plain = *b"sixteen byte msg";
/// let ct = cipher.seal(7, &plain);
/// assert_ne!(&ct[BlockCipher::NONCE_BYTES..], &plain);
/// assert_eq!(cipher.open(&ct).unwrap(), plain.to_vec());
/// ```
#[derive(Debug, Clone)]
pub struct BlockCipher {
    keystream: Keystream,
}

/// Error returned when a ciphertext is too short to carry its nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MalformedCiphertext;

impl std::fmt::Display for MalformedCiphertext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ciphertext shorter than its nonce header")
    }
}

impl std::error::Error for MalformedCiphertext {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BlockCipher {
    /// Bytes of nonce prepended to every sealed block.
    pub const NONCE_BYTES: usize = 8;

    /// Creates a fast (insecure) splitmix64 keystream cipher.
    #[must_use]
    pub fn new(key: u64) -> Self {
        Self {
            keystream: Keystream::Splitmix(key),
        }
    }

    /// Creates an AES-128-CTR cipher (see the module docs for caveats).
    #[must_use]
    pub fn aes(key: [u8; 16]) -> Self {
        Self {
            keystream: Keystream::Aes(Box::new(Aes128::new(key))),
        }
    }

    fn keystream_xor(&self, nonce: u64, data: &mut [u8]) {
        match &self.keystream {
            Keystream::Splitmix(key) => {
                let mut state = key ^ nonce.rotate_left(17);
                let mut i = 0;
                while i < data.len() {
                    let word = splitmix64(&mut state).to_le_bytes();
                    for b in word {
                        if i >= data.len() {
                            break;
                        }
                        data[i] ^= b;
                        i += 1;
                    }
                }
            }
            Keystream::Aes(aes) => aes.ctr_xor(nonce, data),
        }
    }

    /// Encrypts `plaintext` under the given `nonce`, producing
    /// `nonce || ciphertext`. Fresh nonces make repeated writes of the same
    /// content unlinkable — the property ORAM re-encryption relies on.
    #[must_use]
    pub fn seal(&self, nonce: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::NONCE_BYTES + plaintext.len());
        out.extend_from_slice(&nonce.to_le_bytes());
        out.extend_from_slice(plaintext);
        self.keystream_xor(nonce, &mut out[Self::NONCE_BYTES..]);
        out
    }

    /// Decrypts a `nonce || ciphertext` blob produced by [`Self::seal`].
    ///
    /// # Errors
    ///
    /// [`MalformedCiphertext`] if the blob is shorter than a nonce.
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, MalformedCiphertext> {
        if sealed.len() < Self::NONCE_BYTES {
            return Err(MalformedCiphertext);
        }
        let nonce = u64::from_le_bytes(
            sealed[..Self::NONCE_BYTES]
                .try_into()
                .expect("checked length"),
        );
        let mut out = sealed[Self::NONCE_BYTES..].to_vec();
        self.keystream_xor(nonce, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = BlockCipher::new(42);
        let data = vec![7u8; 64];
        let sealed = c.seal(1, &data);
        assert_eq!(c.open(&sealed).unwrap(), data);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let c = BlockCipher::new(42);
        let data = vec![0u8; 64];
        let sealed = c.seal(9, &data);
        assert_ne!(&sealed[BlockCipher::NONCE_BYTES..], data.as_slice());
    }

    #[test]
    fn fresh_nonce_unlinkability() {
        // The same plaintext sealed twice with different nonces must yield
        // different ciphertexts (ORAM rewrites are unlinkable).
        let c = BlockCipher::new(42);
        let data = vec![5u8; 64];
        let a = c.seal(1, &data);
        let b = c.seal(2, &data);
        assert_ne!(a[BlockCipher::NONCE_BYTES..], b[BlockCipher::NONCE_BYTES..]);
        assert_eq!(c.open(&a).unwrap(), c.open(&b).unwrap());
    }

    #[test]
    fn wrong_key_garbles() {
        let c1 = BlockCipher::new(1);
        let c2 = BlockCipher::new(2);
        let data = vec![3u8; 32];
        let sealed = c1.seal(7, &data);
        assert_ne!(c2.open(&sealed).unwrap(), data);
    }

    #[test]
    fn short_blob_rejected() {
        let c = BlockCipher::new(1);
        assert_eq!(c.open(&[1, 2, 3]), Err(MalformedCiphertext));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let c = BlockCipher::new(1);
        let sealed = c.seal(0, &[]);
        assert_eq!(sealed.len(), BlockCipher::NONCE_BYTES);
        assert_eq!(c.open(&sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn aes_mode_roundtrip_and_unlinkability() {
        let c = BlockCipher::aes([9u8; 16]);
        let data = vec![5u8; 64];
        let a = c.seal(1, &data);
        let b = c.seal(2, &data);
        assert_eq!(c.open(&a).unwrap(), data);
        assert_eq!(c.open(&b).unwrap(), data);
        assert_ne!(a[BlockCipher::NONCE_BYTES..], b[BlockCipher::NONCE_BYTES..]);
        assert_ne!(&a[BlockCipher::NONCE_BYTES..], data.as_slice());
    }

    #[test]
    fn aes_and_splitmix_interoperate_via_nonce_header() {
        // Both modes share the wire format; a blob opens under the cipher
        // that sealed it (and garbles under the other, as expected).
        let toy = BlockCipher::new(1);
        let aes = BlockCipher::aes([1u8; 16]);
        let data = vec![7u8; 32];
        let sealed = aes.seal(3, &data);
        assert_eq!(aes.open(&sealed).unwrap(), data);
        assert_ne!(toy.open(&sealed).unwrap(), data);
    }

    #[test]
    fn keystream_covers_odd_lengths() {
        let c = BlockCipher::new(77);
        for len in [1usize, 7, 8, 9, 63, 64, 65] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert_eq!(c.open(&c.seal(len as u64, &data)).unwrap(), data);
        }
    }
}
