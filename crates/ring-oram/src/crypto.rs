//! Block (re-)encryption emulation with integrity tags.
//!
//! The paper's controller contains E/D logic: every block leaving the
//! trusted boundary is encrypted with a fresh nonce so that ciphertexts are
//! indistinguishable and rewrites are unlinkable. Two keystreams are
//! available:
//!
//! * [`BlockCipher::new`] — a splitmix64 keystream: **not a secure
//!   cipher**, but fast; fine for timing simulations that only need the
//!   data path exercised.
//! * [`BlockCipher::aes`] — AES-128 in CTR mode ([`crate::aes`], verified
//!   against FIPS-197/SP 800-38A vectors): a real cipher, though the
//!   implementation is not constant-time, so it is still simulation-grade
//!   rather than production-grade.
//!
//! Every sealed blob carries a keyed integrity tag over the nonce and
//! ciphertext (`nonce || ciphertext || tag`), so corruption of a fetched
//! block — including the deterministic bit flips the fault-injection layer
//! produces — is detected at [`BlockCipher::open`] as
//! [`OpenError::TagMismatch`]. The tag is a keyed splitmix64 fold whose key
//! is derived from the keystream under a tweaked nonce: it detects any
//! accidental or injected corruption deterministically, but it is *not* a
//! cryptographic MAC (no existential-unforgeability claim), matching the
//! simulation-grade cipher it protects.

use crate::aes::Aes128;

/// Keystream selector.
#[derive(Debug, Clone)]
enum Keystream {
    /// splitmix64-based toy keystream.
    Splitmix(u64),
    /// AES-128-CTR.
    Aes(Box<Aes128>),
}

/// A keystream cipher for ciphertext-at-rest emulation.
///
/// # Examples
///
/// ```
/// use ring_oram::crypto::BlockCipher;
///
/// let cipher = BlockCipher::new(0xC0FFEE);
/// let plain = *b"sixteen byte msg";
/// let ct = cipher.seal(7, &plain);
/// assert_ne!(&ct[BlockCipher::NONCE_BYTES..][..plain.len()], &plain);
/// assert_eq!(cipher.open(&ct).unwrap(), plain.to_vec());
/// ```
#[derive(Debug, Clone)]
pub struct BlockCipher {
    keystream: Keystream,
}

/// Error returned when a sealed blob fails to open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// The blob is too short to carry its nonce header and integrity tag.
    Truncated,
    /// The integrity tag does not match the ciphertext: the blob was
    /// corrupted in transit/at rest, or sealed under a different key.
    TagMismatch,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "ciphertext shorter than its nonce header and tag"),
            Self::TagMismatch => write!(f, "ciphertext integrity tag mismatch"),
        }
    }
}

impl std::error::Error for OpenError {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BlockCipher {
    /// Bytes of nonce prepended to every sealed block.
    pub const NONCE_BYTES: usize = 8;

    /// Bytes of keyed integrity tag appended to every sealed block.
    pub const TAG_BYTES: usize = 8;

    /// Nonce tweak separating the tag-key derivation from data keystreams.
    const TAG_TWEAK: u64 = 0x7461_675F_6465_7269; // "tag_deri"

    /// Creates a fast (insecure) splitmix64 keystream cipher.
    #[must_use]
    pub fn new(key: u64) -> Self {
        Self {
            keystream: Keystream::Splitmix(key),
        }
    }

    /// Creates an AES-128-CTR cipher (see the module docs for caveats).
    #[must_use]
    pub fn aes(key: [u8; 16]) -> Self {
        Self {
            keystream: Keystream::Aes(Box::new(Aes128::new(key))),
        }
    }

    fn keystream_xor(&self, nonce: u64, data: &mut [u8]) {
        match &self.keystream {
            Keystream::Splitmix(key) => {
                let mut state = key ^ nonce.rotate_left(17);
                let mut i = 0;
                while i < data.len() {
                    let word = splitmix64(&mut state).to_le_bytes();
                    for b in word {
                        if i >= data.len() {
                            break;
                        }
                        data[i] ^= b;
                        i += 1;
                    }
                }
            }
            Keystream::Aes(aes) => aes.ctr_xor(nonce, data),
        }
    }

    /// Keyed integrity tag over `nonce || ciphertext`. The per-nonce tag key
    /// comes from the keystream itself (under a tweaked nonce), so both
    /// keystream modes share one construction without extra key material.
    fn tag(&self, nonce: u64, ciphertext: &[u8]) -> [u8; Self::TAG_BYTES] {
        let mut key = [0u8; Self::TAG_BYTES];
        self.keystream_xor(nonce ^ Self::TAG_TWEAK, &mut key);
        let mut state = u64::from_le_bytes(key) ^ nonce ^ (ciphertext.len() as u64);
        let mut acc = splitmix64(&mut state);
        for chunk in ciphertext.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state ^= u64::from_le_bytes(word);
            acc ^= splitmix64(&mut state);
        }
        acc.to_le_bytes()
    }

    /// Length of the sealed blob produced for a `plain_len`-byte payload.
    #[must_use]
    pub const fn sealed_len(plain_len: usize) -> usize {
        Self::NONCE_BYTES + plain_len + Self::TAG_BYTES
    }

    /// Encrypts `plaintext` under the given `nonce`, producing
    /// `nonce || ciphertext || tag`. Fresh nonces make repeated writes of
    /// the same content unlinkable — the property ORAM re-encryption relies
    /// on — and the tag lets [`Self::open`] detect corruption.
    #[must_use]
    pub fn seal(&self, nonce: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; Self::sealed_len(plaintext.len())];
        self.seal_into(nonce, plaintext, &mut out);
        out
    }

    /// Allocation-free [`Self::seal`]: writes `nonce || ciphertext || tag`
    /// into a caller-provided buffer. The buffer must be exactly
    /// [`Self::sealed_len`]`(plaintext.len())` bytes — ORAM blocks are
    /// fixed-size, so callers recycle one buffer per slot.
    ///
    /// # Panics
    ///
    /// If `out.len() != Self::sealed_len(plaintext.len())`.
    pub fn seal_into(&self, nonce: u64, plaintext: &[u8], out: &mut [u8]) {
        assert_eq!(
            out.len(),
            Self::sealed_len(plaintext.len()),
            "sealed buffer must be nonce + payload + tag sized"
        );
        out[..Self::NONCE_BYTES].copy_from_slice(&nonce.to_le_bytes());
        let (body, tag_slot) = out[Self::NONCE_BYTES..].split_at_mut(plaintext.len());
        body.copy_from_slice(plaintext);
        self.keystream_xor(nonce, body);
        let tag = self.tag(nonce, body);
        tag_slot.copy_from_slice(&tag);
    }

    /// Seals a contiguous batch of equal-shaped payloads under consecutive
    /// nonces starting at `first_nonce`, one `(plaintext, out)` pair per
    /// slot. The cipher state (expanded round keys, shared S-box, tag-key
    /// schedule) is set up once for the whole transaction instead of per
    /// slot, which is how the reshuffle/evict paths reseal a bucket's slots
    /// in one sweep. Returns the nonce following the batch, which the
    /// caller commits back to its nonce counter.
    pub fn seal_batch<'a, I>(&self, first_nonce: u64, jobs: I) -> u64
    where
        I: IntoIterator<Item = (&'a [u8], &'a mut [u8])>,
    {
        let mut nonce = first_nonce;
        for (plaintext, out) in jobs {
            self.seal_into(nonce, plaintext, out);
            nonce = nonce.wrapping_add(1);
        }
        nonce
    }

    /// Decrypts a `nonce || ciphertext || tag` blob produced by
    /// [`Self::seal`], verifying the integrity tag first.
    ///
    /// # Errors
    ///
    /// [`OpenError::Truncated`] if the blob cannot carry a nonce and tag;
    /// [`OpenError::TagMismatch`] if the tag fails to verify (corruption or
    /// wrong key).
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, OpenError> {
        let mut out = vec![
            0u8;
            sealed
                .len()
                .saturating_sub(Self::NONCE_BYTES + Self::TAG_BYTES)
        ];
        self.open_into(sealed, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Self::open`]: verifies the tag and decrypts into a
    /// caller-provided buffer of exactly `sealed.len() - NONCE_BYTES -
    /// TAG_BYTES` bytes.
    ///
    /// # Errors
    ///
    /// Same as [`Self::open`]; on error `out` is left untouched.
    ///
    /// # Panics
    ///
    /// If the blob is long enough but `out` is not exactly payload-sized.
    pub fn open_into(&self, sealed: &[u8], out: &mut [u8]) -> Result<(), OpenError> {
        if sealed.len() < Self::NONCE_BYTES + Self::TAG_BYTES {
            return Err(OpenError::Truncated);
        }
        let nonce = match sealed[..Self::NONCE_BYTES].try_into() {
            Ok(bytes) => u64::from_le_bytes(bytes),
            Err(_) => return Err(OpenError::Truncated),
        };
        let body = &sealed[Self::NONCE_BYTES..sealed.len() - Self::TAG_BYTES];
        let tag = &sealed[sealed.len() - Self::TAG_BYTES..];
        if self.tag(nonce, body) != *tag {
            return Err(OpenError::TagMismatch);
        }
        assert_eq!(out.len(), body.len(), "plaintext buffer must match payload");
        out.copy_from_slice(body);
        self.keystream_xor(nonce, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = BlockCipher::new(42);
        let data = vec![7u8; 64];
        let sealed = c.seal(1, &data);
        assert_eq!(c.open(&sealed).unwrap(), data);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let c = BlockCipher::new(42);
        let data = vec![0u8; 64];
        let sealed = c.seal(9, &data);
        assert_eq!(
            sealed.len(),
            BlockCipher::NONCE_BYTES + data.len() + BlockCipher::TAG_BYTES
        );
        assert_ne!(
            &sealed[BlockCipher::NONCE_BYTES..][..data.len()],
            data.as_slice()
        );
    }

    #[test]
    fn fresh_nonce_unlinkability() {
        // The same plaintext sealed twice with different nonces must yield
        // different ciphertexts (ORAM rewrites are unlinkable).
        let c = BlockCipher::new(42);
        let data = vec![5u8; 64];
        let a = c.seal(1, &data);
        let b = c.seal(2, &data);
        assert_ne!(a[BlockCipher::NONCE_BYTES..], b[BlockCipher::NONCE_BYTES..]);
        assert_eq!(c.open(&a).unwrap(), c.open(&b).unwrap());
    }

    #[test]
    fn wrong_key_fails_the_tag() {
        let c1 = BlockCipher::new(1);
        let c2 = BlockCipher::new(2);
        let data = vec![3u8; 32];
        let sealed = c1.seal(7, &data);
        assert_eq!(c2.open(&sealed), Err(OpenError::TagMismatch));
    }

    #[test]
    fn short_blob_rejected() {
        let c = BlockCipher::new(1);
        assert_eq!(c.open(&[1, 2, 3]), Err(OpenError::Truncated));
        // A bare nonce with no room for the tag is also truncated.
        assert_eq!(c.open(&[0u8; 8]), Err(OpenError::Truncated));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let c = BlockCipher::new(1);
        let sealed = c.seal(0, &[]);
        assert_eq!(
            sealed.len(),
            BlockCipher::NONCE_BYTES + BlockCipher::TAG_BYTES
        );
        assert_eq!(c.open(&sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bit_flips_are_detected() {
        // Any single-bit flip anywhere in the blob — nonce, ciphertext or
        // tag — must trip the integrity check (the fault-injection layer's
        // detection guarantee).
        for cipher in [BlockCipher::new(5), BlockCipher::aes([5u8; 16])] {
            let data = vec![0xA5u8; 48];
            let sealed = cipher.seal(11, &data);
            for byte in 0..sealed.len() {
                for bit in 0..8 {
                    let mut corrupt = sealed.clone();
                    corrupt[byte] ^= 1 << bit;
                    assert_eq!(
                        cipher.open(&corrupt),
                        Err(OpenError::TagMismatch),
                        "flip at byte {byte} bit {bit} went undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn aes_mode_roundtrip_and_unlinkability() {
        let c = BlockCipher::aes([9u8; 16]);
        let data = vec![5u8; 64];
        let a = c.seal(1, &data);
        let b = c.seal(2, &data);
        assert_eq!(c.open(&a).unwrap(), data);
        assert_eq!(c.open(&b).unwrap(), data);
        assert_ne!(a[BlockCipher::NONCE_BYTES..], b[BlockCipher::NONCE_BYTES..]);
        assert_ne!(
            &a[BlockCipher::NONCE_BYTES..][..data.len()],
            data.as_slice()
        );
    }

    #[test]
    fn aes_and_splitmix_interoperate_via_nonce_header() {
        // Both modes share the wire format; a blob opens under the cipher
        // that sealed it and fails the tag under the other.
        let toy = BlockCipher::new(1);
        let aes = BlockCipher::aes([1u8; 16]);
        let data = vec![7u8; 32];
        let sealed = aes.seal(3, &data);
        assert_eq!(aes.open(&sealed).unwrap(), data);
        assert_eq!(toy.open(&sealed), Err(OpenError::TagMismatch));
    }

    #[test]
    fn seal_into_matches_seal_and_open_into_matches_open() {
        // The in-place pair must be byte-identical to the allocating pair
        // for both keystream modes: the protocol's pooled buffers rely on
        // wire-format equivalence.
        for cipher in [BlockCipher::new(42), BlockCipher::aes([3u8; 16])] {
            let data: Vec<u8> = (0..64u8).collect();
            let sealed = cipher.seal(9, &data);
            let mut sealed_into = vec![0u8; BlockCipher::sealed_len(data.len())];
            cipher.seal_into(9, &data, &mut sealed_into);
            assert_eq!(sealed, sealed_into);

            let mut plain = vec![0u8; data.len()];
            cipher.open_into(&sealed_into, &mut plain).unwrap();
            assert_eq!(plain, data);
            assert_eq!(cipher.open(&sealed).unwrap(), plain);
        }
    }

    #[test]
    fn open_into_leaves_buffer_untouched_on_error() {
        let c = BlockCipher::new(7);
        let mut sealed = c.seal(1, &[4u8; 32]);
        sealed[10] ^= 1;
        let mut out = vec![0xEEu8; 32];
        assert_eq!(c.open_into(&sealed, &mut out), Err(OpenError::TagMismatch));
        assert!(out.iter().all(|&b| b == 0xEE));
        assert_eq!(c.open_into(&[1, 2, 3], &mut []), Err(OpenError::Truncated));
    }

    #[test]
    fn seal_batch_matches_sequential_seals() {
        // Batched sealing is a pure restructuring: consecutive nonces, same
        // blobs as one seal call per slot, and it reports the follow-on
        // nonce so the caller's counter stays in sync.
        for cipher in [BlockCipher::new(11), BlockCipher::aes([8u8; 16])] {
            let slots: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 48]).collect();
            let expected: Vec<Vec<u8>> = slots
                .iter()
                .enumerate()
                .map(|(i, s)| cipher.seal(100 + i as u64, s))
                .collect();

            let mut outs = vec![vec![0u8; BlockCipher::sealed_len(48)]; slots.len()];
            let next = cipher.seal_batch(
                100,
                slots
                    .iter()
                    .map(Vec::as_slice)
                    .zip(outs.iter_mut().map(Vec::as_mut_slice)),
            );
            assert_eq!(next, 100 + slots.len() as u64);
            assert_eq!(outs, expected);
        }
    }

    #[test]
    fn keystream_covers_odd_lengths() {
        let c = BlockCipher::new(77);
        for len in [1usize, 7, 8, 9, 63, 64, 65] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert_eq!(c.open(&c.seal(len as u64, &data)).unwrap(), data);
        }
    }
}
