//! A deterministic, fast hasher for the controller's dense integer keys.
//!
//! The protocol's two hot maps — the lazily materialized bucket tree and the
//! position map — are keyed by newtyped `u64`s and sit on the per-touch hot
//! path, where `std`'s default SipHash costs more than the table probe it
//! guards. This hasher finalizes each written word with a SplitMix64-style
//! mixer: strong enough avalanche for hashbrown's low-bits index / high-bits
//! tag split, a handful of arithmetic ops per key, and — unlike
//! `RandomState` — no per-process seed, so map layout is reproducible
//! run-to-run (the simulator never depends on iteration order, but
//! determinism keeps debugging sessions comparable).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher state; see the module docs. Use via [`DetHashMap`].
#[derive(Debug, Default, Clone)]
pub struct DetHasher {
    state: u64,
}

/// SplitMix64 finalizer: full-avalanche mix of one word.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer key parts; not on any hot path.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = mix(self.state ^ v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` over the deterministic fast hasher.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = DetHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn sequential_keys_spread_low_and_high_bits() {
        // hashbrown derives the bucket index from the low bits and the
        // control tag from the high bits; both must vary across the dense
        // sequential ids the protocol uses.
        let mut low = std::collections::HashSet::new();
        let mut high = std::collections::HashSet::new();
        for v in 0..256u64 {
            let mut h = DetHasher::default();
            h.write_u64(v);
            let f = h.finish();
            low.insert(f & 0xff);
            high.insert(f >> 57);
        }
        assert!(low.len() > 128, "low bits collapse: {}", low.len());
        assert!(high.len() > 64, "high bits collapse: {}", high.len());
    }

    #[test]
    fn byte_writes_match_word_writes_for_whole_words() {
        let mut a = DetHasher::default();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = DetHasher::default();
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_basic_operations() {
        let mut m: DetHashMap<u64, &str> = DetHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.remove(&2), Some("b"));
        assert_eq!(m.len(), 1);
    }
}
