//! Deterministic fault events and the protocol's resilience machinery.
//!
//! The fault-injection layer corrupts block transfers *in transit*: the
//! DRAM-resident copy of a sealed block stays intact, so a bounded number
//! of re-reads (retries) can recover it. Every decision is drawn from a
//! dedicated, seeded RNG that never touches the protocol RNG — the access
//! sequence of a faulty run is therefore **identical** to the fault-free
//! run with the same protocol seed; faults perturb latency and add retry
//! traffic at already-public slots, never the data-dependent pattern.
//!
//! [`FaultEvent`]s form an append-only log that the `sim-verify` auditor
//! replays to prove that every injected integrity fault was detected and
//! either recovered within the retry budget or surfaced as a violation.

use crate::types::BucketId;

/// What happened at one fault-injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEventKind {
    /// A block transfer was corrupted in transit.
    Injected,
    /// The corruption was caught by the integrity tag on unseal.
    Detected,
    /// The slot was re-read (one bounded retry).
    Retried,
    /// A retry returned an intact copy; the fetch completed.
    Recovered,
    /// The retry budget was exhausted without an intact copy (or retries
    /// are disabled); the fetched payload is lost.
    Unrecovered,
}

impl FaultEventKind {
    /// Short label used in logs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Injected => "injected",
            Self::Detected => "detected",
            Self::Retried => "retried",
            Self::Recovered => "recovered",
            Self::Unrecovered => "unrecovered",
        }
    }
}

impl std::fmt::Display for FaultEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One entry of the protocol fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Program read path (access index) during which the event occurred;
    /// background dummy paths stamp the access that triggered them.
    pub access: u64,
    /// Bucket whose slot transfer was involved.
    pub bucket: BucketId,
    /// Slot index within the bucket.
    pub slot: u32,
    /// What happened.
    pub kind: FaultEventKind,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at access {} ({} slot {})",
            self.kind, self.access, self.bucket, self.slot
        )
    }
}

/// Configuration of protocol-level fault injection and graceful
/// degradation.
///
/// Watermarks are absolute stash occupancies and must be ordered
/// `resume_watermark < degrade_watermark` and
/// `escalation_watermark <= degrade_watermark <= stash_capacity` (checked
/// by [`ResilienceConfig::validate`] against the ring configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Seed of the dedicated fault RNG (independent of the protocol seed).
    pub fault_seed: u64,
    /// Probability that one real-block fetch is corrupted in transit.
    pub bit_flip_rate: f64,
    /// Re-reads allowed per corrupted fetch; `0` disables recovery and
    /// every injected integrity fault becomes `Unrecovered`.
    pub max_retries: u32,
    /// Stash occupancy at or above which one extra background-eviction
    /// round (dummy reads to `A`, then an eviction) runs per access.
    pub escalation_watermark: usize,
    /// Stash occupancy at or above which CB green-slot substitution is
    /// disabled (degraded mode) until pressure drains.
    pub degrade_watermark: usize,
    /// Stash occupancy at or below which degraded mode ends.
    pub resume_watermark: usize,
}

impl ResilienceConfig {
    /// A conservative default for a stash of the given capacity: escalate
    /// at 60 %, degrade at 80 %, resume below 50 %.
    #[must_use]
    pub fn for_stash(capacity: usize) -> Self {
        Self {
            fault_seed: 0xFA_17,
            bit_flip_rate: 0.0,
            max_retries: 2,
            escalation_watermark: capacity * 6 / 10,
            degrade_watermark: capacity * 8 / 10,
            resume_watermark: capacity / 2,
        }
    }

    /// Checks rates and watermark ordering against a stash capacity.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self, stash_capacity: usize) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.bit_flip_rate) {
            return Err(format!(
                "bit_flip_rate {} outside [0, 1]",
                self.bit_flip_rate
            ));
        }
        if self.degrade_watermark > stash_capacity {
            return Err(format!(
                "degrade_watermark {} above stash capacity {}",
                self.degrade_watermark, stash_capacity
            ));
        }
        if self.escalation_watermark > self.degrade_watermark {
            return Err(format!(
                "escalation_watermark {} above degrade_watermark {}",
                self.escalation_watermark, self.degrade_watermark
            ));
        }
        if self.resume_watermark >= self.degrade_watermark {
            return Err(format!(
                "resume_watermark {} must be below degrade_watermark {}",
                self.resume_watermark, self.degrade_watermark
            ));
        }
        Ok(())
    }
}

/// Structured protocol-level failure taxonomy (replaces library panics on
/// the paths a caller can meaningfully handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OramError {
    /// Background eviction could not drain the stash: the tree is
    /// over-full (program working set plus cold pre-load exceeds the
    /// tree's real capacity) and the protocol cannot make progress.
    StashOverflow {
        /// Stash occupancy when the drain attempt gave up.
        occupancy: usize,
        /// Configured stash capacity.
        capacity: usize,
        /// The tree's real-block capacity.
        real_capacity: u64,
    },
    /// A sealed payload failed its integrity check outside the
    /// fault-injection path: genuine corruption or a key mismatch.
    IntegrityFailure {
        /// Bucket the payload was fetched from.
        bucket: BucketId,
    },
}

impl std::fmt::Display for OramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::StashOverflow {
                occupancy,
                capacity,
                real_capacity,
            } => write!(
                f,
                "background eviction cannot drain the stash (occupancy \
                 {occupancy}, capacity {capacity}): the tree is over-full — \
                 program working set plus cold pre-load must stay below the \
                 tree's real capacity ({real_capacity} blocks)"
            ),
            Self::IntegrityFailure { bucket } => write!(
                f,
                "payload fetched from {bucket} failed its integrity check \
                 outside the injected-fault path"
            ),
        }
    }
}

impl std::error::Error for OramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            FaultEventKind::Injected,
            FaultEventKind::Detected,
            FaultEventKind::Retried,
            FaultEventKind::Recovered,
            FaultEventKind::Unrecovered,
        ]
        .into_iter()
        .map(FaultEventKind::label)
        .collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn default_watermarks_validate() {
        for capacity in [10, 100, 500] {
            ResilienceConfig::for_stash(capacity)
                .validate(capacity)
                .unwrap();
        }
    }

    #[test]
    fn watermark_ordering_enforced() {
        let mut cfg = ResilienceConfig::for_stash(100);
        cfg.resume_watermark = cfg.degrade_watermark;
        assert!(cfg.validate(100).is_err());
        let mut cfg = ResilienceConfig::for_stash(100);
        cfg.degrade_watermark = 101;
        assert!(cfg.validate(100).is_err());
        let mut cfg = ResilienceConfig::for_stash(100);
        cfg.escalation_watermark = cfg.degrade_watermark + 1;
        assert!(cfg.validate(100).is_err());
        let mut cfg = ResilienceConfig::for_stash(100);
        cfg.bit_flip_rate = 1.5;
        assert!(cfg.validate(100).is_err());
    }

    #[test]
    fn errors_render_their_evidence() {
        let e = OramError::StashOverflow {
            occupancy: 512,
            capacity: 500,
            real_capacity: 1 << 20,
        };
        let s = e.to_string();
        assert!(s.contains("512"));
        assert!(s.contains("500"));
        let e = OramError::IntegrityFailure {
            bucket: BucketId(7),
        };
        assert!(e.to_string().contains("b7"));
    }
}
