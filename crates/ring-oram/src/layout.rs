//! Mapping tree buckets to flat physical addresses.
//!
//! The **subtree layout** (Ren et al., adopted by the paper) groups
//! `k` consecutive tree levels into subtrees and stores each subtree's
//! buckets contiguously, sized so one subtree fits the memory system's
//! natural locality window (a DRAM row per channel — with the paper's
//! channel-striped address mapping that window is `row_bytes x channels`).
//! A root-to-leaf path then touches one window per `k` levels instead of a
//! scattered row per bucket.
//!
//! A naive breadth-first layout is provided for the ablation study: it keeps
//! each *level* contiguous, so a path touches a different row at almost
//! every level.

use crate::config::RingConfig;
use crate::tree::TreeGeometry;
use crate::types::BucketId;

/// A placement of `(bucket, slot)` pairs at flat byte addresses.
///
/// Implementations must be injective (no two slots share an address) and
/// keep every address below [`TreeLayout::total_bytes`].
///
/// Layouts are `Send` so a planner owning one can move to a shard worker
/// thread (see `string_oram::pipeline::shard`); they are plain address
/// arithmetic, so this costs implementations nothing.
pub trait TreeLayout: std::fmt::Debug + Send {
    /// Byte address of `slot` within `bucket`.
    fn addr_of(&self, bucket: BucketId, slot: u32) -> u64;

    /// Total bytes of the address range the layout occupies (including
    /// alignment padding).
    fn total_bytes(&self) -> u64;

    /// Levels grouped per subtree (1 for layouts without grouping).
    fn levels_per_subtree(&self) -> u32;
}

/// The subtree layout of Ren et al., parameterized by the locality window.
#[derive(Debug, Clone)]
pub struct SubtreeLayout {
    geometry: TreeGeometry,
    bucket_bytes: u64,
    block_bytes: u64,
    /// Levels per subtree (`k`).
    k: u32,
    /// Padded byte size of one subtree slot.
    subtree_slot_bytes: u64,
    /// Total number of subtree instances.
    total_subtrees: u64,
    /// Per-level constants so the hot [`TreeLayout::addr_of`] needs no
    /// division: `lut[level]` folds the level's group membership into
    /// shift/mask form.
    lut: Vec<LevelLut>,
}

/// Per-level address constants: everything `addr_of` needs once the
/// bucket's level is known.
#[derive(Debug, Clone, Copy)]
struct LevelLut {
    /// First bucket id of the level: `2^level - 1`.
    level_base: u64,
    /// Subtree instances in all preceding groups (`group_prefix[level/k]`).
    group_base: u64,
    /// Depth of the level inside its group: `level - (level/k)*k`. Shifting
    /// a position-in-level right by this yields the subtree root position;
    /// masking by `2^depth - 1` yields the local path.
    depth: u32,
}

impl SubtreeLayout {
    /// Builds a subtree layout for `cfg`'s tree inside a locality window of
    /// `locality_bytes` (the row-set size: DRAM row bytes times channels
    /// under the paper's striped mapping).
    ///
    /// Each subtree slot is padded to the next power of two, which keeps
    /// slots aligned so no subtree ever straddles a window boundary. The
    /// group height `k` is chosen to maximize `k x packing-efficiency`
    /// among all `k` whose padded slot fits the window — balancing fewer
    /// windows per path (larger `k`) against padding waste (`(2^k - 1)`
    /// buckets never fill a power-of-two slot exactly).
    ///
    /// # Panics
    ///
    /// Panics if `locality_bytes` is zero or `cfg` fails validation.
    #[must_use]
    pub fn new(cfg: &RingConfig, locality_bytes: u64) -> Self {
        assert!(locality_bytes > 0, "locality_bytes must be nonzero");
        if let Err(e) = cfg.validate() {
            panic!("invalid RingConfig: {e}");
        }
        let geometry = TreeGeometry::new(cfg.levels);
        let bucket_bytes = cfg.bucket_bytes();
        let mut best: Option<(u32, u64, f64)> = None; // (k, padded, score)
        for k in 1..=cfg.levels {
            let raw = ((1u64 << k) - 1).saturating_mul(bucket_bytes);
            let padded = raw.next_power_of_two();
            if padded > locality_bytes {
                break;
            }
            let efficiency = raw as f64 / padded as f64;
            let score = f64::from(k) * efficiency;
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((k, padded, score));
            }
        }
        let (k, subtree_slot_bytes, _) = best.unwrap_or_else(|| {
            // A single bucket exceeds the window: fall back to k = 1 with
            // bucket-granular power-of-two slots.
            (1, bucket_bytes.next_power_of_two(), 0.0)
        });

        let groups = cfg.levels.div_ceil(k);
        let mut group_prefix = Vec::with_capacity(groups as usize + 1);
        let mut total: u64 = 0;
        for g in 0..groups {
            group_prefix.push(total);
            total += 1u64 << (g * k);
        }
        group_prefix.push(total);
        let lut = (0..cfg.levels)
            .map(|level| LevelLut {
                level_base: (1u64 << level) - 1,
                group_base: group_prefix[(level / k) as usize],
                depth: level - (level / k) * k,
            })
            .collect();
        Self {
            geometry,
            bucket_bytes,
            block_bytes: u64::from(cfg.block_bytes),
            k,
            subtree_slot_bytes,
            total_subtrees: total,
            lut,
        }
    }

    /// Index of the subtree instance containing `bucket` (0-based, in
    /// group-major breadth-first order).
    #[must_use]
    pub fn subtree_index(&self, bucket: BucketId) -> u64 {
        let l = self.lut[self.geometry.level_of(bucket).0 as usize];
        l.group_base + ((bucket.0 - l.level_base) >> l.depth)
    }

    /// Index of `bucket` inside its subtree (local breadth-first order).
    #[must_use]
    pub fn local_index(&self, bucket: BucketId) -> u64 {
        let l = self.lut[self.geometry.level_of(bucket).0 as usize];
        let mask = (1u64 << l.depth) - 1;
        mask + ((bucket.0 - l.level_base) & mask)
    }
}

impl TreeLayout for SubtreeLayout {
    fn addr_of(&self, bucket: BucketId, slot: u32) -> u64 {
        debug_assert!(bucket.0 < self.geometry.bucket_count(), "bucket range");
        let l = self.lut[self.geometry.level_of(bucket).0 as usize];
        let pos = bucket.0 - l.level_base;
        let mask = (1u64 << l.depth) - 1;
        let subtree = l.group_base + (pos >> l.depth);
        let local = mask + (pos & mask);
        subtree * self.subtree_slot_bytes
            + local * self.bucket_bytes
            + u64::from(slot) * self.block_bytes
    }

    fn total_bytes(&self) -> u64 {
        self.total_subtrees * self.subtree_slot_bytes
    }

    fn levels_per_subtree(&self) -> u32 {
        self.k
    }
}

/// Naive breadth-first layout: bucket `b` at `b * bucket_bytes`. Keeps each
/// level contiguous but scatters a path across the module; the ablation
/// baseline.
#[derive(Debug, Clone)]
pub struct NaiveLayout {
    bucket_count: u64,
    bucket_bytes: u64,
    block_bytes: u64,
}

impl NaiveLayout {
    /// Builds the naive layout for `cfg`'s tree.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    #[must_use]
    pub fn new(cfg: &RingConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid RingConfig: {e}");
        }
        Self {
            bucket_count: cfg.bucket_count(),
            bucket_bytes: cfg.bucket_bytes(),
            block_bytes: u64::from(cfg.block_bytes),
        }
    }
}

impl TreeLayout for NaiveLayout {
    fn addr_of(&self, bucket: BucketId, slot: u32) -> u64 {
        debug_assert!(bucket.0 < self.bucket_count, "bucket range");
        bucket.0 * self.bucket_bytes + u64::from(slot) * self.block_bytes
    }

    fn total_bytes(&self) -> u64 {
        self.bucket_count * self.bucket_bytes
    }

    fn levels_per_subtree(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeGeometry;
    use crate::types::PathId;

    fn cfg() -> RingConfig {
        RingConfig::test_small() // 8 levels, Z=4, S=4, Y=0 -> 8 slots, 512 B
    }

    #[test]
    fn k_matches_locality_window() {
        let c = cfg();
        // Bucket = 512 B. With a 4 KiB window: 2^3 - 1 = 7 buckets = 3.5 KiB
        // fits, 15 buckets = 7.5 KiB does not.
        let l = SubtreeLayout::new(&c, 4096);
        assert_eq!(l.levels_per_subtree(), 3);
        // With a 16 KiB window, 31 buckets = 15.5 KiB fits.
        let l = SubtreeLayout::new(&c, 16384);
        assert_eq!(l.levels_per_subtree(), 5);
    }

    #[test]
    fn hpca_default_grouping() {
        // Paper default: bucket = 12 slots x 64 B = 768 B (Y=8). Four
        // levels (15 buckets = 11.25 KiB in a 16 KiB slot) win the
        // locality-vs-padding tradeoff.
        let c = RingConfig::hpca_default();
        let l = SubtreeLayout::new(&c, 16384);
        assert_eq!(l.levels_per_subtree(), 4);
        // Baseline (Y=0): bucket = 20 x 64 = 1280 B. Three levels would pad
        // 8.75 KiB up to 16 KiB (45 % waste, and a 20 GB tree would no
        // longer fit the 32 GB module); two levels pack 3.75 KiB into 4 KiB.
        let b = RingConfig::hpca_baseline();
        let l = SubtreeLayout::new(&b, 16384);
        assert_eq!(l.levels_per_subtree(), 2);
        // Both trees fit the paper's 32 GB module.
        assert!(SubtreeLayout::new(&c, 16384).total_bytes() <= 32 * (1 << 30));
        assert!(SubtreeLayout::new(&b, 16384).total_bytes() <= 32 * (1 << 30));
    }

    #[test]
    fn addresses_are_unique_and_in_range() {
        let c = cfg();
        let l = SubtreeLayout::new(&c, 4096);
        let mut seen = std::collections::HashSet::new();
        for b in 0..c.bucket_count() {
            for s in 0..c.bucket_slots() {
                let a = l.addr_of(BucketId(b), s);
                assert!(a < l.total_bytes(), "addr {a} out of range");
                assert!(seen.insert(a), "duplicate addr {a}");
            }
        }
    }

    #[test]
    fn slots_within_bucket_are_contiguous() {
        let c = cfg();
        let l = SubtreeLayout::new(&c, 4096);
        let a0 = l.addr_of(BucketId(3), 0);
        let a1 = l.addr_of(BucketId(3), 1);
        assert_eq!(a1 - a0, u64::from(c.block_bytes));
    }

    #[test]
    fn path_touches_one_window_per_group() {
        let c = cfg(); // 8 levels
        let window = 4096;
        let l = SubtreeLayout::new(&c, window);
        let k = l.levels_per_subtree(); // 3
        let g = TreeGeometry::new(c.levels);
        let path = PathId(93);
        let mut windows = Vec::new();
        for b in g.path_buckets(path) {
            windows.push(l.addr_of(b, 0) / window);
        }
        // Levels in the same group share a window.
        for (lvl, w) in windows.iter().enumerate() {
            let group = lvl as u32 / k;
            assert_eq!(
                *w,
                windows[(group * k) as usize],
                "level {lvl} strayed from its group window"
            );
        }
        // Distinct groups use distinct windows.
        let distinct: std::collections::HashSet<_> = windows.iter().collect();
        assert_eq!(distinct.len(), c.levels.div_ceil(k) as usize);
    }

    #[test]
    fn subtree_padding_aligns_windows() {
        let c = cfg();
        let window = 4096;
        let l = SubtreeLayout::new(&c, window);
        for b in [0u64, 1, 7, 100, 254] {
            let a = l.addr_of(BucketId(b), 0);
            let end = l.addr_of(BucketId(b), c.bucket_slots() - 1) + 64;
            assert_eq!(a / window, (end - 1) / window, "bucket {b} straddles");
        }
    }

    #[test]
    fn naive_layout_is_dense_and_unique() {
        let c = cfg();
        let l = NaiveLayout::new(&c);
        assert_eq!(l.total_bytes(), c.bucket_count() * c.bucket_bytes());
        let mut seen = std::collections::HashSet::new();
        for b in 0..c.bucket_count() {
            for s in 0..c.bucket_slots() {
                assert!(seen.insert(l.addr_of(BucketId(b), s)));
            }
        }
        assert_eq!(seen.len() as u64, c.bucket_count() * 8);
    }

    #[test]
    fn total_bytes_includes_padding() {
        let c = cfg();
        let l = SubtreeLayout::new(&c, 4096);
        // 3-level subtrees over 8 levels: groups of sizes 1, 8, 64 subtrees
        // (last group has 2 levels but still one slot each).
        assert_eq!(l.total_bytes(), (1 + 8 + 64) * 4096);
    }

    #[test]
    fn cb_improves_packing_density() {
        // Fewer slots per bucket lets more levels share a window — the
        // secondary spatial benefit of the Compact Bucket.
        let baseline = SubtreeLayout::new(&RingConfig::hpca_baseline(), 16384);
        let cb = SubtreeLayout::new(&RingConfig::hpca_default(), 16384);
        assert!(cb.levels_per_subtree() > baseline.levels_per_subtree());
        assert!(cb.total_bytes() < baseline.total_bytes());
    }
}
