//! # ring-oram — Ring ORAM and String ORAM protocol engine
//!
//! This crate implements the protocol layer of the String ORAM reproduction
//! (HPCA 2021, "Streamline Ring ORAM Accesses through Spatial and Temporal
//! Optimization"):
//!
//! * **Ring ORAM** (Ren et al., USENIX Security'15): buckets of `Z` real +
//!   `S` dummy slots, selective one-block-per-bucket read paths, periodic
//!   evictions in reverse lexicographic order, and early reshuffles —
//!   [`RingOram`];
//! * the paper's **Compact Bucket (CB)** spatial optimization: `Y` of the
//!   `S` dummy accesses served by *green* real blocks, shrinking each bucket
//!   by `Y` slots ([`config::RingConfig::y`]) and shortening evictions;
//! * leakage-free **background eviction** via dummy read paths;
//! * the **subtree layout** address mapping ([`layout::SubtreeLayout`]);
//! * the [`ObliviousProtocol`] trait — the pipeline contract shared by all
//!   protocol engines — with a **Path ORAM** baseline ([`PathOram`]) and a
//!   **Circuit ORAM** implementation ([`CircuitOram`]) alongside the Ring
//!   engine, so the paper's wins are measurable against the design space
//!   they improve on.
//!
//! The protocol layer is *untimed*: every logical access expands into
//! [`plan::AccessPlan`]s — ordered lists of physical slot touches — which
//! the `mem-sched`/`string-oram` crates execute against the `dram-sim`
//! timing model as atomic ORAM transactions.
//!
//! # Example
//!
//! ```
//! use ring_oram::{RingOram, RingConfig};
//! use ring_oram::types::BlockId;
//!
//! let mut oram = RingOram::new(RingConfig::test_small(), 42);
//! let outcome = oram.access(BlockId(7));
//! // A read path touches one block per tree level.
//! let reads: usize = outcome.plans.iter().map(|p| p.reads()).sum();
//! assert!(reads >= oram.config().levels as usize);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::redundant_clone)]
#![warn(clippy::large_enum_variant)]
// Library code must surface failures as values or documented panics, never
// as ad-hoc unwraps; tests are free to unwrap (a panic IS the failure).
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod aes;
pub mod bucket;
pub mod circuit;
pub mod config;
pub mod crypto;
pub mod fasthash;
pub mod faults;
pub mod layout;
pub mod oblivious;
pub mod path_oram;
pub mod plan;
pub mod position_map;
pub mod protocol;
pub mod recursive;
pub mod sharding;
pub mod stash;
pub mod tree;
pub mod types;

pub use circuit::CircuitOram;
pub use config::RingConfig;
pub use faults::{FaultEvent, FaultEventKind, OramError, ResilienceConfig};
pub use oblivious::{ObliviousProtocol, ProtocolKind};
pub use path_oram::{PathConfig, PathOram};
pub use plan::{AccessPlan, OpKind, SlotTouch};
pub use protocol::{AccessOutcome, ProtocolStats, RingOram, TargetSource};
pub use recursive::{RecursiveConfig, RecursiveOram};
pub use sharding::ShardMap;
pub use tree::TreeGeometry;
pub use types::{BlockId, BucketId, FetchKind, Level, PathId};
