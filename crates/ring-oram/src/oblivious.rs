//! The [`ObliviousProtocol`] trait: the pipeline contract every ORAM
//! protocol engine implements.
//!
//! The `string-oram` pipeline never needs to know *which* protocol it is
//! driving. Each stage consumes only three artifacts, and this trait
//! captures exactly that surface:
//!
//! * **plan an access** — position-map lookup expanded into per-level
//!   fetch requests plus any eviction/reshuffle write-backs, returned as
//!   one [`AccessOutcome`] (ordered [`crate::plan::AccessPlan`]s);
//! * **consume fetched blocks into the stash** — implicit in `access`:
//!   the engine owns its stash and exposes occupancy for auditing;
//! * **emit statistics and invariants** — [`ProtocolStats`], fault events,
//!   and a structural self-check.
//!
//! Four engines implement it: [`RingOram`] (serving both the Ring+CB and
//! plain-Ring design points, selected by `RingConfig::y`), the Path ORAM
//! baseline ([`crate::path_oram::PathOram`]) and the Circuit ORAM
//! implementation ([`crate::circuit::CircuitOram`]). A new protocol plugs
//! in by implementing this trait and emitting well-formed plans; the
//! pipeline's lowering, transaction tracking, sharding and digesting all
//! come for free, and `sim-verify` audits the plan stream per
//! [`ProtocolKind`].

use crate::faults::FaultEvent;
use crate::protocol::{AccessOutcome, ProtocolStats, RingOram};
use crate::types::{BlockId, PathId};

/// The protocol design points the simulator can drive.
///
/// `RingCb` and `Ring` share the [`RingOram`] engine (the Compact Bucket
/// is a configuration of it); `Path` and `Circuit` are distinct engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Ring ORAM with the paper's Compact Bucket (`Y > 0`).
    RingCb,
    /// Plain Ring ORAM: CB substitution disabled (`Y` forced to 0).
    Ring,
    /// Path ORAM (Stefanov et al., CCS'13): full-path read + write-back.
    Path,
    /// Circuit ORAM (Wang et al., CCS'15 lineage): selective-remove read
    /// path plus two deterministic reverse-lexicographic evictions per
    /// access.
    Circuit,
}

impl ProtocolKind {
    /// All four protocols in comparison order (the EXPERIMENTS.md table).
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::RingCb,
        ProtocolKind::Ring,
        ProtocolKind::Path,
        ProtocolKind::Circuit,
    ];

    /// Stable label used in reports, bench JSON and CI matrices.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::RingCb => "ring-cb",
            Self::Ring => "ring",
            Self::Path => "path",
            Self::Circuit => "circuit",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The pipeline contract of an ORAM protocol engine.
///
/// An implementor turns logical block accesses into ordered
/// [`crate::plan::AccessPlan`]s (the bus-observable artifact), keeps its
/// own stash/position-map state, and exposes the counters and invariants
/// the pipeline's measurement and verification layers consume.
///
/// Engines are driven single-threaded per instance; `Send` lets the
/// sharded engine move each instance onto its worker thread.
pub trait ObliviousProtocol: std::fmt::Debug + Send {
    /// Which design point this engine instance realizes.
    fn kind(&self) -> ProtocolKind;

    /// Performs one logical access: position-map lookup, per-level fetch
    /// planning, stash update, and any eviction/reshuffle write-backs.
    fn access(&mut self, block: BlockId) -> AccessOutcome;

    /// Returns an outcome's buffers to the engine's pools (the zero-alloc
    /// steady-state loop). Dropping an outcome instead is legal; the pools
    /// then refill lazily.
    fn recycle_outcome(&mut self, outcome: AccessOutcome);

    /// Pre-sizes per-access bookkeeping (e.g. stash-occupancy samples) for
    /// `n` further accesses, so the steady state never grows vectors.
    fn reserve_accesses(&mut self, n: usize);

    /// Drains the engine's fault-event log. Engines without a fault layer
    /// return an empty log (the default).
    fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        Vec::new()
    }

    /// Plans one **cover access**: a padding access that serves no program
    /// request but is indistinguishable on the bus from the engine's
    /// ordinary dummy traffic. Serving layers use it to fill empty
    /// fixed-rate submission slots so request timing cannot leak through
    /// the access stream. Engines without a native dummy-access mechanism
    /// return `None` (the default); callers must then reject padded
    /// submission modes for the protocol. [`RingOram`] supports it.
    fn cover_access(&mut self) -> Option<AccessOutcome> {
        None
    }

    /// Accumulated protocol statistics.
    fn stats(&self) -> &ProtocolStats;

    /// Current stash occupancy.
    fn stash_len(&self) -> usize;

    /// Peak stash occupancy since creation.
    fn stash_peak(&self) -> usize;

    /// Tree buckets materialized so far (buckets are created on first
    /// touch; a fully materialized tree is the zero-alloc steady state).
    fn materialized_buckets(&self) -> usize;

    /// Verifies the engine's structural invariants (tests/debugging).
    ///
    /// # Panics
    ///
    /// Panics when an invariant is broken — e.g. a mapped block neither in
    /// the stash nor on its assigned path, or an over-full bucket.
    fn check_invariants(&self);

    /// Snapshot of `(block, path)` position-map entries, for cross-shard
    /// residency auditing.
    fn position_entries(&self) -> Vec<(BlockId, PathId)>;

    /// Downcast to the Ring engine, for Ring-specific inspection (CB
    /// counters, recursion stacks). `None` for non-Ring protocols.
    fn as_ring(&self) -> Option<&RingOram> {
        None
    }
}

impl ObliviousProtocol for RingOram {
    fn kind(&self) -> ProtocolKind {
        if self.config().y > 0 {
            ProtocolKind::RingCb
        } else {
            ProtocolKind::Ring
        }
    }

    fn access(&mut self, block: BlockId) -> AccessOutcome {
        RingOram::access(self, block)
    }

    fn recycle_outcome(&mut self, outcome: AccessOutcome) {
        RingOram::recycle_outcome(self, outcome);
    }

    fn reserve_accesses(&mut self, n: usize) {
        RingOram::reserve_accesses(self, n);
    }

    fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        RingOram::take_fault_events(self)
    }

    fn cover_access(&mut self) -> Option<AccessOutcome> {
        match RingOram::cover_access(self) {
            Ok(outcome) => Some(outcome),
            Err(e) => panic!("{e}"),
        }
    }

    fn stats(&self) -> &ProtocolStats {
        RingOram::stats(self)
    }

    fn stash_len(&self) -> usize {
        RingOram::stash_len(self)
    }

    fn stash_peak(&self) -> usize {
        RingOram::stash_peak(self)
    }

    fn materialized_buckets(&self) -> usize {
        RingOram::materialized_buckets(self)
    }

    fn check_invariants(&self) {
        RingOram::check_invariants(self);
    }

    fn position_entries(&self) -> Vec<(BlockId, PathId)> {
        RingOram::position_entries(self)
    }

    fn as_ring(&self) -> Option<&RingOram> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: std::collections::HashSet<&str> =
            ProtocolKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
        assert_eq!(ProtocolKind::RingCb.to_string(), "ring-cb");
        assert_eq!(ProtocolKind::Circuit.to_string(), "circuit");
    }

    #[test]
    fn ring_engine_reports_kind_by_cb_configuration() {
        let cb = RingOram::new(RingConfig::test_small_cb(), 1);
        assert_eq!(ObliviousProtocol::kind(&cb), ProtocolKind::RingCb);
        let plain = RingOram::new(RingConfig::test_small(), 1);
        assert_eq!(ObliviousProtocol::kind(&plain), ProtocolKind::Ring);
        assert!(plain.as_ring().is_some());
    }

    #[test]
    fn ring_engine_supports_cover_accesses() {
        let mut oram: Box<dyn ObliviousProtocol> =
            Box::new(RingOram::new(RingConfig::test_small(), 3));
        let out = oram.cover_access().expect("ring supports cover accesses");
        assert!(!out.plans.is_empty());
        assert!(
            !out.served_from_tree(),
            "cover accesses serve no program data"
        );
        oram.recycle_outcome(out);
        assert_eq!(oram.stats().dummy_read_paths, 1);
        oram.check_invariants();
    }

    #[test]
    fn trait_object_drives_the_ring_engine() {
        let mut oram: Box<dyn ObliviousProtocol> =
            Box::new(RingOram::new(RingConfig::test_small(), 3));
        let out = oram.access(BlockId(5));
        assert!(!out.plans.is_empty());
        oram.recycle_outcome(out);
        assert!(oram.take_fault_events().is_empty());
        assert_eq!(oram.stats().read_paths, 1);
        oram.check_invariants();
    }
}
