//! Path ORAM baseline (Stefanov et al., CCS'13).
//!
//! Ring ORAM's headline claim — 2.3–4x lower overall bandwidth and far
//! lower online bandwidth than Path ORAM — is the motivation the paper
//! builds on, so the reproduction carries a compact Path ORAM
//! implementation for the ablation benchmark.
//!
//! Path ORAM is much simpler than Ring ORAM: every access reads *all*
//! `Z` slots of every bucket on the target's path into the stash, remaps
//! the target, and writes the full path back with greedy leaf-first
//! placement. There are no dummy budgets, no metadata counters, no separate
//! eviction phase.

use std::collections::HashMap;

use oram_rng::StdRng;

use crate::plan::{AccessPlan, OpKind, SlotTouch};
use crate::position_map::PositionMap;
use crate::stash::Stash;
use crate::tree::TreeGeometry;
use crate::types::{BlockId, BucketId, Level};

/// Path ORAM parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathConfig {
    /// Total tree levels (`L + 1`).
    pub levels: u32,
    /// Slots per bucket (`Z`; 4 is the standard provably-safe choice).
    pub z: u32,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// Top levels held on-chip (no DRAM traffic).
    pub tree_top_cached_levels: u32,
}

impl PathConfig {
    /// A Path ORAM sized like the paper's Ring ORAM default: 24 levels,
    /// `Z = 4`, 64 B blocks, 6 cached levels.
    #[must_use]
    pub fn hpca_default() -> Self {
        Self {
            levels: 24,
            z: 4,
            block_bytes: 64,
            tree_top_cached_levels: 6,
        }
    }

    /// Small configuration for tests.
    #[must_use]
    pub fn test_small() -> Self {
        Self {
            levels: 8,
            z: 4,
            block_bytes: 64,
            tree_top_cached_levels: 0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels == 0 || self.levels > 40 {
            return Err(format!("levels ({}) must be in 1..=40", self.levels));
        }
        if self.z == 0 {
            return Err("z must be nonzero".into());
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be nonzero".into());
        }
        if self.tree_top_cached_levels >= self.levels {
            return Err("tree_top_cached_levels must be below levels".into());
        }
        Ok(())
    }

    /// Blocks moved per access: `Z` reads plus `Z` writes per off-chip
    /// level — Path ORAM's bandwidth overhead that Ring ORAM improves on.
    #[must_use]
    pub fn blocks_per_access(&self) -> u64 {
        u64::from(2 * self.z * (self.levels - self.tree_top_cached_levels))
    }
}

impl Default for PathConfig {
    fn default() -> Self {
        Self::hpca_default()
    }
}

/// Path ORAM statistics.
#[derive(Debug, Clone, Default)]
pub struct PathOramStats {
    /// Accesses served.
    pub accesses: u64,
    /// Blocks read from memory.
    pub blocks_read: u64,
    /// Blocks written to memory.
    pub blocks_written: u64,
}

/// A Path ORAM controller over a lazily materialized tree.
pub struct PathOram {
    cfg: PathConfig,
    geometry: TreeGeometry,
    buckets: HashMap<BucketId, Vec<BlockId>>,
    position_map: PositionMap,
    stash: Stash,
    rng: StdRng,
    stats: PathOramStats,
}

impl std::fmt::Debug for PathOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathOram")
            .field("cfg", &self.cfg)
            .field("stash_len", &self.stash.len())
            .finish_non_exhaustive()
    }
}

impl PathOram {
    /// Creates a Path ORAM with an initially empty tree.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    #[must_use]
    pub fn new(cfg: PathConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid PathConfig: {e}");
        }
        let geometry = TreeGeometry::new(cfg.levels);
        let position_map = PositionMap::new(geometry.leaf_count());
        Self {
            cfg,
            geometry,
            buckets: HashMap::new(),
            position_map,
            stash: Stash::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: PathOramStats::default(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &PathConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &PathOramStats {
        &self.stats
    }

    /// Current stash occupancy.
    #[must_use]
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Peak stash occupancy.
    #[must_use]
    pub fn stash_peak(&self) -> usize {
        self.stash.peak()
    }

    /// Performs one access: full path read, remap, full path write-back.
    /// Returns the single transaction the access generates.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    pub fn access(&mut self, block: BlockId) -> AccessPlan {
        let path = self.position_map.lookup_or_assign(block, &mut self.rng);
        let cached = self.cfg.tree_top_cached_levels;
        let mut touches = Vec::new();
        let mut target_index = None;

        // Read phase: move every block on the path into the stash.
        for lvl in 0..self.cfg.levels {
            let id = self.geometry.bucket_at(path, Level(lvl));
            let content = self.buckets.remove(&id).unwrap_or_default();
            let off_chip = lvl >= cached;
            for (slot, b) in content.iter().enumerate() {
                if off_chip && *b == block {
                    target_index = Some(touches.len() + slot);
                }
            }
            if off_chip {
                for slot in 0..self.cfg.z {
                    touches.push(SlotTouch::read(id, slot));
                }
                self.stats.blocks_read += u64::from(self.cfg.z);
            }
            for b in content {
                let p = self.position_map.lookup(b).expect("tree blocks are mapped");
                self.stash.insert(b, p);
            }
        }

        // Remap the target; it re-enters the stash under its new path.
        let new_path = self.position_map.remap(block, &mut self.rng);
        self.stash.insert(block, new_path);

        // Write phase: greedy leaf-first placement back onto the path.
        for lvl in (0..self.cfg.levels).rev() {
            let id = self.geometry.bucket_at(path, Level(lvl));
            let chosen: Vec<BlockId> = self
                .stash
                .drain_for_bucket(&self.geometry, path, Level(lvl), self.cfg.z as usize)
                .into_iter()
                .map(|(b, _)| b)
                .collect();
            if lvl >= cached {
                for slot in 0..self.cfg.z {
                    touches.push(SlotTouch::write(id, slot));
                }
                self.stats.blocks_written += u64::from(self.cfg.z);
            }
            self.buckets.insert(id, chosen);
        }

        self.stats.accesses += 1;
        AccessPlan::new(OpKind::ReadPath, touches, target_index)
    }

    /// Verifies the block-location invariant (tests/debugging).
    ///
    /// # Panics
    ///
    /// Panics if a mapped block is neither in the stash nor on its path.
    pub fn check_invariants(&self) {
        for (block, path) in self.position_map.entries() {
            if self.stash.contains(block) {
                continue;
            }
            let found = (0..self.cfg.levels).any(|lvl| {
                let id = self.geometry.bucket_at(path, Level(lvl));
                self.buckets.get(&id).is_some_and(|v| v.contains(&block))
            });
            assert!(found, "{block} lost: not in stash, not on {path}");
        }
        for (id, v) in &self.buckets {
            assert!(v.len() <= self.cfg.z as usize, "bucket {id} over capacity");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_moves_full_path() {
        let cfg = PathConfig::test_small();
        let mut o = PathOram::new(cfg.clone(), 1);
        let plan = o.access(BlockId(3));
        assert_eq!(plan.reads(), (cfg.z * cfg.levels) as usize);
        assert_eq!(plan.writes(), (cfg.z * cfg.levels) as usize);
    }

    #[test]
    fn blocks_survive_many_accesses() {
        let mut o = PathOram::new(PathConfig::test_small(), 2);
        for i in 0..300 {
            let _ = o.access(BlockId(i % 23));
        }
        o.check_invariants();
        // Every one of the 23 blocks must still be reachable.
        for i in 0..23 {
            let _ = o.access(BlockId(i));
        }
        o.check_invariants();
    }

    #[test]
    fn stash_stays_bounded_under_uniform_load() {
        let mut o = PathOram::new(PathConfig::test_small(), 3);
        for i in 0..2000 {
            let _ = o.access(BlockId(i % 100));
        }
        // Classic Path ORAM result: stash stays tiny w.h.p. for Z = 4.
        assert!(
            o.stash_peak() < 50,
            "stash peak {} unexpectedly large",
            o.stash_peak()
        );
    }

    #[test]
    fn tree_top_cache_reduces_traffic() {
        let mut cfg = PathConfig::test_small();
        cfg.tree_top_cached_levels = 3;
        let mut o = PathOram::new(cfg.clone(), 4);
        let plan = o.access(BlockId(1));
        assert_eq!(plan.reads(), (cfg.z * (cfg.levels - 3)) as usize);
    }

    #[test]
    fn bandwidth_overhead_formula() {
        let cfg = PathConfig::hpca_default();
        assert_eq!(cfg.blocks_per_access(), 2 * 4 * 18);
    }

    #[test]
    fn stats_accumulate() {
        let mut o = PathOram::new(PathConfig::test_small(), 5);
        let _ = o.access(BlockId(1));
        let _ = o.access(BlockId(2));
        assert_eq!(o.stats().accesses, 2);
        assert_eq!(o.stats().blocks_read, 2 * 4 * 8);
        assert_eq!(o.stats().blocks_written, 2 * 4 * 8);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = PathConfig::test_small();
        cfg.z = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = PathConfig::test_small();
        cfg.tree_top_cached_levels = cfg.levels;
        assert!(cfg.validate().is_err());
    }
}
