//! Path ORAM baseline (Stefanov et al., CCS'13).
//!
//! Ring ORAM's headline claim — 2.3–4x lower overall bandwidth and far
//! lower online bandwidth than Path ORAM — is the motivation the paper
//! builds on, so the reproduction carries a compact Path ORAM
//! implementation, both for the ablation benchmark and as a first-class
//! [`ObliviousProtocol`] engine the full pipeline can drive.
//!
//! Path ORAM is much simpler than Ring ORAM: every access reads *all*
//! `Z` slots of every bucket on the target's path into the stash, remaps
//! the target, and writes the full path back with greedy leaf-first
//! placement. There are no dummy budgets, no metadata counters, no separate
//! eviction phase — one access is exactly one [`OpKind::ReadPath`] plan
//! whose touch list carries the reads followed by the write-back.
//!
//! Configuration comes in two equivalent shapes: the protocol-native
//! [`PathConfig`] (levels/Z/block size/cache) used by the standalone
//! benchmarks, and a [`RingConfig`] with `S = Y = 1` (`bucket_slots =
//! Z + S - Y = Z`) used by the pipeline so layout sizing, sharding and
//! auditing share one configuration type across protocols
//! ([`PathConfig::to_ring`] / [`PathOram::from_ring`] convert).
//!
//! Like the Ring engine, the steady state is allocation-free: plan and
//! touch buffers pool through [`AccessOutcome`]/[`PathOram::recycle_outcome`],
//! bucket content vectors are cleared and refilled in place, and the
//! eviction write phase selects from one candidate snapshot.

use oram_rng::StdRng;

use crate::config::RingConfig;
use crate::fasthash::DetHashMap;
use crate::oblivious::{ObliviousProtocol, ProtocolKind};
use crate::plan::{AccessPlan, OpKind, SlotTouch};
use crate::position_map::PositionMap;
use crate::protocol::{AccessOutcome, ProtocolStats, TargetSource};
use crate::stash::Stash;
use crate::tree::TreeGeometry;
use crate::types::{BlockId, BucketId, Level, PathId};

/// Path ORAM parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathConfig {
    /// Total tree levels (`L + 1`).
    pub levels: u32,
    /// Slots per bucket (`Z`; 4 is the standard provably-safe choice).
    pub z: u32,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// Top levels held on-chip (no DRAM traffic).
    pub tree_top_cached_levels: u32,
}

impl PathConfig {
    /// A Path ORAM sized like the paper's Ring ORAM default: 24 levels,
    /// `Z = 4`, 64 B blocks, 6 cached levels.
    #[must_use]
    pub fn hpca_default() -> Self {
        Self {
            levels: 24,
            z: 4,
            block_bytes: 64,
            tree_top_cached_levels: 6,
        }
    }

    /// Small configuration for tests.
    #[must_use]
    pub fn test_small() -> Self {
        Self {
            levels: 8,
            z: 4,
            block_bytes: 64,
            tree_top_cached_levels: 0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels == 0 || self.levels > 40 {
            return Err(format!("levels ({}) must be in 1..=40", self.levels));
        }
        if self.z == 0 {
            return Err("z must be nonzero".into());
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be nonzero".into());
        }
        if self.tree_top_cached_levels >= self.levels {
            return Err("tree_top_cached_levels must be below levels".into());
        }
        Ok(())
    }

    /// Blocks moved per access: `Z` reads plus `Z` writes per off-chip
    /// level — Path ORAM's bandwidth overhead that Ring ORAM improves on.
    #[must_use]
    pub fn blocks_per_access(&self) -> u64 {
        u64::from(2 * self.z * (self.levels - self.tree_top_cached_levels))
    }

    /// The equivalent [`RingConfig`] encoding: Path ORAM buckets are
    /// exactly `Z` slots, expressed as `S = Y = 1` (`bucket_slots =
    /// Z + 1 - 1 = Z`). `A = 1` is nominal (Path ORAM has no separate
    /// eviction schedule). This is the shape the pipeline's layout,
    /// sharding and audit layers consume.
    #[must_use]
    pub fn to_ring(&self) -> RingConfig {
        RingConfig {
            levels: self.levels,
            z: self.z,
            s: 1,
            a: 1,
            y: 1,
            block_bytes: self.block_bytes,
            stash_capacity: 500,
            tree_top_cached_levels: self.tree_top_cached_levels,
        }
    }
}

impl Default for PathConfig {
    fn default() -> Self {
        Self::hpca_default()
    }
}

/// Reusable buffers for the steady-state access path (the pooling scheme
/// of `protocol::Scratch`: plan/touch lists leave via [`AccessOutcome`]s
/// and return via [`PathOram::recycle_outcome`]).
#[derive(Default)]
struct Scratch {
    /// Pool of `plans` vectors backing [`AccessOutcome`]s.
    plan_lists: Vec<Vec<AccessPlan>>,
    /// Pool of per-plan touch vectors.
    touch_lists: Vec<Vec<SlotTouch>>,
    /// Write phase: `(block, deepest eligible level, taken)` snapshot of
    /// the stash, sorted ascending by block id.
    candidates: Vec<(BlockId, u32, bool)>,
}

/// A Path ORAM controller over a lazily materialized tree.
pub struct PathOram {
    cfg: RingConfig,
    geometry: TreeGeometry,
    /// Bucket contents (block ids only). Content vectors materialize with
    /// capacity `Z` and are cleared and refilled in place, never dropped,
    /// so a materialized tree stops allocating.
    buckets: DetHashMap<BucketId, Vec<BlockId>>,
    position_map: PositionMap,
    stash: Stash,
    rng: StdRng,
    stats: ProtocolStats,
    scratch: Scratch,
}

impl std::fmt::Debug for PathOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathOram")
            .field("cfg", &self.cfg)
            .field("buckets_materialized", &self.buckets.len())
            .field("stash_len", &self.stash.len())
            .finish_non_exhaustive()
    }
}

impl PathOram {
    /// Creates a Path ORAM with an initially empty tree.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    #[must_use]
    pub fn new(cfg: PathConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid PathConfig: {e}");
        }
        Self::from_ring(cfg.to_ring(), seed)
    }

    /// Creates a Path ORAM from the pipeline's [`RingConfig`] encoding.
    ///
    /// # Panics
    ///
    /// Panics if `ring` fails [`RingConfig::validate`] or if
    /// `ring.bucket_slots() != ring.z` — Path ORAM buckets are exactly
    /// `Z` slots; encode that as `S = Y` (canonically `S = Y = 1`).
    #[must_use]
    pub fn from_ring(ring: RingConfig, seed: u64) -> Self {
        if let Err(e) = ring.validate() {
            panic!("invalid RingConfig: {e}");
        }
        assert!(
            ring.bucket_slots() == ring.z,
            "Path ORAM buckets are exactly Z slots; pass S = Y (e.g. S = Y = 1), got \
             Z = {}, S = {}, Y = {}",
            ring.z,
            ring.s,
            ring.y
        );
        let geometry = TreeGeometry::new(ring.levels);
        let position_map = PositionMap::new(geometry.leaf_count());
        Self {
            cfg: ring,
            geometry,
            buckets: DetHashMap::default(),
            position_map,
            stash: Stash::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: ProtocolStats::default(),
            scratch: Scratch::default(),
        }
    }

    /// The configuration in force ([`RingConfig`] encoding; `bucket_slots
    /// == z`).
    #[must_use]
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// The tree geometry in force.
    #[must_use]
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// Current stash occupancy.
    #[must_use]
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Peak stash occupancy.
    #[must_use]
    pub fn stash_peak(&self) -> usize {
        self.stash.peak()
    }

    /// Tree buckets materialized (touched at least once) so far.
    #[must_use]
    pub fn materialized_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Performs one access: full path read, remap, full path write-back.
    /// The outcome carries a single [`OpKind::ReadPath`] plan (reads
    /// followed by write-back touches).
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    pub fn access(&mut self, block: BlockId) -> AccessOutcome {
        let path = self.position_map.lookup_or_assign(block, &mut self.rng);
        let cached = self.cfg.tree_top_cached_levels;
        let z = self.cfg.z;
        let in_stash = self.stash.contains(block);
        let mut plans = self.scratch.plan_lists.pop().unwrap_or_default();
        let mut touches = self.scratch.touch_lists.pop().unwrap_or_default();
        let mut target_index = None;
        let mut source = TargetSource::New;

        // Read phase: move every block on the path into the stash.
        for lvl in 0..self.cfg.levels {
            let id = self.geometry.bucket_at(path, Level(lvl));
            let content = self
                .buckets
                .entry(id)
                .or_insert_with(|| Vec::with_capacity(z as usize));
            let off_chip = lvl >= cached;
            if let Some(pos) = content.iter().position(|b| *b == block) {
                if off_chip {
                    target_index = Some(touches.len() + pos);
                    source = TargetSource::Tree(Level(lvl));
                } else {
                    source = TargetSource::TreeTop(Level(lvl));
                }
            }
            for &b in content.iter() {
                let p = self.position_map.lookup(b).expect("tree blocks are mapped");
                self.stash.insert(b, p);
            }
            content.clear();
            if off_chip {
                for slot in 0..z {
                    touches.push(SlotTouch::read(id, slot));
                }
            }
        }
        if matches!(source, TargetSource::New) && in_stash {
            source = TargetSource::Stash;
        }

        // Remap the target; it re-enters the stash under its new path.
        let new_path = self.position_map.remap(block, &mut self.rng);
        self.stash.insert(block, new_path);

        // One snapshot of write-back candidates, selected ascending by
        // block id per level — the same selection `drain_for_bucket` makes
        // when re-walking the remaining stash for each level, without the
        // per-level rescan or its allocation.
        let cand = &mut self.scratch.candidates;
        cand.clear();
        self.stash
            .for_each_candidate(&self.geometry, path, |b, depth| {
                cand.push((b, depth.0, false));
            });
        cand.sort_unstable_by_key(|&(b, _, _)| b);

        // Write phase: greedy leaf-first placement back onto the path.
        for lvl in (0..self.cfg.levels).rev() {
            let id = self.geometry.bucket_at(path, Level(lvl));
            let content = self
                .buckets
                .entry(id)
                .or_insert_with(|| Vec::with_capacity(z as usize));
            let mut placed = 0;
            for c in self.scratch.candidates.iter_mut() {
                if placed == z {
                    break;
                }
                if !c.2 && c.1 >= lvl {
                    c.2 = true;
                    placed += 1;
                    self.stash.remove(c.0);
                    content.push(c.0);
                }
            }
            if lvl >= cached {
                for slot in 0..z {
                    touches.push(SlotTouch::write(id, slot));
                }
            }
        }

        self.stats.read_paths += 1;
        match source {
            TargetSource::Tree(_) => self.stats.targets_from_tree += 1,
            TargetSource::TreeTop(_) => self.stats.targets_from_treetop += 1,
            TargetSource::Stash => self.stats.targets_from_stash += 1,
            TargetSource::New => self.stats.new_blocks += 1,
        }
        self.stats.stash_samples.push(self.stash.len());
        plans.push(AccessPlan::new(OpKind::ReadPath, touches, target_index));
        AccessOutcome { plans, source }
    }

    /// Returns an outcome's buffers to the engine's pools.
    pub fn recycle_outcome(&mut self, outcome: AccessOutcome) {
        let AccessOutcome { mut plans, .. } = outcome;
        for plan in plans.drain(..) {
            let AccessPlan { mut touches, .. } = plan;
            touches.clear();
            self.scratch.touch_lists.push(touches);
        }
        self.scratch.plan_lists.push(plans);
    }

    /// Pre-sizes per-access bookkeeping for `n` further accesses.
    pub fn reserve_accesses(&mut self, n: usize) {
        self.stats.stash_samples.reserve(n);
    }

    /// Snapshot of `(block, path)` position-map entries.
    #[must_use]
    pub fn position_entries(&self) -> Vec<(BlockId, PathId)> {
        self.position_map.entries()
    }

    /// Verifies the block-location invariant (tests/debugging).
    ///
    /// # Panics
    ///
    /// Panics if a mapped block is neither in the stash nor on its path,
    /// or if a bucket holds more than `Z` blocks.
    pub fn check_invariants(&self) {
        for (block, path) in self.position_map.entries() {
            if self.stash.contains(block) {
                continue;
            }
            let found = (0..self.cfg.levels).any(|lvl| {
                let id = self.geometry.bucket_at(path, Level(lvl));
                self.buckets.get(&id).is_some_and(|v| v.contains(&block))
            });
            assert!(found, "{block} lost: not in stash, not on {path}");
        }
        for (id, v) in &self.buckets {
            assert!(
                v.len() <= self.cfg.z as usize,
                "bucket {id} over capacity: {} > {}",
                v.len(),
                self.cfg.z
            );
        }
    }
}

impl ObliviousProtocol for PathOram {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Path
    }

    fn access(&mut self, block: BlockId) -> AccessOutcome {
        PathOram::access(self, block)
    }

    fn recycle_outcome(&mut self, outcome: AccessOutcome) {
        PathOram::recycle_outcome(self, outcome);
    }

    fn reserve_accesses(&mut self, n: usize) {
        PathOram::reserve_accesses(self, n);
    }

    fn stats(&self) -> &ProtocolStats {
        PathOram::stats(self)
    }

    fn stash_len(&self) -> usize {
        PathOram::stash_len(self)
    }

    fn stash_peak(&self) -> usize {
        PathOram::stash_peak(self)
    }

    fn materialized_buckets(&self) -> usize {
        PathOram::materialized_buckets(self)
    }

    fn check_invariants(&self) {
        PathOram::check_invariants(self);
    }

    fn position_entries(&self) -> Vec<(BlockId, PathId)> {
        PathOram::position_entries(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_moves_full_path() {
        let cfg = PathConfig::test_small();
        let mut o = PathOram::new(cfg.clone(), 1);
        let out = o.access(BlockId(3));
        assert_eq!(out.plans.len(), 1);
        let plan = &out.plans[0];
        assert_eq!(plan.kind, OpKind::ReadPath);
        assert_eq!(plan.reads(), (cfg.z * cfg.levels) as usize);
        assert_eq!(plan.writes(), (cfg.z * cfg.levels) as usize);
    }

    #[test]
    fn blocks_survive_many_accesses() {
        let mut o = PathOram::new(PathConfig::test_small(), 2);
        for i in 0..300 {
            let out = o.access(BlockId(i % 23));
            o.recycle_outcome(out);
        }
        o.check_invariants();
        // Every one of the 23 blocks must still be reachable.
        for i in 0..23 {
            let out = o.access(BlockId(i));
            assert!(!matches!(out.source, TargetSource::New), "block {i} lost");
            o.recycle_outcome(out);
        }
        o.check_invariants();
    }

    #[test]
    fn stash_stays_bounded_under_uniform_load() {
        let mut o = PathOram::new(PathConfig::test_small(), 3);
        for i in 0..2000 {
            let out = o.access(BlockId(i % 100));
            o.recycle_outcome(out);
        }
        // Classic Path ORAM result: stash stays tiny w.h.p. for Z = 4.
        assert!(
            o.stash_peak() < 50,
            "stash peak {} unexpectedly large",
            o.stash_peak()
        );
    }

    #[test]
    fn tree_top_cache_reduces_traffic() {
        let mut cfg = PathConfig::test_small();
        cfg.tree_top_cached_levels = 3;
        let mut o = PathOram::new(cfg.clone(), 4);
        let out = o.access(BlockId(1));
        assert_eq!(out.plans[0].reads(), (cfg.z * (cfg.levels - 3)) as usize);
    }

    #[test]
    fn bandwidth_overhead_formula() {
        let cfg = PathConfig::hpca_default();
        assert_eq!(cfg.blocks_per_access(), 2 * 4 * 18);
    }

    #[test]
    fn ring_encoding_round_trips() {
        let cfg = PathConfig::hpca_default();
        let ring = cfg.to_ring();
        assert_eq!(ring.bucket_slots(), ring.z);
        assert!(ring.validate().is_ok());
        let o = PathOram::from_ring(ring, 1);
        assert_eq!(ObliviousProtocol::kind(&o), ProtocolKind::Path);
    }

    #[test]
    fn stats_accumulate() {
        let mut o = PathOram::new(PathConfig::test_small(), 5);
        let a = o.access(BlockId(1));
        assert_eq!(a.source, TargetSource::New);
        o.recycle_outcome(a);
        let b = o.access(BlockId(1));
        assert!(!matches!(b.source, TargetSource::New));
        o.recycle_outcome(b);
        assert_eq!(o.stats().read_paths, 2);
        assert_eq!(o.stats().new_blocks, 1);
        assert_eq!(o.stats().stash_samples.len(), 2);
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let mut o = PathOram::new(PathConfig::test_small(), 6);
        let out = o.access(BlockId(1));
        o.recycle_outcome(out);
        assert_eq!(o.scratch.plan_lists.len(), 1);
        assert_eq!(o.scratch.touch_lists.len(), 1);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = PathConfig::test_small();
        cfg.z = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = PathConfig::test_small();
        cfg.tree_top_cached_levels = cfg.levels;
        assert!(cfg.validate().is_err());
    }
}
