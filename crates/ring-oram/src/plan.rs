//! Access plans: the physical slot touches one ORAM operation generates.
//!
//! The protocol layer is deliberately decoupled from timing: each logical
//! program access expands into a sequence of [`AccessPlan`]s, and each plan
//! becomes one **ORAM transaction** at the memory controller (the atomic,
//! ordered unit of the paper's transaction-based scheduling).

use crate::types::BucketId;

/// The kind of ORAM operation a plan represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Selective read-path operation serving a program request.
    ReadPath,
    /// A read path issued purely to reach the eviction interval without
    /// leaking that the stash is filling (background eviction support).
    DummyReadPath,
    /// The periodic eviction: full path read + write in reverse
    /// lexicographic order.
    Eviction,
    /// Early reshuffle of a single over-touched bucket.
    EarlyReshuffle,
    /// Bounded re-reads of slots whose fetched blocks failed their
    /// integrity check (fault recovery). Retry touches re-read already
    /// public slots, so they reveal only where a fault occurred — never
    /// data-dependent state.
    RetryRead,
}

impl OpKind {
    /// Short label used in reports ("read", "evict", ...).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::ReadPath => "read",
            Self::DummyReadPath => "dummy-read",
            Self::Eviction => "evict",
            Self::EarlyReshuffle => "reshuffle",
            Self::RetryRead => "retry",
        }
    }

    /// Whether the operation sits on the program's critical path (the
    /// paper's "read path operation is always a critical operation").
    /// Retry reads block the program only when the *target* fetch was the
    /// one retried, which the plan's `target_index` records; the kind
    /// itself stays non-critical.
    #[must_use]
    pub fn is_critical(self) -> bool {
        matches!(self, Self::ReadPath)
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One physical slot access within a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTouch {
    /// Bucket being touched.
    pub bucket: BucketId,
    /// Slot index within the bucket.
    pub slot: u32,
    /// `true` for a write-back, `false` for a read.
    pub write: bool,
}

impl SlotTouch {
    /// A read touch.
    #[must_use]
    pub fn read(bucket: BucketId, slot: u32) -> Self {
        Self {
            bucket,
            slot,
            write: false,
        }
    }

    /// A write touch.
    #[must_use]
    pub fn write(bucket: BucketId, slot: u32) -> Self {
        Self {
            bucket,
            slot,
            write: true,
        }
    }
}

/// The physical footprint of one ORAM operation: an ordered list of slot
/// touches, executed atomically and in order as one memory transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPlan {
    /// Operation type.
    pub kind: OpKind,
    /// Slot touches in issue order (reads of a phase precede writes).
    pub touches: Vec<SlotTouch>,
    /// Index into `touches` of the read that returns the program's block,
    /// when this plan serves a program request from the tree.
    pub target_index: Option<usize>,
}

impl AccessPlan {
    /// Creates a plan; `target_index`, if given, must index a read touch.
    ///
    /// # Panics
    ///
    /// Panics if `target_index` is out of range or points at a write.
    #[must_use]
    pub fn new(kind: OpKind, touches: Vec<SlotTouch>, target_index: Option<usize>) -> Self {
        if let Some(i) = target_index {
            assert!(i < touches.len(), "target_index out of range");
            assert!(!touches[i].write, "target must be a read");
        }
        Self {
            kind,
            touches,
            target_index,
        }
    }

    /// Number of read touches.
    #[must_use]
    pub fn reads(&self) -> usize {
        self.touches.iter().filter(|t| !t.write).count()
    }

    /// Number of write touches.
    #[must_use]
    pub fn writes(&self) -> usize {
        self.touches.iter().filter(|t| t.write).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            OpKind::ReadPath,
            OpKind::DummyReadPath,
            OpKind::Eviction,
            OpKind::EarlyReshuffle,
            OpKind::RetryRead,
        ]
        .into_iter()
        .map(OpKind::label)
        .collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn only_read_path_is_critical() {
        assert!(OpKind::ReadPath.is_critical());
        assert!(!OpKind::DummyReadPath.is_critical());
        assert!(!OpKind::Eviction.is_critical());
        assert!(!OpKind::EarlyReshuffle.is_critical());
        assert!(!OpKind::RetryRead.is_critical());
    }

    #[test]
    fn read_write_counts() {
        let plan = AccessPlan::new(
            OpKind::Eviction,
            vec![
                SlotTouch::read(BucketId(0), 0),
                SlotTouch::read(BucketId(1), 1),
                SlotTouch::write(BucketId(0), 0),
            ],
            None,
        );
        assert_eq!(plan.reads(), 2);
        assert_eq!(plan.writes(), 1);
    }

    #[test]
    fn target_index_validated() {
        let touches = vec![SlotTouch::read(BucketId(0), 0)];
        let plan = AccessPlan::new(OpKind::ReadPath, touches, Some(0));
        assert_eq!(plan.target_index, Some(0));
    }

    #[test]
    #[should_panic(expected = "target must be a read")]
    fn target_cannot_be_a_write() {
        let touches = vec![SlotTouch::write(BucketId(0), 0)];
        let _ = AccessPlan::new(OpKind::ReadPath, touches, Some(0));
    }

    #[test]
    #[should_panic(expected = "target_index out of range")]
    fn target_range_checked() {
        let _ = AccessPlan::new(OpKind::ReadPath, vec![], Some(0));
    }
}
