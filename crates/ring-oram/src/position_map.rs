//! The position map: program block → path label.
//!
//! In hardware the position map is a (recursively compressible) on-chip
//! table inside the secure processor; here it is a hash map that assigns
//! fresh uniform paths lazily and on every remap.

use oram_rng::Rng;

use crate::fasthash::DetHashMap;

use crate::types::{BlockId, PathId};

/// Lazy position map over `2^L` paths.
///
/// # Examples
///
/// ```
/// use ring_oram::position_map::PositionMap;
/// use ring_oram::types::BlockId;
/// use oram_rng::StdRng;
///
/// let mut pm = PositionMap::new(128);
/// let mut rng = StdRng::seed_from_u64(1);
/// let p = pm.lookup_or_assign(BlockId(7), &mut rng);
/// assert!(p.0 < 128);
/// // Stable until remapped.
/// assert_eq!(pm.lookup_or_assign(BlockId(7), &mut rng), p);
/// ```
#[derive(Debug, Clone)]
pub struct PositionMap {
    paths: u64,
    map: DetHashMap<BlockId, PathId>,
}

impl PositionMap {
    /// A position map over `paths` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is zero.
    #[must_use]
    pub fn new(paths: u64) -> Self {
        assert!(paths > 0, "paths must be nonzero");
        Self {
            paths,
            map: DetHashMap::default(),
        }
    }

    /// Number of leaves the map draws from.
    #[must_use]
    pub fn path_count(&self) -> u64 {
        self.paths
    }

    /// Number of blocks currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no blocks are tracked yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The path currently assigned to `block`, if any.
    #[must_use]
    pub fn lookup(&self, block: BlockId) -> Option<PathId> {
        self.map.get(&block).copied()
    }

    /// The path assigned to `block`, drawing a fresh uniform path on first
    /// use (lazy initialization of an untouched block).
    pub fn lookup_or_assign<R: Rng + ?Sized>(&mut self, block: BlockId, rng: &mut R) -> PathId {
        let paths = self.paths;
        *self
            .map
            .entry(block)
            .or_insert_with(|| PathId(rng.gen_range(0..paths)))
    }

    /// Remaps `block` to a fresh uniform path (called on every real access,
    /// per the ORAM protocol) and returns the new path.
    pub fn remap<R: Rng + ?Sized>(&mut self, block: BlockId, rng: &mut R) -> PathId {
        let p = PathId(rng.gen_range(0..self.paths));
        self.map.insert(block, p);
        p
    }

    /// Snapshot of all `(block, path)` entries, in unspecified order (used
    /// by invariant checks and debugging; hardware has no such operation).
    #[must_use]
    pub fn entries(&self) -> Vec<(BlockId, PathId)> {
        self.map.iter().map(|(&b, &p)| (b, p)).collect()
    }

    /// Pins `block` to `path` without randomness (used when materializing
    /// pre-loaded "cold" tree contents, whose position must match the bucket
    /// they were placed in).
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn insert(&mut self, block: BlockId, path: PathId) {
        assert!(path.0 < self.paths, "path out of range");
        self.map.insert(block, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_rng::StdRng;

    #[test]
    fn lazy_assignment_is_stable() {
        let mut pm = PositionMap::new(64);
        let mut rng = StdRng::seed_from_u64(3);
        let p1 = pm.lookup_or_assign(BlockId(1), &mut rng);
        let p2 = pm.lookup_or_assign(BlockId(1), &mut rng);
        assert_eq!(p1, p2);
        assert_eq!(pm.len(), 1);
    }

    #[test]
    fn remap_changes_distribution_not_identity() {
        let mut pm = PositionMap::new(1 << 16);
        let mut rng = StdRng::seed_from_u64(4);
        let p0 = pm.lookup_or_assign(BlockId(9), &mut rng);
        let mut changed = false;
        for _ in 0..8 {
            if pm.remap(BlockId(9), &mut rng) != p0 {
                changed = true;
            }
        }
        assert!(changed, "8 remaps over 2^16 paths must move the block");
        assert_eq!(pm.len(), 1);
    }

    #[test]
    fn paths_are_in_range_and_roughly_uniform() {
        let mut pm = PositionMap::new(16);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 16];
        for b in 0..4096 {
            let p = pm.lookup_or_assign(BlockId(b), &mut rng);
            assert!(p.0 < 16);
            counts[p.0 as usize] += 1;
        }
        // Each bin expects 256; a loose 3-sigma style bound suffices.
        for (i, &c) in counts.iter().enumerate() {
            assert!((150..400).contains(&c), "bin {i} has {c}");
        }
    }

    #[test]
    fn insert_pins_path() {
        let mut pm = PositionMap::new(8);
        pm.insert(BlockId(2), PathId(5));
        assert_eq!(pm.lookup(BlockId(2)), Some(PathId(5)));
    }

    #[test]
    #[should_panic(expected = "path out of range")]
    fn insert_checks_range() {
        let mut pm = PositionMap::new(8);
        pm.insert(BlockId(2), PathId(8));
    }

    #[test]
    fn entries_snapshot_everything() {
        let mut pm = PositionMap::new(8);
        pm.insert(BlockId(1), PathId(2));
        pm.insert(BlockId(5), PathId(7));
        let mut e = pm.entries();
        e.sort();
        assert_eq!(e, vec![(BlockId(1), PathId(2)), (BlockId(5), PathId(7))]);
    }

    #[test]
    fn lookup_absent_is_none() {
        let pm = PositionMap::new(8);
        assert_eq!(pm.lookup(BlockId(1)), None);
        assert!(pm.is_empty());
    }
}
