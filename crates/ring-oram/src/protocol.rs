//! The Ring ORAM protocol engine with String ORAM's Compact Bucket.
//!
//! [`RingOram`] maintains the full controller state — tree buckets (lazily
//! materialized), position map, stash, counters — and turns each logical
//! program access into a sequence of [`AccessPlan`]s. Each plan corresponds
//! to one atomic ORAM transaction on the memory system; the timing layers
//! (`mem-sched`, `string-oram`) decide how long those transactions take.
//!
//! # Pre-loaded tree
//!
//! A deployed ORAM stores the whole protected address space, so buckets are
//! far from empty; green-block availability (and therefore the Compact
//! Bucket's behaviour) depends on that occupancy. Because materializing the
//! paper's 16.7 M buckets eagerly is pointless for traces that touch a tiny
//! fraction of them, buckets are created on first touch, pre-filled with
//! *cold blocks* drawn `Binomial(Z, load_factor)` — synthetic resident
//! blocks with identifiers above [`RingOram::COLD_BASE`], each pinned to a
//! position-map path consistent with its bucket. Cold blocks flow through
//! stash and evictions exactly like program blocks; they are simply never
//! requested.
//!
//! # First-touch program blocks
//!
//! A program block seen for the first time is assigned a uniform path and
//! enters the stash at the end of its read path (the read path is still
//! performed in full — on the bus a first-touch access is indistinguishable
//! from any other). From then on the block obeys the standard invariant:
//! it is either in the stash or in a bucket on its assigned path.

use oram_rng::{Rng, StdRng};

use crate::bucket::{BlockData, BlockEntry, Bucket};
use crate::config::RingConfig;
use crate::crypto::BlockCipher;
use crate::fasthash::DetHashMap;
use crate::faults::{FaultEvent, FaultEventKind, OramError, ResilienceConfig};
use crate::plan::{AccessPlan, OpKind, SlotTouch};
use crate::position_map::PositionMap;
use crate::stash::Stash;
use crate::tree::TreeGeometry;
use crate::types::{BlockId, BucketId, FetchKind, Level, PathId};

/// Where a requested block was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSource {
    /// Found in an off-chip bucket along its path.
    Tree(Level),
    /// Found in the on-chip tree-top cache.
    TreeTop(Level),
    /// Already in the stash (e.g. fetched earlier as a green block).
    Stash,
    /// First-ever touch of this block.
    New,
}

/// The result of one logical access: the memory transactions it generated
/// and where the block came from.
#[derive(Debug, Clone)]
pub struct AccessOutcome {
    /// ORAM transactions, in the order they must execute.
    pub plans: Vec<AccessPlan>,
    /// Where the target was found.
    pub source: TargetSource,
}

impl AccessOutcome {
    /// Index of the plan whose completion makes the requested data
    /// available to the program: the last read-path (or retry) plan that
    /// actually fetches the target, falling back to the last read path when
    /// the target never leaves the chip (stash / tree-top / first-touch
    /// hits — the path is still performed in full for obliviousness).
    /// `None` when the access produced no read-path plan at all.
    #[must_use]
    pub fn wake_plan_index(&self) -> Option<usize> {
        self.plans
            .iter()
            .rposition(|p| {
                matches!(p.kind, OpKind::ReadPath | OpKind::RetryRead) && p.target_index.is_some()
            })
            .or_else(|| self.plans.iter().rposition(|p| p.kind == OpKind::ReadPath))
    }

    /// Whether the target was served from an off-chip tree bucket (its
    /// payload travels on the memory bus, so the program must wait for the
    /// fetch's data, not merely for the transaction to retire).
    #[must_use]
    pub fn served_from_tree(&self) -> bool {
        matches!(self.source, TargetSource::Tree(_))
    }
}

/// Protocol-level statistics, accumulated across the instance's lifetime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProtocolStats {
    /// Program-serving read paths.
    pub read_paths: u64,
    /// Dummy read paths issued for background eviction.
    pub dummy_read_paths: u64,
    /// Scheduled (every `A`) evictions, including those reached via
    /// background dummy reads.
    pub evictions: u64,
    /// Background evictions (stash-pressure-triggered) out of the total.
    pub background_evictions: u64,
    /// Early reshuffles of over-touched buckets (budget `S` exhausted).
    pub early_reshuffles: u64,
    /// CB-specific forced reshuffles: bucket could serve neither a dummy
    /// nor a green fetch despite remaining budget.
    pub forced_reshuffles: u64,
    /// Green blocks brought into the stash.
    pub greens_fetched: u64,
    /// Targets found in off-chip tree buckets.
    pub targets_from_tree: u64,
    /// Targets found in the on-chip tree top.
    pub targets_from_treetop: u64,
    /// Targets already in the stash.
    pub targets_from_stash: u64,
    /// First-touch blocks.
    pub new_blocks: u64,
    /// Stash occupancy sampled after every program read path.
    pub stash_samples: Vec<usize>,
    /// Block encryptions performed by the E/D logic (writes to the tree).
    pub encryptions: u64,
    /// Block decryptions performed by the E/D logic (fetches with payload).
    pub decryptions: u64,
    /// Transit corruptions injected by the fault layer (including ones on
    /// retried transfers).
    pub faults_injected: u64,
    /// Injected corruptions caught by the integrity tag.
    pub faults_detected: u64,
    /// Slot re-reads performed to recover corrupted fetches.
    pub fault_retries: u64,
    /// Corrupted fetches that recovered within the retry budget.
    pub faults_recovered: u64,
    /// Corrupted fetches that exhausted the retry budget (payload lost).
    pub faults_unrecovered: u64,
    /// Entries into degraded mode (green substitution disabled).
    pub degraded_entries: u64,
    /// Exits from degraded mode.
    pub degraded_exits: u64,
    /// Extra background-eviction rounds forced by the stash escalation
    /// watermark (before the hard capacity loop).
    pub background_escalations: u64,
}

impl ProtocolStats {
    /// Counter-wise difference `self - earlier`, for measurement windows;
    /// `stash_samples` keeps only the samples recorded after the snapshot.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            read_paths: self.read_paths - earlier.read_paths,
            dummy_read_paths: self.dummy_read_paths - earlier.dummy_read_paths,
            evictions: self.evictions - earlier.evictions,
            background_evictions: self.background_evictions - earlier.background_evictions,
            early_reshuffles: self.early_reshuffles - earlier.early_reshuffles,
            forced_reshuffles: self.forced_reshuffles - earlier.forced_reshuffles,
            greens_fetched: self.greens_fetched - earlier.greens_fetched,
            targets_from_tree: self.targets_from_tree - earlier.targets_from_tree,
            targets_from_treetop: self.targets_from_treetop - earlier.targets_from_treetop,
            targets_from_stash: self.targets_from_stash - earlier.targets_from_stash,
            new_blocks: self.new_blocks - earlier.new_blocks,
            stash_samples: self.stash_samples[earlier.stash_samples.len()..].to_vec(),
            encryptions: self.encryptions - earlier.encryptions,
            decryptions: self.decryptions - earlier.decryptions,
            faults_injected: self.faults_injected - earlier.faults_injected,
            faults_detected: self.faults_detected - earlier.faults_detected,
            fault_retries: self.fault_retries - earlier.fault_retries,
            faults_recovered: self.faults_recovered - earlier.faults_recovered,
            faults_unrecovered: self.faults_unrecovered - earlier.faults_unrecovered,
            degraded_entries: self.degraded_entries - earlier.degraded_entries,
            degraded_exits: self.degraded_exits - earlier.degraded_exits,
            background_escalations: self.background_escalations - earlier.background_escalations,
        }
    }

    /// Folds the counters of a *disjoint* ORAM instance into `self`, for
    /// combining per-shard statistics into one merged view: every counter
    /// adds; `stash_samples` appends `other`'s samples (callers merging
    /// shards do so in shard-id order, keeping the merge deterministic).
    pub fn merge_from(&mut self, other: &Self) {
        self.read_paths += other.read_paths;
        self.dummy_read_paths += other.dummy_read_paths;
        self.evictions += other.evictions;
        self.background_evictions += other.background_evictions;
        self.early_reshuffles += other.early_reshuffles;
        self.forced_reshuffles += other.forced_reshuffles;
        self.greens_fetched += other.greens_fetched;
        self.targets_from_tree += other.targets_from_tree;
        self.targets_from_treetop += other.targets_from_treetop;
        self.targets_from_stash += other.targets_from_stash;
        self.new_blocks += other.new_blocks;
        self.stash_samples.extend_from_slice(&other.stash_samples);
        self.encryptions += other.encryptions;
        self.decryptions += other.decryptions;
        self.faults_injected += other.faults_injected;
        self.faults_detected += other.faults_detected;
        self.fault_retries += other.fault_retries;
        self.faults_recovered += other.faults_recovered;
        self.faults_unrecovered += other.faults_unrecovered;
        self.degraded_entries += other.degraded_entries;
        self.degraded_exits += other.degraded_exits;
        self.background_escalations += other.background_escalations;
    }

    /// Green blocks fetched per program read path (the paper's Fig. 13
    /// lower panel).
    #[must_use]
    pub fn greens_per_read(&self) -> f64 {
        if self.read_paths == 0 {
            0.0
        } else {
            self.greens_fetched as f64 / self.read_paths as f64
        }
    }
}

/// Live resilience state: the dedicated fault RNG, the degraded-mode flag
/// and the append-only event log. The fault RNG is never shared with the
/// protocol RNG, so enabling faults cannot perturb the access sequence.
struct ResilienceState {
    cfg: ResilienceConfig,
    rng: StdRng,
    degraded: bool,
    events: Vec<FaultEvent>,
}

/// Reusable buffers for the steady-state access path.
///
/// Ownership rule: every vector here belongs to exactly one helper
/// (`read_path`, `reshuffle_bucket`, `evict`, or the seal/unseal pair),
/// which takes it empty at entry and returns it empty at exit, so helpers
/// never alias a buffer across their (strictly sequential) call graph. The
/// pooled lists (`plan_lists`, `touch_lists`, payload boxes) flow out
/// through [`AccessOutcome`]s and come back via
/// [`RingOram::recycle_outcome`]; callers that drop outcomes instead just
/// let the pools refill lazily. Net effect: a warm controller performs no
/// heap allocation per access — the allocation-regression test in the
/// `string-oram` crate pins this.
#[derive(Default)]
struct Scratch {
    /// Pool of `plans` vectors backing [`AccessOutcome`]s.
    plan_lists: Vec<Vec<AccessPlan>>,
    /// Pool of per-plan touch vectors (read paths, reshuffles, retries).
    touch_lists: Vec<Vec<SlotTouch>>,
    /// `read_path`: forced reshuffles emitted ahead of the path.
    reshuffles: Vec<AccessPlan>,
    /// `read_path`: buckets whose dummy budget this path exhausted.
    exhausted: Vec<BucketId>,
    /// `reshuffle_bucket` / `evict`: real-slot indices for read touches.
    real_slots: Vec<u32>,
    /// `reshuffle_bucket` / `evict`: blocks pulled out of a bucket.
    entries: Vec<BlockEntry>,
    /// `reshuffle_bucket` / `evict`: entries staged for a bucket reload.
    resealed: Vec<BlockEntry>,
    /// `evict`: eviction candidates grouped by deepest eligible level.
    by_depth: Vec<Vec<BlockId>>,
    /// `evict`: backing storage for the eligible-block min-heap.
    eligible: Vec<std::cmp::Reverse<BlockId>>,
    /// Pool of plaintext payload boxes (`block_bytes` each).
    plain_boxes: Vec<BlockData>,
    /// Pool of sealed payload boxes (`block_bytes` + nonce + tag each).
    sealed_boxes: Vec<BlockData>,
    /// `seal_entries_batch`: sealed buffers staged for one batch sweep.
    batch_sealed: Vec<BlockData>,
}

impl Scratch {
    fn plans(&mut self) -> Vec<AccessPlan> {
        self.plan_lists.pop().unwrap_or_default()
    }

    fn touches(&mut self, capacity: usize) -> Vec<SlotTouch> {
        self.touch_lists
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(capacity))
    }

    fn recycle_plan(&mut self, plan: AccessPlan) {
        let AccessPlan { mut touches, .. } = plan;
        touches.clear();
        self.touch_lists.push(touches);
    }

    /// Pops a pooled payload box of exactly `len` bytes, or allocates one.
    fn payload_box(pool: &mut Vec<BlockData>, len: usize) -> BlockData {
        match pool.pop() {
            Some(b) if b.len() == len => b,
            _ => vec![0u8; len].into_boxed_slice(),
        }
    }
}

/// How one real-block fetch resolved under the fault layer.
enum FetchResolution {
    /// No corruption (or faults disabled): the transfer arrived intact.
    Clean,
    /// Corrupted, detected, and recovered by a bounded re-read.
    Recovered,
    /// Corrupted and the retry budget exhausted: payload lost.
    Unrecovered,
}

/// The Ring ORAM / String ORAM controller state machine.
pub struct RingOram {
    cfg: RingConfig,
    geometry: TreeGeometry,
    buckets: DetHashMap<BucketId, Bucket>,
    position_map: PositionMap,
    stash: Stash,
    /// Read paths since the last eviction (eviction fires at `A`).
    reads_since_eviction: u32,
    /// Eviction counter `G` driving the reverse lexicographic order.
    eviction_count: u64,
    /// Fraction of each fresh bucket's `Z` slots pre-filled with cold
    /// blocks.
    load_factor: f64,
    next_cold: u64,
    rng: StdRng,
    stats: ProtocolStats,
    /// E/D logic: when present, payloads are stored encrypted in the tree
    /// and re-encrypted with a fresh nonce on every write-back.
    cipher: Option<BlockCipher>,
    nonce_counter: u64,
    /// Fault injection and graceful degradation, when enabled.
    resilience: Option<ResilienceState>,
    /// Reusable buffers for the steady-state access path (see [`Scratch`]).
    scratch: Scratch,
}

impl std::fmt::Debug for RingOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingOram")
            .field("cfg", &self.cfg)
            .field("buckets_materialized", &self.buckets.len())
            .field("stash_len", &self.stash.len())
            .field("reads_since_eviction", &self.reads_since_eviction)
            .field("eviction_count", &self.eviction_count)
            .finish_non_exhaustive()
    }
}

/// Looks up `id` in `buckets`, cold-filling it on first touch (one hash
/// probe via the entry API). A free function over disjoint [`RingOram`]
/// fields so the hot read path can keep borrows of the other fields (the
/// RNG in particular) usable across the returned bucket reference.
#[allow(clippy::too_many_arguments)] // a borrow-split of RingOram's fields
fn materialize_entry<'a>(
    buckets: &'a mut DetHashMap<BucketId, Bucket>,
    geometry: &TreeGeometry,
    cfg: &RingConfig,
    load_factor: f64,
    position_map: &mut PositionMap,
    next_cold: &mut u64,
    rng: &mut StdRng,
    id: BucketId,
) -> &'a mut Bucket {
    buckets.entry(id).or_insert_with(|| {
        let level = geometry.level_of(id);
        let pos_in_level = id.0 - ((1u64 << level.0) - 1);
        let tail_bits = geometry.max_level() - level.0;
        let mut cold = Vec::new();
        for _ in 0..cfg.z {
            if rng.gen_bool(load_factor) {
                let block = BlockId(*next_cold);
                *next_cold += 1;
                let low = if tail_bits == 0 {
                    0
                } else {
                    rng.gen_range(0..(1u64 << tail_bits))
                };
                let path = PathId((pos_in_level << tail_bits) | low);
                position_map.insert(block, path);
                cold.push(block);
            }
        }
        Bucket::with_blocks(cfg, &cold, rng)
    })
}

impl RingOram {
    /// Identifiers at or above this value are reserved for cold (pre-loaded)
    /// blocks; program block ids must stay below it.
    pub const COLD_BASE: u64 = 1 << 40;

    /// Default pre-load factor (see the module docs). Calibrated to 0.7:
    /// back-computing from the paper's Fig. 13 green-fetch rates (3.26
    /// greens/read at Y=8 over 18 off-chip levels) implies buckets held
    /// roughly 70 % of their Z real slots in the paper's experiments.
    pub const DEFAULT_LOAD_FACTOR: f64 = 0.7;

    /// Creates a controller with the default pre-load factor.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RingConfig::validate`].
    #[must_use]
    pub fn new(cfg: RingConfig, seed: u64) -> Self {
        Self::with_load_factor(cfg, seed, Self::DEFAULT_LOAD_FACTOR)
    }

    /// Creates a controller whose lazily materialized buckets are pre-filled
    /// with `Binomial(Z, load_factor)` cold blocks each.
    ///
    /// Capacity rule: the program's working set plus the cold pre-load must
    /// fit the tree with slack — roughly
    /// `working_set + load_factor * real_capacity <= 0.9 * real_capacity` —
    /// otherwise surplus blocks have nowhere to evict, the stash saturates,
    /// and background eviction aborts (see [`Self::access`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or `load_factor` is outside `[0, 1]`.
    #[must_use]
    pub fn with_load_factor(cfg: RingConfig, seed: u64, load_factor: f64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid RingConfig: {e}");
        }
        assert!(
            (0.0..=1.0).contains(&load_factor),
            "load_factor must be in [0, 1]"
        );
        let geometry = TreeGeometry::new(cfg.levels);
        let position_map = PositionMap::new(geometry.leaf_count());
        Self {
            cfg,
            geometry,
            buckets: DetHashMap::default(),
            position_map,
            stash: Stash::new(),
            reads_since_eviction: 0,
            eviction_count: 0,
            load_factor,
            next_cold: Self::COLD_BASE,
            rng: StdRng::seed_from_u64(seed),
            stats: ProtocolStats::default(),
            cipher: None,
            nonce_counter: 0,
            resilience: None,
            scratch: Scratch::default(),
        }
    }

    /// Enables encryption-at-rest emulation with the fast (insecure)
    /// splitmix keystream: every payload written to the tree is sealed
    /// under `key` with a fresh nonce, and unsealed when it re-enters the
    /// trusted boundary. See [`crate::crypto`] for the cipher options.
    pub fn enable_encryption(&mut self, key: u64) {
        self.cipher = Some(BlockCipher::new(key));
    }

    /// Enables encryption-at-rest with AES-128-CTR (FIPS-197-verified
    /// implementation). The sealed format carries the same keyed integrity
    /// tag as the splitmix cipher — corruption of a sealed blob is detected
    /// on unseal — but the implementation is not constant-time, so it is
    /// simulation-grade only.
    pub fn enable_aes_encryption(&mut self, key: [u8; 16]) {
        self.cipher = Some(BlockCipher::aes(key));
    }

    /// Whether encryption-at-rest emulation is enabled.
    #[must_use]
    pub fn encryption_enabled(&self) -> bool {
        self.cipher.is_some()
    }

    /// Enables deterministic fault injection and graceful degradation.
    ///
    /// The fault schedule is drawn from a dedicated RNG seeded with
    /// `cfg.fault_seed`; it never touches the protocol RNG, so the access
    /// sequence of a faulty run is identical to the fault-free run with the
    /// same protocol seed. Detection of injected corruptions requires
    /// encryption to be enabled (the integrity tag lives in the sealed
    /// format); without a cipher, injected faults are logged but flow on
    /// undetected — which the `sim-verify` fault auditor flags.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ResilienceConfig::validate`] against the
    /// configured stash capacity.
    pub fn enable_resilience(&mut self, cfg: ResilienceConfig) {
        if let Err(e) = cfg.validate(self.cfg.stash_capacity) {
            panic!("invalid ResilienceConfig: {e}");
        }
        self.resilience = Some(ResilienceState {
            rng: StdRng::seed_from_u64(cfg.fault_seed),
            cfg,
            degraded: false,
            events: Vec::new(),
        });
    }

    /// Whether fault injection / graceful degradation is enabled.
    #[must_use]
    pub fn resilience_enabled(&self) -> bool {
        self.resilience.is_some()
    }

    /// Whether the controller is currently in degraded mode (CB green-slot
    /// substitution disabled until stash pressure drains).
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.resilience.as_ref().is_some_and(|r| r.degraded)
    }

    /// Drains and returns the accumulated fault-event log (empty when
    /// resilience is disabled or no faults fired since the last drain).
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        self.resilience
            .as_mut()
            .map(|r| std::mem::take(&mut r.events))
            .unwrap_or_default()
    }

    /// Appends a fault event to the log (no-op when resilience is off).
    fn record_fault(&mut self, access: u64, bucket: BucketId, slot: u32, kind: FaultEventKind) {
        if let Some(r) = self.resilience.as_mut() {
            r.events.push(FaultEvent {
                access,
                bucket,
                slot,
                kind,
            });
        }
    }

    /// Re-seals every payload-bearing entry in place, as one contiguous
    /// batch under consecutive nonces. Byte-identical to sealing each
    /// entry individually (same nonce sequence, same wire format), but the
    /// cipher sweeps the whole transaction's slots in one
    /// [`BlockCipher::seal_batch`] pass — round keys and the shared S-box
    /// are set up once, not per slot — with buffers drawn from the pools.
    fn seal_entries_batch(&mut self, entries: &mut [BlockEntry]) {
        if self.cipher.is_none() {
            return;
        }
        let mut outs = std::mem::take(&mut self.scratch.batch_sealed);
        for (_, d) in entries.iter() {
            if let Some(plain) = d.as_deref() {
                outs.push(Scratch::payload_box(
                    &mut self.scratch.sealed_boxes,
                    BlockCipher::sealed_len(plain.len()),
                ));
            }
        }
        if let Some(c) = &self.cipher {
            c.seal_batch(
                self.nonce_counter + 1,
                entries
                    .iter()
                    .filter_map(|(_, d)| d.as_deref())
                    .zip(outs.iter_mut().map(|o| &mut **o)),
            );
        }
        self.nonce_counter += outs.len() as u64;
        self.stats.encryptions += outs.len() as u64;
        // Stitch the sealed blobs back into slot order; recycle the plains.
        let mut sealed = outs.drain(..);
        for (_, d) in entries.iter_mut() {
            if let Some(plain) = d.take() {
                *d = sealed.next();
                self.scratch.plain_boxes.push(plain);
            }
        }
        drop(sealed);
        self.scratch.batch_sealed = outs;
    }

    /// Unseals a payload fetched from the tree into the trusted boundary.
    /// The plaintext buffer comes from the pool and the consumed sealed box
    /// is recycled — the mirror of [`Self::seal_entries_batch`].
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn unseal(&mut self, data: Option<BlockData>) -> Option<BlockData> {
        match (&self.cipher, data) {
            (Some(c), Some(d)) => {
                self.stats.decryptions += 1;
                let plain_len = d
                    .len()
                    .saturating_sub(BlockCipher::NONCE_BYTES + BlockCipher::TAG_BYTES);
                let mut out = Scratch::payload_box(&mut self.scratch.plain_boxes, plain_len);
                c.open_into(&d, &mut out)
                    .expect("tree payloads are always sealed");
                self.scratch.sealed_boxes.push(d);
                Some(out)
            }
            (_, d) => d,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// The tree geometry.
    #[must_use]
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// Current stash occupancy.
    #[must_use]
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Peak stash occupancy observed.
    #[must_use]
    pub fn stash_peak(&self) -> usize {
        self.stash.peak()
    }

    /// Number of buckets materialized so far.
    #[must_use]
    pub fn materialized_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn is_cached_level(&self, level: Level) -> bool {
        level.0 < self.cfg.tree_top_cached_levels
    }

    /// Materializes (if needed) and returns the bucket, pre-filling it with
    /// cold blocks pinned to compatible paths. Single hash probe on the hot
    /// path (the entry API folds lookup and first-touch insertion).
    fn bucket_mut(&mut self, id: BucketId) -> &mut Bucket {
        materialize_entry(
            &mut self.buckets,
            &self.geometry,
            &self.cfg,
            self.load_factor,
            &mut self.position_map,
            &mut self.next_cold,
            &mut self.rng,
            id,
        )
    }

    /// Ensures the bucket exists, creating it with cold content on first
    /// touch.
    fn materialize(&mut self, id: BucketId) {
        let _ = self.bucket_mut(id);
    }

    /// Performs one logical program access (ORAM treats loads and stores
    /// identically: fetch, update in stash, remap).
    ///
    /// Returns every memory transaction the access generated, in execution
    /// order: forced reshuffles, the read path, post-access early
    /// reshuffles, the periodic eviction when due, and any background
    /// eviction activity (dummy read paths plus extra evictions).
    ///
    /// # Panics
    ///
    /// Panics if `block` collides with the cold-block id space
    /// (`>= COLD_BASE`) or if background eviction cannot stabilize the
    /// stash (pathological configuration) — see [`Self::try_access`] for
    /// the non-panicking form.
    pub fn access(&mut self, block: BlockId) -> AccessOutcome {
        match self.try_access(block) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking form of [`Self::access`]: performs one logical program
    /// access and surfaces unrecoverable protocol failures as structured
    /// [`OramError`]s instead of aborting the process.
    ///
    /// # Errors
    ///
    /// [`OramError::StashOverflow`] when background eviction cannot drain
    /// the stash (the tree is over-full). The controller state is left as
    /// of the failed drain attempt; continuing to access it is allowed but
    /// will keep failing until pressure is relieved.
    ///
    /// # Panics
    ///
    /// Panics if `block` collides with the cold-block id space
    /// (`>= COLD_BASE`) — a caller bug, not a runtime condition.
    pub fn try_access(&mut self, block: BlockId) -> Result<AccessOutcome, OramError> {
        Ok(self.access_inner(block, None, false)?.0)
    }

    /// Plans one **cover access**: a dummy read path along a uniformly
    /// random path, with the same post-read bookkeeping as a program access
    /// (it advances the "`A` reads, one eviction" cadence, participates in
    /// early-reshuffle budgets, and samples stash occupancy). On the bus it
    /// is indistinguishable from the dummy read paths background eviction
    /// already issues, so a serving layer can pad empty submission slots
    /// with it — Cloak-style fixed-rate traffic shaping — without changing
    /// the distribution of what an adversary observes.
    ///
    /// No position-map entry is touched and no block is remapped: the
    /// access serves no program request (aside from CB green substitution,
    /// which opportunistically rides along exactly as it does on background
    /// dummy reads).
    ///
    /// # Errors
    ///
    /// [`OramError::StashOverflow`] under the same conditions as
    /// [`Self::try_access`].
    pub fn cover_access(&mut self) -> Result<AccessOutcome, OramError> {
        let mut plans = self.scratch.plans();
        let path = PathId(self.rng.gen_range(0..self.geometry.leaf_count()));
        let source = self.read_path(&mut plans, path, None, true);
        self.stats.dummy_read_paths += 1;
        self.after_read_path(&mut plans)?;
        self.stats.stash_samples.push(self.stash.len());
        Ok(AccessOutcome { plans, source })
    }

    /// Returns an [`AccessOutcome`]'s buffers to the controller's internal
    /// pools. Purely an optimization: callers that drop outcomes instead
    /// just let the pools refill lazily. The pipeline planner recycles
    /// every outcome it lowers, which is what keeps the steady-state access
    /// path allocation-free.
    pub fn recycle_outcome(&mut self, outcome: AccessOutcome) {
        let AccessOutcome { mut plans, .. } = outcome;
        for plan in plans.drain(..) {
            self.scratch.recycle_plan(plan);
        }
        self.scratch.plan_lists.push(plans);
    }

    /// Pre-sizes per-access bookkeeping (the stash-occupancy sample log)
    /// for `n` further accesses, so steady-state sampling never regrows
    /// its storage mid-run.
    pub fn reserve_accesses(&mut self, n: usize) {
        self.stats.stash_samples.reserve(n);
    }

    /// Reads a block's payload through the oblivious protocol: performs a
    /// full [`Self::access`] and returns a copy of the block's current data
    /// (`None` until the first [`Self::write_block`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::access`].
    pub fn read_block(&mut self, block: BlockId) -> (AccessOutcome, Option<Vec<u8>>) {
        match self.access_inner(block, None, true) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Writes a block's payload through the oblivious protocol: performs a
    /// full [`Self::access`] (fetching the old copy) and replaces the
    /// payload; the data is (re-)encrypted when it is next evicted into the
    /// tree.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match the configured block size, or under
    /// the same conditions as [`Self::access`].
    pub fn write_block(&mut self, block: BlockId, data: &[u8]) -> AccessOutcome {
        assert_eq!(
            data.len(),
            self.cfg.block_bytes as usize,
            "payload must be exactly block_bytes long"
        );
        match self.access_inner(block, Some(data), false) {
            Ok(out) => out.0,
            Err(e) => panic!("{e}"),
        }
    }

    /// Shared access core: read path, remap, optional payload update, then
    /// eviction/background bookkeeping. The payload snapshot is taken
    /// *before* [`Self::after_read_path`], because the periodic eviction
    /// may legitimately sweep the freshly fetched block back into the tree
    /// within the same logical access.
    fn access_inner(
        &mut self,
        block: BlockId,
        new_data: Option<&[u8]>,
        capture_data: bool,
    ) -> Result<(AccessOutcome, Option<Vec<u8>>), OramError> {
        assert!(
            block.0 < Self::COLD_BASE,
            "program block ids must be below COLD_BASE"
        );
        let mut plans = self.scratch.plans();

        let known = self.position_map.lookup(block).is_some();
        let path = self.position_map.lookup_or_assign(block, &mut self.rng);

        let source = self.read_path(&mut plans, path, Some(block), known);
        self.stats.read_paths += 1;

        // Remap the target and record it (back) in the stash with its new
        // path; the program's store/load happens against the stash copy.
        // The read-path walk already parked the fetched payload (if any) in
        // the stash, so only the path assignment changes here.
        let new_path = self.position_map.remap(block, &mut self.rng);
        self.stash.insert(block, new_path);
        if let Some(d) = new_data {
            self.stash.set_data(block, d.to_vec().into_boxed_slice());
        }
        // Copying the payload out is only needed by `read_block`; plain
        // accesses skip it so the hot path stays allocation-free.
        let data = if capture_data {
            self.stash.data_of(block).map(<[u8]>::to_vec)
        } else {
            None
        };

        self.after_read_path(&mut plans)?;
        self.stats.stash_samples.push(self.stash.len());
        Ok((AccessOutcome { plans, source }, data))
    }

    /// Bookkeeping shared by program and dummy read paths: fire the
    /// periodic eviction and keep the stash below its threshold.
    ///
    /// # Errors
    ///
    /// [`OramError::StashOverflow`] when the capacity drain loop cannot
    /// make progress (over-full tree).
    fn after_read_path(&mut self, plans: &mut Vec<AccessPlan>) -> Result<(), OramError> {
        self.reads_since_eviction += 1;
        if self.reads_since_eviction == self.cfg.a {
            self.reads_since_eviction = 0;
            plans.push(self.evict());
        }

        // Escalation watermark: once stash pressure crosses the (soft)
        // escalation threshold, run one extra leakage-free background round
        // per access so pressure drains before the hard capacity loop is
        // ever needed. Occupancy is a deterministic function of the access
        // stream alone (fault injection never adds or removes stash
        // blocks), so escalation does not leak fault locations.
        let peak_occupancy = self.stash.len();
        let escalate = self
            .resilience
            .as_ref()
            .is_some_and(|r| peak_occupancy >= r.cfg.escalation_watermark);
        if escalate {
            self.background_round(plans);
            self.stats.background_escalations += 1;
        }

        // Background eviction: while the stash is at or above its
        // provisioned capacity, issue leakage-free dummy read paths until
        // the eviction interval A is reached, then evict; repeat. The
        // access sequence on the bus remains "A read paths, one eviction"
        // forever, so the stash pressure is not observable.
        let mut guard = 0u32;
        while self.stash.len() >= self.cfg.stash_capacity {
            guard += 1;
            if guard > 1024 {
                return Err(OramError::StashOverflow {
                    occupancy: self.stash.len(),
                    capacity: self.cfg.stash_capacity,
                    real_capacity: self.cfg.real_capacity_blocks(),
                });
            }
            self.background_round(plans);
            self.stats.background_evictions += 1;
        }

        // Degraded-mode hysteresis: entry is decided on the access's *peak*
        // occupancy (before the escalation and capacity rounds relieved it
        // — the spike is the signal that green substitution is feeding the
        // stash faster than eviction drains it), while exit requires the
        // *drained* occupancy to fall to the resume watermark. While
        // degraded, green substitution is suspended, cutting stash inflow.
        if let Some(r) = self.resilience.as_mut() {
            if !r.degraded && peak_occupancy >= r.cfg.degrade_watermark {
                r.degraded = true;
                self.stats.degraded_entries += 1;
            } else if r.degraded && self.stash.len() <= r.cfg.resume_watermark {
                r.degraded = false;
                self.stats.degraded_exits += 1;
            }
        }
        Ok(())
    }

    /// One leakage-free background round: dummy read paths until the
    /// eviction interval `A` is reached, then the eviction. Keeps the
    /// public "A reads, one eviction" cadence intact.
    fn background_round(&mut self, plans: &mut Vec<AccessPlan>) {
        loop {
            let p = PathId(self.rng.gen_range(0..self.geometry.leaf_count()));
            let _ = self.read_path(plans, p, None, true);
            self.stats.dummy_read_paths += 1;
            self.reads_since_eviction += 1;
            if self.reads_since_eviction == self.cfg.a {
                self.reads_since_eviction = 0;
                break;
            }
        }
        plans.push(self.evict());
    }

    /// Executes one (possibly dummy) read path along `path`, appending the
    /// generated plans. Returns where the target was found.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn read_path(
        &mut self,
        plans: &mut Vec<AccessPlan>,
        path: PathId,
        target: Option<BlockId>,
        known: bool,
    ) -> TargetSource {
        let (mut source, mut searching) = match target {
            Some(_) if !known => {
                self.stats.new_blocks += 1;
                (TargetSource::New, false)
            }
            Some(b) if self.stash.contains(b) => {
                self.stats.targets_from_stash += 1;
                (TargetSource::Stash, false)
            }
            Some(_) => (TargetSource::Stash, true), // provisional until found
            None => (TargetSource::Stash, false),   // dummy read path
        };

        let mut touches = self.scratch.touches(self.cfg.levels as usize);
        let mut target_index = None;
        let mut reshuffles = std::mem::take(&mut self.scratch.reshuffles);
        // Off-chip buckets whose dummy budget `S` this path exhausted,
        // in level order; early-reshuffled after the path is emitted.
        let mut exhausted = std::mem::take(&mut self.scratch.exhausted);
        // Retry traffic accumulated by the fault layer: extra reads of
        // already-public slots, emitted as one RetryRead plan after the
        // read path itself.
        let mut retry_touches = self.scratch.touches(0);
        let mut retry_target_index = None;
        // Degraded mode gates CB green substitution for the whole path;
        // the flag only changes in `after_read_path`, never mid-path.
        let allow_green = !self.degraded();

        for lvl in 0..self.cfg.levels {
            let level = Level(lvl);
            let id = self.geometry.bucket_at(path, level);
            if self.is_cached_level(level) {
                // On-chip levels: a target found here is taken directly;
                // no memory traffic, no metadata churn.
                if searching {
                    if let Some(b) = target {
                        let bucket = self.bucket_mut(id);
                        if let Some(slot) = bucket.find(b) {
                            let data = bucket.clear_slot(slot);
                            let data = self.unseal(data);
                            self.stash.insert_with_data(b, path, data);
                            self.stats.targets_from_treetop += 1;
                            source = TargetSource::TreeTop(level);
                            searching = false;
                        }
                    }
                }
                continue;
            }

            // CB-specific: reshuffle first if the bucket cannot serve a
            // non-target touch and does not hold the target.
            let cfg = self.cfg.clone();
            let want = if searching { target } else { None };
            let mut bucket = materialize_entry(
                &mut self.buckets,
                &self.geometry,
                &cfg,
                self.load_factor,
                &mut self.position_map,
                &mut self.next_cold,
                &mut self.rng,
                id,
            );
            // `holds_target` must follow `want`, not `target`: once the
            // search has ended, the bucket must serve a dummy/green even if
            // it happens to hold the (stale) target block.
            let holds_target = want.is_some_and(|b| bucket.find(b).is_some());
            if !holds_target && bucket.needs_reshuffle_gated(&cfg, allow_green) {
                reshuffles.push(self.reshuffle_bucket(id));
                self.stats.forced_reshuffles += 1;
                bucket = self.buckets.get_mut(&id).expect("materialized above");
            }
            let (slot, kind, data) =
                bucket.serve_read_gated(&cfg, want, allow_green, &mut self.rng);
            // Budget exhaustion is decided now (this path's touch included):
            // the bucket is revisited only by its own early reshuffle below,
            // so sampling here matches the post-path scan it replaces.
            if bucket.accesses() >= cfg.s {
                exhausted.push(id);
            }
            match kind {
                FetchKind::Target(b) => {
                    debug_assert_eq!(Some(b), target);
                    let (data, resolution) =
                        self.resolve_fetch(id, slot as u32, data, &mut retry_touches);
                    self.stash.insert_with_data(b, path, data);
                    self.stats.targets_from_tree += 1;
                    source = TargetSource::Tree(level);
                    searching = false;
                    target_index = Some(touches.len());
                    if matches!(resolution, FetchResolution::Recovered) {
                        // The program's data arrives with the *last* retry
                        // of this fetch; the RetryRead plan carries that as
                        // its target index for latency accounting.
                        retry_target_index = Some(retry_touches.len() - 1);
                    }
                }
                FetchKind::Green(b) => {
                    // The green block keeps its current path assignment; it
                    // was never identified on the bus, so no remap needed.
                    let p = self
                        .position_map
                        .lookup(b)
                        .expect("green blocks are always mapped");
                    let (data, _) = self.resolve_fetch(id, slot as u32, data, &mut retry_touches);
                    self.stash.insert_with_data(b, p, data);
                    self.stats.greens_fetched += 1;
                }
                FetchKind::Dummy => {}
            }
            touches.push(SlotTouch::read(id, slot as u32));
        }

        // Emit forced reshuffles before the read path itself (they must
        // complete before the path can be read), then the read path, then
        // the post-access early reshuffles for buckets that hit budget S.
        plans.append(&mut reshuffles);
        self.scratch.reshuffles = reshuffles;
        let kind = if target.is_some() {
            OpKind::ReadPath
        } else {
            OpKind::DummyReadPath
        };
        plans.push(AccessPlan::new(kind, touches, target_index));
        if retry_touches.is_empty() {
            self.scratch.touch_lists.push(retry_touches);
        } else {
            plans.push(AccessPlan::new(
                OpKind::RetryRead,
                retry_touches,
                retry_target_index,
            ));
        }

        for &id in &exhausted {
            let plan = self.reshuffle_bucket(id);
            plans.push(plan);
            self.stats.early_reshuffles += 1;
        }
        exhausted.clear();
        self.scratch.exhausted = exhausted;
        source
    }

    /// Runs one fetched real block through the transit-fault pipeline:
    /// decides from the fault schedule whether the transfer was corrupted,
    /// verifies integrity via the sealed format's tag, and performs bounded
    /// re-reads (the DRAM-resident copy is intact, so a clean re-transfer
    /// recovers). Appends one read touch per retry to `retry_touches` and
    /// returns the surviving (unsealed) payload plus how the fetch
    /// resolved.
    ///
    /// Without a cipher there is no integrity tag: the corruption is
    /// applied to the raw payload (when one exists) and flows on
    /// *undetected* — the fault log records only `Injected`, which the
    /// `sim-verify` fault auditor flags as a missed detection.
    fn resolve_fetch(
        &mut self,
        id: BucketId,
        slot: u32,
        data: Option<BlockData>,
        retry_touches: &mut Vec<SlotTouch>,
    ) -> (Option<BlockData>, FetchResolution) {
        let (rate, max_retries) = match self.resilience.as_ref() {
            Some(r) if r.cfg.bit_flip_rate > 0.0 => (r.cfg.bit_flip_rate, r.cfg.max_retries),
            _ => return (self.unseal(data), FetchResolution::Clean),
        };
        let access = self.stats.read_paths;
        let corrupted = self
            .resilience
            .as_mut()
            .is_some_and(|r| r.rng.gen_bool(rate));
        if !corrupted {
            return (self.unseal(data), FetchResolution::Clean);
        }

        self.record_fault(access, id, slot, FaultEventKind::Injected);
        self.stats.faults_injected += 1;

        if self.cipher.is_none() {
            // No integrity tag: garble the payload copy (the simulator
            // stores payloads lazily; metadata-only fetches have nothing to
            // garble) and proceed as if nothing happened.
            let garbled = match (data, self.resilience.as_mut()) {
                (Some(mut d), Some(r)) if !d.is_empty() => {
                    let bit = r.rng.gen_range(0..(d.len() as u64 * 8)) as usize;
                    d[bit / 8] ^= 1 << (bit % 8);
                    Some(d)
                }
                (d, _) => d,
            };
            return (garbled, FetchResolution::Clean);
        }

        // Detection: when a payload exists, physically corrupt a copy of
        // the sealed bytes and let the tag verification fail; metadata-only
        // fetches model the same check directly (a real controller MACs the
        // whole slot transfer, payload and all — the simulator just does
        // not materialize untouched payload bytes).
        if let (Some(c), Some(d), Some(r)) = (&self.cipher, &data, self.resilience.as_mut()) {
            let mut copy = d.to_vec();
            let bit = r.rng.gen_range(0..(copy.len() as u64 * 8)) as usize;
            copy[bit / 8] ^= 1 << (bit % 8);
            debug_assert!(
                c.open(&copy).is_err(),
                "a corrupted transfer must fail its integrity tag"
            );
        }
        self.record_fault(access, id, slot, FaultEventKind::Detected);
        self.stats.faults_detected += 1;

        // Bounded recovery: re-read the same (already public) slot up to
        // `max_retries` times; each re-transfer is independently subject to
        // corruption.
        let mut recovered = false;
        for _ in 0..max_retries {
            self.record_fault(access, id, slot, FaultEventKind::Retried);
            self.stats.fault_retries += 1;
            retry_touches.push(SlotTouch::read(id, slot));
            let again = self
                .resilience
                .as_mut()
                .is_some_and(|r| r.rng.gen_bool(rate));
            if again {
                self.record_fault(access, id, slot, FaultEventKind::Injected);
                self.stats.faults_injected += 1;
                self.record_fault(access, id, slot, FaultEventKind::Detected);
                self.stats.faults_detected += 1;
                continue;
            }
            recovered = true;
            break;
        }
        if recovered {
            self.record_fault(access, id, slot, FaultEventKind::Recovered);
            self.stats.faults_recovered += 1;
            (self.unseal(data), FetchResolution::Recovered)
        } else {
            self.record_fault(access, id, slot, FaultEventKind::Unrecovered);
            self.stats.faults_unrecovered += 1;
            (None, FetchResolution::Unrecovered)
        }
    }

    /// Early-reshuffles `id`: reads its `Z` real slots and rewrites the full
    /// bucket with fresh metadata and permutation.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn reshuffle_bucket(&mut self, id: BucketId) -> AccessPlan {
        let z = self.cfg.z;
        let slots = self.cfg.bucket_slots();
        let cfg = self.cfg.clone();
        self.materialize(id);
        let bucket = self.buckets.get_mut(&id).expect("materialized");
        // Capture current real-slot indices for the read touches.
        let mut read_slots = std::mem::take(&mut self.scratch.real_slots);
        read_slots.extend((0..slots).filter(|&s| bucket.slot_holds_real(s as usize)));
        let mut entries = std::mem::take(&mut self.scratch.entries);
        bucket.take_real_blocks_into(&mut entries);
        // Re-encrypt every surviving payload under a fresh nonce (the
        // reshuffle's defining obligation besides the permutation): unseal
        // each entry, then re-seal the whole bucket as one contiguous batch.
        let mut resealed = std::mem::take(&mut self.scratch.resealed);
        for (b, d) in entries.drain(..) {
            let plain = self.unseal(d);
            resealed.push((b, plain));
        }
        self.seal_entries_batch(&mut resealed);
        self.buckets
            .get_mut(&id)
            .expect("materialized")
            .reload(&cfg, &mut resealed, &mut self.rng);
        self.scratch.entries = entries;
        self.scratch.resealed = resealed;

        let mut touches = self.scratch.touches((z + slots) as usize);
        // Read phase: Z slot reads (the real slots, padded to Z).
        let mut filler = 0u32;
        while (read_slots.len() as u32) < z {
            if !read_slots.contains(&filler) {
                read_slots.push(filler);
            }
            filler += 1;
        }
        read_slots.truncate(z as usize);
        for &s in &read_slots {
            touches.push(SlotTouch::read(id, s));
        }
        read_slots.clear();
        self.scratch.real_slots = read_slots;
        // Write phase: full bucket rewrite.
        for s in 0..slots {
            touches.push(SlotTouch::write(id, s));
        }
        AccessPlan::new(OpKind::EarlyReshuffle, touches, None)
    }

    /// Performs the periodic eviction along the next reverse-lexicographic
    /// path: reads the `Z` real slots of every bucket on the path into the
    /// stash, then rewrites the buckets leaf-to-root with as many compatible
    /// stash blocks as fit.
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    fn evict(&mut self) -> AccessPlan {
        let path = self
            .geometry
            .reverse_lexicographic_path(self.eviction_count);
        self.eviction_count += 1;
        self.stats.evictions += 1;

        let z = self.cfg.z;
        let slots = self.cfg.bucket_slots();
        let mut touches = self.scratch.touches(0);
        let mut read_slots = std::mem::take(&mut self.scratch.real_slots);
        let mut entries = std::mem::take(&mut self.scratch.entries);

        // Read phase (root to leaf): pull every real block into the stash.
        for lvl in 0..self.cfg.levels {
            let level = Level(lvl);
            let id = self.geometry.bucket_at(path, level);
            let off_chip = !self.is_cached_level(level);
            self.materialize(id);
            let bucket = self.buckets.get_mut(&id).expect("materialized");
            read_slots.clear();
            read_slots.extend((0..slots).filter(|&s| bucket.slot_holds_real(s as usize)));
            bucket.take_real_blocks_into(&mut entries);
            if off_chip {
                let mut filler = 0u32;
                while (read_slots.len() as u32) < z {
                    if !read_slots.contains(&filler) {
                        read_slots.push(filler);
                    }
                    filler += 1;
                }
                read_slots.truncate(z as usize);
                for &s in &read_slots {
                    touches.push(SlotTouch::read(id, s));
                }
            }
            for (b, d) in entries.drain(..) {
                let p = self
                    .position_map
                    .lookup(b)
                    .expect("tree blocks are always mapped");
                let d = self.unseal(d);
                self.stash.insert_with_data(b, p, d);
            }
        }
        read_slots.clear();
        self.scratch.real_slots = read_slots;
        self.scratch.entries = entries;

        // Write phase (leaf to root): greedy deepest-first placement. The
        // candidate set is snapshotted once — the phase only removes stash
        // entries, so selecting from the snapshot picks exactly the blocks
        // a fresh per-level scan would. Candidates are grouped by their
        // deepest eligible level; walking leaf to root, each level's group
        // joins a min-heap, so popping yields the eligible blocks in
        // ascending block id — the same deterministic order a sorted
        // per-level scan would select, without sorting or rescanning.
        let mut by_depth = std::mem::take(&mut self.scratch.by_depth);
        by_depth.resize_with(self.cfg.levels as usize, Vec::new);
        self.stash
            .for_each_candidate(&self.geometry, path, |b, depth| {
                by_depth[depth.0 as usize].push(b);
            });
        let mut eligible =
            std::collections::BinaryHeap::from(std::mem::take(&mut self.scratch.eligible));
        let mut sealed = std::mem::take(&mut self.scratch.resealed);
        for lvl in (0..self.cfg.levels).rev() {
            let level = Level(lvl);
            let id = self.geometry.bucket_at(path, level);
            let off_chip = !self.is_cached_level(level);
            for &b in &by_depth[lvl as usize] {
                eligible.push(std::cmp::Reverse(b));
            }
            while sealed.len() < z as usize {
                let Some(std::cmp::Reverse(b)) = eligible.pop() else {
                    break;
                };
                let d = self.stash.take(b).expect("candidate still stashed");
                sealed.push((b, d));
            }
            // One contiguous crypto sweep per bucket instead of a cipher
            // setup per slot; nonce order matches the per-slot code.
            self.seal_entries_batch(&mut sealed);
            let cfg = self.cfg.clone();
            self.buckets
                .get_mut(&id)
                .expect("materialized in read phase")
                .reload(&cfg, &mut sealed, &mut self.rng);
            if off_chip {
                for s in 0..slots {
                    touches.push(SlotTouch::write(id, s));
                }
            }
        }
        for group in &mut by_depth {
            group.clear();
        }
        self.scratch.by_depth = by_depth;
        let mut eligible = eligible.into_vec();
        eligible.clear();
        self.scratch.eligible = eligible;
        self.scratch.resealed = sealed;
        AccessPlan::new(OpKind::Eviction, touches, None)
    }

    /// Verifies the controller's core invariants; intended for tests and
    /// debugging (cost is proportional to position-map size).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        for (block, path) in self.position_map_entries() {
            if self.stash.contains(block) {
                continue;
            }
            let mut found = false;
            for lvl in 0..self.cfg.levels {
                let id = self.geometry.bucket_at(path, Level(lvl));
                if let Some(b) = self.buckets.get(&id) {
                    if b.find(block).is_some() {
                        found = true;
                        break;
                    }
                }
            }
            assert!(
                found,
                "{block} mapped to {path} is neither in stash nor on its path"
            );
        }
        for (id, b) in &self.buckets {
            assert!(
                b.real_count() <= self.cfg.z as usize,
                "bucket {id} over capacity"
            );
            assert!(
                b.accesses() <= self.cfg.s,
                "bucket {id} over its access budget"
            );
        }
    }

    fn position_map_entries(&self) -> Vec<(BlockId, PathId)> {
        // Exposed through a helper so `check_invariants` can iterate without
        // making PositionMap's internals public.
        self.position_map.entries()
    }

    /// Snapshot of every `(block, path)` pair the position map tracks, in
    /// unspecified order: the blocks currently *resident* in this ORAM
    /// instance (pre-loaded or touched). Hardware has no such operation;
    /// it exists for invariant checks — in particular the cross-shard
    /// residency audit, which proves no block lives in two shard ORAMs.
    #[must_use]
    pub fn position_entries(&self) -> Vec<(BlockId, PathId)> {
        self.position_map_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oram(cfg: RingConfig) -> RingOram {
        RingOram::with_load_factor(cfg, 42, 0.5)
    }

    #[test]
    fn first_access_is_new_and_generates_full_path_reads() {
        let cfg = RingConfig::test_small(); // 8 levels, no tree-top cache
        let mut o = oram(cfg.clone());
        let out = o.access(BlockId(1));
        assert_eq!(out.source, TargetSource::New);
        let read = out
            .plans
            .iter()
            .find(|p| p.kind == OpKind::ReadPath)
            .expect("read path plan");
        assert_eq!(read.reads(), cfg.levels as usize);
        assert_eq!(read.writes(), 0);
    }

    #[test]
    fn eviction_fires_every_a_reads() {
        let cfg = RingConfig::test_small(); // A = 3
        let mut o = oram(cfg);
        let mut evictions = 0;
        for i in 0..9 {
            let out = o.access(BlockId(i));
            evictions += out
                .plans
                .iter()
                .filter(|p| p.kind == OpKind::Eviction)
                .count();
        }
        assert_eq!(evictions, 3);
    }

    #[test]
    fn eviction_plan_shape() {
        let cfg = RingConfig::test_small(); // Z=4, S=4, 8 levels
        let mut o = oram(cfg.clone());
        let mut plans = Vec::new();
        for i in 0..3 {
            plans.extend(o.access(BlockId(i)).plans);
        }
        let evict = plans
            .iter()
            .find(|p| p.kind == OpKind::Eviction)
            .expect("eviction after A reads");
        assert_eq!(evict.reads(), (cfg.levels * cfg.z) as usize);
        assert_eq!(evict.writes(), (cfg.levels * cfg.bucket_slots()) as usize);
    }

    #[test]
    fn repeat_access_finds_block() {
        let cfg = RingConfig::test_small();
        let mut o = oram(cfg);
        let _ = o.access(BlockId(7));
        // Drive some evictions so the block lands in the tree.
        for i in 100..112 {
            let _ = o.access(BlockId(i));
        }
        let out = o.access(BlockId(7));
        assert!(
            matches!(
                out.source,
                TargetSource::Tree(_) | TargetSource::Stash | TargetSource::TreeTop(_)
            ),
            "block must be found somewhere: {:?}",
            out.source
        );
    }

    #[test]
    fn invariants_hold_over_many_accesses() {
        let cfg = RingConfig::test_small();
        let mut o = oram(cfg);
        for i in 0..200 {
            let _ = o.access(BlockId(i % 37));
        }
        o.check_invariants();
    }

    #[test]
    fn invariants_hold_with_cb() {
        let cfg = RingConfig::test_small_cb();
        let mut o = oram(cfg);
        for i in 0..200 {
            let _ = o.access(BlockId(i % 37));
        }
        o.check_invariants();
        assert!(o.stats().greens_fetched > 0, "CB must fetch greens");
    }

    #[test]
    fn baseline_never_fetches_greens_or_forces_reshuffles() {
        let cfg = RingConfig::test_small(); // Y = 0
        let mut o = oram(cfg);
        for i in 0..300 {
            let _ = o.access(BlockId(i % 50));
        }
        assert_eq!(o.stats().greens_fetched, 0);
        assert_eq!(o.stats().forced_reshuffles, 0);
    }

    #[test]
    fn cb_reduces_eviction_writes() {
        let base = RingConfig::test_small();
        let cb = RingConfig::test_small_cb();
        assert_eq!(
            cb.bucket_slots() + cb.y,
            base.bucket_slots(),
            "CB saves exactly Y slots"
        );
    }

    #[test]
    fn tree_top_cache_shortens_read_path() {
        let mut cfg = RingConfig::test_small();
        cfg.tree_top_cached_levels = 3;
        let mut o = oram(cfg.clone());
        let out = o.access(BlockId(1));
        let read = out
            .plans
            .iter()
            .find(|p| p.kind == OpKind::ReadPath)
            .unwrap();
        assert_eq!(read.reads(), (cfg.levels - 3) as usize);
    }

    #[test]
    fn stash_pressure_triggers_background_eviction() {
        let mut cfg = RingConfig::test_small_cb();
        cfg.y = 4; // most aggressive CB rate (Y = Z)
        cfg.stash_capacity = 15; // tiny stash
        let mut o = RingOram::with_load_factor(cfg, 1, 0.5);
        let mut dummy_reads = 0;
        for i in 0..400 {
            let out = o.access(BlockId(i % 61));
            dummy_reads += out
                .plans
                .iter()
                .filter(|p| p.kind == OpKind::DummyReadPath)
                .count();
        }
        assert!(
            o.stats().background_evictions > 0,
            "tiny stash + aggressive CB must trigger background eviction"
        );
        assert!(dummy_reads > 0, "dummy reads precede background evictions");
        assert!(
            o.stash_len() < 15 + 64,
            "stash stays near its bound: {}",
            o.stash_len()
        );
        o.check_invariants();
    }

    #[test]
    fn early_reshuffle_occurs_under_pressure() {
        // Hammer a small tree so root-adjacent buckets hit budget S.
        let mut cfg = RingConfig::test_small();
        cfg.levels = 4;
        cfg.a = 6; // slow evictions so buckets hit S = 4 first
        let mut o = oram(cfg);
        for i in 0..200 {
            let _ = o.access(BlockId(i % 8));
        }
        assert!(o.stats().early_reshuffles > 0);
        o.check_invariants();
    }

    #[test]
    fn stash_samples_track_reads() {
        let cfg = RingConfig::test_small();
        let mut o = oram(cfg);
        for i in 0..10 {
            let _ = o.access(BlockId(i));
        }
        assert_eq!(o.stats().stash_samples.len(), 10);
    }

    #[test]
    #[should_panic(expected = "below COLD_BASE")]
    fn cold_id_space_protected() {
        let mut o = oram(RingConfig::test_small());
        let _ = o.access(BlockId(RingOram::COLD_BASE));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut o = RingOram::new(RingConfig::test_small(), seed);
            let mut total = 0usize;
            for i in 0..50 {
                total += o.access(BlockId(i % 11)).plans.len();
            }
            (total, o.stash_len())
        };
        assert_eq!(run(5), run(5));
        // Different seeds almost surely diverge in stash occupancy or plan
        // count; allow equality of one but not both in the rare case.
        let a = run(5);
        let b = run(6);
        assert!(a != b || a.0 == b.0, "seeds should influence the run");
    }

    #[test]
    fn written_data_survives_heavy_churn() {
        let cfg = RingConfig::test_small(); // 64 B blocks
        let mut o = oram(cfg);
        let blocks = 24u64;
        for i in 0..blocks {
            let mut data = vec![0u8; 64];
            data[0] = i as u8;
            data[63] = (i * 3) as u8;
            let _ = o.write_block(BlockId(i), &data);
        }
        // Churn: many interleaved reads force evictions, reshuffles and
        // (with CB configs) green movements.
        for round in 0..20 {
            for i in 0..blocks {
                let (_, data) = o.read_block(BlockId((i * 7 + round) % blocks));
                let id = (i * 7 + round) % blocks;
                let data = data.expect("written block has data");
                assert_eq!(data[0], id as u8, "block {id} corrupted");
                assert_eq!(data[63], (id * 3) as u8, "block {id} corrupted");
            }
        }
        o.check_invariants();
    }

    #[test]
    fn written_data_survives_with_cb_and_encryption() {
        let mut cfg = RingConfig::test_small_cb();
        cfg.y = 4; // aggressive: greens move data through the stash
        let mut o = RingOram::with_load_factor(cfg, 9, 0.5);
        o.enable_aes_encryption(*b"sixteen byte key");
        assert!(o.encryption_enabled());
        let blocks = 16u64;
        for i in 0..blocks {
            let _ = o.write_block(BlockId(i), &[i as u8; 64]);
        }
        for round in 0..25 {
            let id = (round * 5) % blocks;
            let (_, data) = o.read_block(BlockId(id));
            assert_eq!(data.expect("present"), vec![id as u8; 64]);
        }
        let s = o.stats();
        assert!(s.encryptions > 0, "payloads must be sealed into the tree");
        assert!(s.decryptions > 0, "payloads must be unsealed on fetch");
        o.check_invariants();
    }

    #[test]
    fn unwritten_blocks_read_as_none() {
        let mut o = oram(RingConfig::test_small());
        let (_, data) = o.read_block(BlockId(5));
        assert_eq!(data, None);
    }

    #[test]
    fn overwrite_returns_latest_data() {
        let mut o = oram(RingConfig::test_small());
        let _ = o.write_block(BlockId(1), &[1u8; 64]);
        // Force tree residency via evictions.
        for i in 10..30 {
            let _ = o.access(BlockId(i));
        }
        let _ = o.write_block(BlockId(1), &[2u8; 64]);
        for i in 30..50 {
            let _ = o.access(BlockId(i));
        }
        let (_, data) = o.read_block(BlockId(1));
        assert_eq!(data, Some(vec![2u8; 64]));
    }

    #[test]
    #[should_panic(expected = "block_bytes")]
    fn write_block_size_checked() {
        let mut o = oram(RingConfig::test_small());
        let _ = o.write_block(BlockId(1), &[0u8; 7]);
    }

    #[test]
    fn encryption_does_not_change_access_pattern() {
        // The plans (physical touches) must be identical with and without
        // encryption: E/D is inside the trusted boundary.
        let run = |encrypt: bool| {
            let mut o = oram(RingConfig::test_small());
            if encrypt {
                o.enable_encryption(3);
            }
            let mut log = Vec::new();
            for i in 0..60 {
                let out = o.write_block(BlockId(i % 13), &[i as u8; 64]);
                for p in out.plans {
                    log.push((p.kind, p.touches));
                }
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    fn resilient(rate: f64, max_retries: u32) -> RingOram {
        let cfg = RingConfig::test_small_cb();
        let mut o = RingOram::with_load_factor(cfg.clone(), 42, 0.5);
        o.enable_encryption(7);
        let mut r = ResilienceConfig::for_stash(cfg.stash_capacity);
        r.bit_flip_rate = rate;
        r.max_retries = max_retries;
        o.enable_resilience(r);
        o
    }

    #[test]
    fn faults_never_change_the_access_pattern() {
        // The fault RNG is separate from the protocol RNG, so the
        // (kind, touches) sequence of every non-retry plan is identical
        // between a faulty and a fault-free run with the same seed.
        let run = |rate: f64| {
            let mut o = resilient(rate, 2);
            let mut log = Vec::new();
            for i in 0..120 {
                let out = o.access(BlockId(i % 17));
                for p in out.plans {
                    if p.kind != OpKind::RetryRead {
                        log.push((p.kind, p.touches));
                    }
                }
            }
            log
        };
        assert_eq!(run(0.0), run(0.15));
    }

    #[test]
    fn injected_faults_are_detected_and_mostly_recovered() {
        let mut o = resilient(0.2, 4);
        for i in 0..300 {
            let _ = o.write_block(BlockId(i % 23), &[i as u8; 64]);
        }
        let s = o.stats().clone();
        assert!(s.faults_injected > 0, "a 20 % rate must inject faults");
        assert_eq!(
            s.faults_injected, s.faults_detected,
            "with encryption every injected corruption is detected"
        );
        assert!(s.fault_retries > 0);
        assert!(s.faults_recovered > 0);
        assert_eq!(
            s.faults_recovered + s.faults_unrecovered,
            s.faults_detected - (s.fault_retries - s.faults_recovered),
            "every first-detection resolves as recovered or unrecovered"
        );
        o.check_invariants();
    }

    #[test]
    fn retries_disabled_means_unrecovered() {
        let mut o = resilient(0.3, 0);
        for i in 0..100 {
            let _ = o.access(BlockId(i % 11));
        }
        let s = o.stats();
        assert!(s.faults_injected > 0);
        assert_eq!(s.fault_retries, 0);
        assert_eq!(s.faults_recovered, 0);
        assert_eq!(s.faults_unrecovered, s.faults_detected);
    }

    #[test]
    fn retry_plans_re_read_public_slots() {
        let mut o = resilient(0.25, 2);
        let mut saw_retry = false;
        for i in 0..200 {
            let out = o.access(BlockId(i % 13));
            for (idx, p) in out.plans.iter().enumerate() {
                if p.kind != OpKind::RetryRead {
                    continue;
                }
                saw_retry = true;
                assert!(p.reads() >= 1);
                assert_eq!(p.writes(), 0);
                // Every retried (bucket, slot) was already touched by a
                // read plan earlier in the same access.
                let prior: Vec<_> = out.plans[..idx]
                    .iter()
                    .flat_map(|q| q.touches.iter())
                    .map(|t| (t.bucket, t.slot))
                    .collect();
                for t in &p.touches {
                    assert!(
                        prior.contains(&(t.bucket, t.slot)),
                        "retry of a slot never made public"
                    );
                }
            }
        }
        assert!(saw_retry, "a 25 % rate must produce retry plans");
    }

    #[test]
    fn fault_log_is_deterministic() {
        let run = || {
            let mut o = resilient(0.2, 2);
            let mut events = Vec::new();
            for i in 0..150 {
                let _ = o.access(BlockId(i % 19));
                events.extend(o.take_fault_events());
            }
            (events, o.stats().clone().faults_injected)
        };
        let (a, ai) = run();
        let (b, bi) = run();
        assert_eq!(a, b);
        assert_eq!(ai, bi);
        assert!(!a.is_empty());
    }

    #[test]
    fn unrecovered_fetches_lose_their_payload() {
        // With retries disabled every corrupted target fetch drops its
        // payload; reads of such a block return None until rewritten.
        let mut o = resilient(1.0, 0); // every fetch corrupted
        let _ = o.write_block(BlockId(1), &[9u8; 64]);
        // Churn so the block lands in the tree, then read it back.
        for i in 100..130 {
            let _ = o.access(BlockId(i));
        }
        let (_, data) = o.read_block(BlockId(1));
        if o.stats().faults_unrecovered > 0 {
            assert_eq!(data, None, "unrecovered target fetch loses its data");
        }
    }

    #[test]
    fn degraded_mode_suspends_green_fetches() {
        // Force degraded mode with watermarks low enough that normal CB
        // pressure crosses them, then check greens stop while degraded.
        // Y < S keeps at least one dummy slot per bucket, so the gate can
        // be absolute (Y == S buckets can be full, making greens
        // unavoidable).
        let mut cfg = RingConfig::test_small_cb();
        cfg.y = 3;
        cfg.stash_capacity = 40;
        let mut o = RingOram::with_load_factor(cfg, 1, 0.5);
        o.enable_encryption(7);
        let r = ResilienceConfig {
            fault_seed: 1,
            bit_flip_rate: 0.0,
            max_retries: 2,
            escalation_watermark: 12,
            degrade_watermark: 13,
            resume_watermark: 8,
        };
        o.enable_resilience(r);
        let mut entered = false;
        let mut greens_while_degraded = 0u64;
        for i in 0..400 {
            let before = o.stats().greens_fetched;
            let degraded = o.degraded();
            let _ = o.access(BlockId(i % 61));
            if degraded {
                entered = true;
                greens_while_degraded += o.stats().greens_fetched - before;
            }
        }
        let s = o.stats();
        assert!(
            entered && s.degraded_entries > 0,
            "must enter degraded mode"
        );
        assert_eq!(
            greens_while_degraded, 0,
            "degraded accesses must not fetch greens"
        );
        assert!(s.degraded_exits > 0, "pressure must eventually drain");
        assert!(s.background_escalations > 0);
        o.check_invariants();
    }

    #[test]
    fn try_access_surfaces_stash_overflow() {
        // An over-full tree (load factor 1.0, tiny stash, tiny tree) cannot
        // drain; try_access must return the structured error, not panic.
        let mut cfg = RingConfig::test_small();
        cfg.levels = 4;
        cfg.stash_capacity = 4;
        let mut o = RingOram::with_load_factor(cfg, 3, 1.0);
        let mut failed = false;
        for i in 0..200 {
            match o.try_access(BlockId(i)) {
                Ok(_) => {}
                Err(OramError::StashOverflow { occupancy, .. }) => {
                    assert!(occupancy >= 4);
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(failed, "over-full tree must overflow the stash");
    }

    #[test]
    fn load_factor_zero_means_empty_buckets() {
        let mut o = RingOram::with_load_factor(RingConfig::test_small(), 3, 0.0);
        let _ = o.access(BlockId(0));
        // No cold blocks: only the introduced block is mapped.
        o.check_invariants();
        assert_eq!(o.stats().new_blocks, 1);
    }
}
