//! Recursive position map: a stack of Ring ORAMs.
//!
//! The paper (like most architecture-track ORAM papers) assumes the
//! position map lives on-chip. At the paper's scale that is generous: a
//! 24-level tree serving 2^23-leaf paths for up to `Z x (2^24 - 1)` blocks
//! needs tens of megabytes of map — larger than the 4 MB LLC of Table I.
//! The standard remedy (Shi et al. / Path ORAM) is **recursion**: store the
//! position map itself in a smaller ORAM, and that ORAM's map in a yet
//! smaller one, until the innermost map fits on-chip.
//!
//! [`RecursiveOram`] implements that stack. Each logical access walks the
//! position-map ORAMs from the innermost (smallest) outwards and finally
//! accesses the data ORAM; every step is a full, independent Ring ORAM
//! access with its own read path and eviction schedule, so the memory
//! system sees the true recursive traffic. The `recursion_cost` extension
//! benchmark quantifies what the paper's on-chip assumption hides.

use crate::config::RingConfig;
use crate::protocol::{AccessOutcome, RingOram};
use crate::types::BlockId;

/// Configuration of a recursive ORAM stack.
#[derive(Debug, Clone, PartialEq)]
pub struct RecursiveConfig {
    /// Configuration of the outermost (data) ORAM.
    pub data: RingConfig,
    /// Number of blocks whose positions are tracked (the protected address
    /// space, in blocks).
    pub tracked_blocks: u64,
    /// Position-map entries packed into one map block. With 64 B blocks and
    /// ~4 B compressed leaf labels, 16 is realistic.
    pub positions_per_block: u32,
    /// Recursion stops once a map level has at most this many entries
    /// (they then fit in on-chip SRAM).
    pub max_onchip_entries: u64,
}

impl RecursiveConfig {
    /// The paper's data ORAM with a realistic recursion setting: 16
    /// positions per 64 B block, 64 Ki entries kept on-chip.
    #[must_use]
    pub fn hpca_default() -> Self {
        Self {
            data: RingConfig::hpca_default(),
            tracked_blocks: 1 << 23,
            positions_per_block: 16,
            max_onchip_entries: 1 << 16,
        }
    }

    /// A small stack for tests. `tracked_blocks` is kept at roughly half
    /// the data tree's real capacity (the usual provisioning rule).
    #[must_use]
    pub fn test_small() -> Self {
        Self {
            data: RingConfig::test_small(),
            tracked_blocks: 1 << 9,
            positions_per_block: 4,
            max_onchip_entries: 8,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.data.validate()?;
        if self.tracked_blocks == 0 {
            return Err("tracked_blocks must be nonzero".into());
        }
        if self.positions_per_block < 2 {
            return Err("positions_per_block must be at least 2".into());
        }
        if self.max_onchip_entries == 0 {
            return Err("max_onchip_entries must be nonzero".into());
        }
        Ok(())
    }

    /// Number of position-map ORAM levels the stack needs (0 = the map
    /// already fits on-chip).
    #[must_use]
    pub fn map_levels(&self) -> usize {
        let mut entries = self.tracked_blocks;
        let mut levels = 0;
        while entries > self.max_onchip_entries {
            entries = entries.div_ceil(u64::from(self.positions_per_block));
            levels += 1;
        }
        levels
    }

    /// The Ring ORAM configuration for map level `i` (0 = the outermost map
    /// ORAM, holding the data ORAM's positions). Map ORAMs reuse the data
    /// ORAM's `(Z, S, A, Y)` but shrink the tree to fit their block count.
    #[must_use]
    pub fn map_config(&self, i: usize) -> RingConfig {
        let mut entries = self.tracked_blocks;
        for _ in 0..=i {
            entries = entries.div_ceil(u64::from(self.positions_per_block));
        }
        // Size the tree so `entries` blocks fill roughly half the real
        // capacity: Z * 2^L / 2 >= entries.
        let mut levels = 2u32;
        while u64::from(self.data.z) << (levels - 1) < entries * 2 {
            levels += 1;
        }
        RingConfig {
            levels,
            tree_top_cached_levels: self.data.tree_top_cached_levels.min(levels - 1),
            ..self.data.clone()
        }
    }
}

/// A recursive ORAM: the data ORAM plus its chain of position-map ORAMs.
#[derive(Debug)]
pub struct RecursiveOram {
    cfg: RecursiveConfig,
    /// `orams[0]` is the data ORAM; `orams[i + 1]` stores (a stand-in for)
    /// the positions of `orams[i]`'s blocks.
    orams: Vec<RingOram>,
}

/// One step of a recursive access: which ORAM of the stack performed it
/// (0 = data ORAM) and what it did.
#[derive(Debug, Clone)]
pub struct RecursiveStep {
    /// Stack index: 0 = data ORAM, 1.. = position-map ORAMs.
    pub oram_index: usize,
    /// The underlying access.
    pub outcome: AccessOutcome,
}

impl RecursiveOram {
    /// Builds the stack.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    #[must_use]
    pub fn new(cfg: RecursiveConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid RecursiveConfig: {e}");
        }
        let mut orams = vec![RingOram::new(cfg.data.clone(), seed)];
        for i in 0..cfg.map_levels() {
            orams.push(RingOram::new(cfg.map_config(i), seed ^ (i as u64 + 1)));
        }
        Self { cfg, orams }
    }

    /// The stack configuration.
    #[must_use]
    pub fn config(&self) -> &RecursiveConfig {
        &self.cfg
    }

    /// Number of ORAMs in the stack (1 + map levels).
    #[must_use]
    pub fn stack_depth(&self) -> usize {
        self.orams.len()
    }

    /// The ORAM at stack index `i` (0 = data).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn oram(&self, i: usize) -> &RingOram {
        &self.orams[i]
    }

    /// Performs one logical access: the position-map chain from the
    /// innermost map outwards, then the data access. Returns every step in
    /// execution order.
    pub fn access(&mut self, block: BlockId) -> Vec<RecursiveStep> {
        let mut steps = Vec::with_capacity(self.orams.len());
        let ppb = u64::from(self.cfg.positions_per_block);
        // Innermost map first: its index is the block id divided down by
        // positions-per-block once per level.
        for i in (1..self.orams.len()).rev() {
            let map_block = BlockId(block.0 / ppb.pow(i as u32));
            let outcome = self.orams[i].access(map_block);
            steps.push(RecursiveStep {
                oram_index: i,
                outcome,
            });
        }
        let outcome = self.orams[0].access(block);
        steps.push(RecursiveStep {
            oram_index: 0,
            outcome,
        });
        steps
    }

    /// Total memory-block touches per logical access, summed over the last
    /// access's steps (helper for bandwidth accounting).
    #[must_use]
    pub fn touches_of(steps: &[RecursiveStep]) -> usize {
        steps
            .iter()
            .flat_map(|s| s.outcome.plans.iter())
            .map(|p| p.touches.len())
            .sum()
    }

    /// Verifies every ORAM's invariants.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        for o in &self.orams {
            o.check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_level_arithmetic() {
        let cfg = RecursiveConfig::test_small();
        // 512 entries / 4 per block = 128 -> 32 -> 8: 3 map levels.
        assert_eq!(cfg.map_levels(), 3);
        let big = RecursiveConfig::hpca_default();
        // 2^23 / 16 = 2^19 -> 2^15 <= 2^16: 2 map levels.
        assert_eq!(big.map_levels(), 2);
    }

    #[test]
    fn map_trees_shrink_down_the_stack() {
        let cfg = RecursiveConfig::test_small();
        let mut last = cfg.data.levels;
        for i in 0..cfg.map_levels() {
            let mc = cfg.map_config(i);
            mc.validate().expect("map config valid");
            assert!(mc.levels <= last, "map level {i} grew");
            last = mc.levels;
        }
    }

    #[test]
    fn access_walks_the_whole_stack_in_order() {
        let cfg = RecursiveConfig::test_small();
        let mut r = RecursiveOram::new(cfg, 5);
        assert_eq!(r.stack_depth(), 4);
        let steps = r.access(BlockId(123));
        assert_eq!(steps.len(), 4);
        let order: Vec<usize> = steps.iter().map(|s| s.oram_index).collect();
        assert_eq!(order, vec![3, 2, 1, 0], "innermost map first, data last");
    }

    #[test]
    fn map_block_indices_shrink() {
        let cfg = RecursiveConfig::test_small(); // ppb = 4
        let mut r = RecursiveOram::new(cfg, 5);
        let _ = r.access(BlockId(500));
        // Map level 3 must have been asked for block 500 / 4^3 = 7.
        // (Indirectly verified through the per-ORAM position maps: no
        // panic means the id spaces stayed in range.)
        r.check_invariants();
    }

    #[test]
    fn recursion_multiplies_bandwidth() {
        let cfg = RecursiveConfig::test_small();
        let mut rec = RecursiveOram::new(cfg.clone(), 5);
        let mut flat = RingOram::new(cfg.data, 5);
        let mut rec_touches = 0usize;
        let mut flat_touches = 0usize;
        for i in 0..50 {
            let steps = rec.access(BlockId(i * 37 % 512));
            rec_touches += RecursiveOram::touches_of(&steps);
            let out = flat.access(BlockId(i * 37 % 512));
            flat_touches += out.plans.iter().map(|p| p.touches.len()).sum::<usize>();
        }
        assert!(
            rec_touches > flat_touches,
            "recursion must add traffic: {rec_touches} vs {flat_touches}"
        );
    }

    #[test]
    fn invariants_hold_across_the_stack() {
        let mut r = RecursiveOram::new(RecursiveConfig::test_small(), 11);
        for i in 0..150 {
            let _ = r.access(BlockId(i % 200));
        }
        r.check_invariants();
    }

    #[test]
    fn no_recursion_when_map_fits() {
        let mut cfg = RecursiveConfig::test_small();
        cfg.max_onchip_entries = 1 << 20;
        assert_eq!(cfg.map_levels(), 0);
        let mut r = RecursiveOram::new(cfg, 1);
        assert_eq!(r.stack_depth(), 1);
        let steps = r.access(BlockId(3));
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].oram_index, 0);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut cfg = RecursiveConfig::test_small();
        cfg.positions_per_block = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = RecursiveConfig::test_small();
        cfg.tracked_blocks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RecursiveConfig::test_small();
        cfg.max_onchip_entries = 0;
        assert!(cfg.validate().is_err());
    }
}
