//! Shard partitioning for the parallel simulation engine.
//!
//! The paper's subtree-packed layout and channel striping make each channel
//! group an independently schedulable unit. This module partitions the
//! *logical address space* into `N` disjoint shards — a subtree forest, one
//! tree per shard — so every shard can run its own protocol instance,
//! pipeline, and memory backend on a dedicated thread with no shared state.
//!
//! Routing is by low-order block-address bits: block `b` lives in shard
//! `b mod N`, renumbered locally as `b / N`. With `N` a power of two this is
//! a bit-slice (shard id = low `log2 N` bits), every shard receives an even
//! interleave of any address stream, and the map is trivially bijective:
//! `global = local * N + shard`.
//!
//! `N = 1` is the exact identity map — the sharded engine degenerates to the
//! unsharded pipeline bit-for-bit, which `tests/shard_differential.rs` pins.

use crate::config::RingConfig;
use crate::types::BlockId;

/// Disjoint partition of the block address space into `N` shards.
///
/// # Examples
///
/// ```
/// use ring_oram::sharding::ShardMap;
/// use ring_oram::types::BlockId;
///
/// let map = ShardMap::new(4).unwrap();
/// let b = BlockId(42);
/// let (shard, local) = (map.shard_of(b), map.local_block(b));
/// assert_eq!(map.global_block(shard, local), b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    /// `log2(shards)`; shard id is the low `bits` bits of a block address.
    bits: u32,
}

impl ShardMap {
    /// Builds a map over `shards` partitions.
    ///
    /// # Errors
    ///
    /// Returns a description if `shards` is zero or not a power of two
    /// (power-of-two counts keep the routing a bit-slice and let the
    /// per-shard tree be the whole tree minus `log2 N` levels).
    pub fn new(shards: usize) -> Result<Self, String> {
        if shards == 0 || !shards.is_power_of_two() {
            return Err(format!(
                "shard count ({shards}) must be a nonzero power of two"
            ));
        }
        Ok(Self {
            shards,
            bits: shards.trailing_zeros(),
        })
    }

    /// Number of shards `N`.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// `log2(N)` — tree levels absorbed by the forest split.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The shard owning `block` (its low `log2 N` address bits).
    #[must_use]
    pub fn shard_of(&self, block: BlockId) -> usize {
        (block.0 & (self.shards as u64 - 1)) as usize
    }

    /// `block` renumbered into its shard's local address space.
    #[must_use]
    pub fn local_block(&self, block: BlockId) -> BlockId {
        BlockId(block.0 >> self.bits)
    }

    /// Inverse of [`Self::shard_of`] + [`Self::local_block`].
    #[must_use]
    pub fn global_block(&self, shard: usize, local: BlockId) -> BlockId {
        BlockId((local.0 << self.bits) | shard as u64)
    }

    /// Derives the per-shard tree configuration: each shard's tree is the
    /// whole tree with `log2 N` fewer levels (the forest split replaces the
    /// top of the tree), so total capacity across shards matches the
    /// unsharded tree's order of magnitude. `N = 1` returns `cfg` unchanged.
    ///
    /// # Errors
    ///
    /// Returns a description if the reduced tree would be too shallow: the
    /// per-shard tree must keep at least `tree_top_cached_levels + 1`
    /// levels, and the result must still pass [`RingConfig::validate`].
    pub fn shard_ring_config(&self, cfg: &RingConfig) -> Result<RingConfig, String> {
        if self.bits == 0 {
            return Ok(cfg.clone());
        }
        if cfg.levels <= self.bits + cfg.tree_top_cached_levels {
            return Err(format!(
                "cannot split a {}-level tree (with {} cached levels) into {} shards",
                cfg.levels, cfg.tree_top_cached_levels, self.shards
            ));
        }
        let shard_cfg = RingConfig {
            levels: cfg.levels - self.bits,
            ..cfg.clone()
        };
        shard_cfg.validate()?;
        Ok(shard_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_and_non_power_of_two() {
        assert!(ShardMap::new(0).is_err());
        assert!(ShardMap::new(3).is_err());
        assert!(ShardMap::new(6).is_err());
        for n in [1usize, 2, 4, 8, 16] {
            assert!(ShardMap::new(n).is_ok());
        }
    }

    #[test]
    fn routing_roundtrips_and_partitions() {
        for n in [1usize, 2, 4, 8] {
            let map = ShardMap::new(n).unwrap();
            for b in 0..512u64 {
                let block = BlockId(b);
                let shard = map.shard_of(block);
                assert!(shard < n);
                let local = map.local_block(block);
                assert_eq!(map.global_block(shard, local), block);
            }
        }
    }

    #[test]
    fn singleton_map_is_identity() {
        let map = ShardMap::new(1).unwrap();
        let cfg = RingConfig::test_small();
        assert_eq!(map.shard_of(BlockId(99)), 0);
        assert_eq!(map.local_block(BlockId(99)), BlockId(99));
        assert_eq!(map.shard_ring_config(&cfg).unwrap(), cfg);
    }

    #[test]
    fn shard_config_drops_log2_levels() {
        let map = ShardMap::new(4).unwrap();
        let cfg = RingConfig::test_small();
        let shard_cfg = map.shard_ring_config(&cfg).unwrap();
        assert_eq!(shard_cfg.levels, cfg.levels - 2);
        assert_eq!(shard_cfg.z, cfg.z);
    }

    #[test]
    fn shard_config_rejects_too_shallow_trees() {
        let map = ShardMap::new(8).unwrap();
        let mut cfg = RingConfig::test_small();
        cfg.levels = 3;
        assert!(map.shard_ring_config(&cfg).is_err());
    }
}
