//! The stash: the controller's small on-chip buffer of in-flight blocks.

use crate::bucket::{BlockData, BlockEntry};
use crate::fasthash::DetHashMap;
use crate::tree::TreeGeometry;
use crate::types::{BlockId, Level, PathId};

/// One stash entry: the block's current path assignment plus its payload
/// (plaintext — the stash sits inside the trusted boundary).
#[derive(Debug, Clone, Default)]
struct StashEntry {
    path: PathId,
    data: Option<BlockData>,
}

/// The ORAM stash. Every entry is a real block together with its current
/// path assignment; eviction drains entries whose paths are compatible with
/// the eviction path.
///
/// The stash lives inside the trusted boundary, so its content and occupancy
/// are secret; the *simulated* occupancy is what the paper's Fig. 14/15
/// study, because exceeding the provisioned capacity forces background
/// evictions.
///
/// Eviction block selection is deterministic for a given seed: entries live
/// in a [`DetHashMap`] (seedless, so reproducible run-to-run) and every
/// order-sensitive operation selects by ascending block id —
/// [`Stash::drain_for_bucket`] sorts its candidates before taking, and
/// [`Stash::candidate_depths`] callers impose the same order via a
/// min-heap — so which blocks drain first never depends on map layout.
#[derive(Debug, Clone, Default)]
pub struct Stash {
    entries: DetHashMap<BlockId, StashEntry>,
    /// High-water mark of occupancy.
    peak: usize,
}

impl Stash {
    /// An empty stash.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of blocks held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stash is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest occupancy observed since creation.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Whether `block` is currently in the stash.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.entries.contains_key(&block)
    }

    /// Inserts or updates a block with its path assignment, keeping any
    /// payload already stored for it.
    pub fn insert(&mut self, block: BlockId, path: PathId) {
        let entry = self.entries.entry(block).or_default();
        entry.path = path;
        self.peak = self.peak.max(self.entries.len());
    }

    /// Inserts or updates a block with its path assignment and payload.
    pub fn insert_with_data(&mut self, block: BlockId, path: PathId, data: Option<BlockData>) {
        let entry = self.entries.entry(block).or_default();
        entry.path = path;
        if data.is_some() {
            entry.data = data;
        }
        self.peak = self.peak.max(self.entries.len());
    }

    /// Replaces the payload of a block already in the stash (the program's
    /// store). No-op if the block is absent.
    pub fn set_data(&mut self, block: BlockId, data: BlockData) {
        if let Some(e) = self.entries.get_mut(&block) {
            e.data = Some(data);
        }
    }

    /// The payload of a block in the stash, if any.
    #[must_use]
    pub fn data_of(&self, block: BlockId) -> Option<&[u8]> {
        self.entries.get(&block).and_then(|e| e.data.as_deref())
    }

    /// Updates the path of a block already in the stash (after a remap).
    /// No-op if the block is absent.
    pub fn reassign(&mut self, block: BlockId, path: PathId) {
        if let Some(e) = self.entries.get_mut(&block) {
            e.path = path;
        }
    }

    /// Removes a block (it was consumed by the program or placed in the
    /// tree); returns its path assignment if present.
    pub fn remove(&mut self, block: BlockId) -> Option<PathId> {
        self.entries.remove(&block).map(|e| e.path)
    }

    /// Removes and returns up to `max` blocks that may legally reside in
    /// the bucket at `level` along `evict_path` — i.e. whose assigned path
    /// shares at least `level` levels of prefix with the eviction path.
    ///
    /// Used by the eviction write phase, which processes buckets leaf to
    /// root so blocks sink as deep as possible (the standard greedy
    /// placement that keeps the stash small).
    #[allow(clippy::expect_used)] // invariant, stated in the expect message
    pub fn drain_for_bucket(
        &mut self,
        geometry: &TreeGeometry,
        evict_path: PathId,
        level: Level,
        max: usize,
    ) -> Vec<BlockEntry> {
        let mut qualifying: Vec<BlockId> = self
            .entries
            .iter()
            .filter(|(_, e)| geometry.shared_depth(e.path, evict_path).0 >= level.0)
            .map(|(&b, _)| b)
            .collect();
        qualifying.sort_unstable();
        qualifying.truncate(max);
        qualifying
            .into_iter()
            .map(|b| {
                let e = self.entries.remove(&b).expect("just selected");
                (b, e.data)
            })
            .collect()
    }

    /// Snapshot of eviction candidates: every stashed block paired with the
    /// deepest level it may occupy along `evict_path`, in unspecified
    /// order.
    ///
    /// The eviction write phase takes this one snapshot instead of
    /// re-walking the whole stash per level ([`Self::drain_for_bucket`]'s
    /// cost); because that phase only *removes* entries, selecting from the
    /// snapshot picks exactly the blocks a fresh per-level scan would. The
    /// caller imposes the deterministic ascending-block-id selection order
    /// itself (a min-heap), so no sort is needed here.
    #[must_use]
    pub fn candidate_depths(
        &self,
        geometry: &TreeGeometry,
        evict_path: PathId,
    ) -> Vec<(BlockId, Level)> {
        let mut out = Vec::with_capacity(self.entries.len());
        self.for_each_candidate(geometry, evict_path, |b, depth| out.push((b, depth)));
        out
    }

    /// Allocation-free form of [`Self::candidate_depths`]: calls `f` with
    /// every stashed block and its deepest eligible level along
    /// `evict_path`, in the same unspecified order. The eviction write
    /// phase feeds these straight into its reusable per-depth groups
    /// instead of materializing a snapshot vector per eviction.
    pub fn for_each_candidate(
        &self,
        geometry: &TreeGeometry,
        evict_path: PathId,
        mut f: impl FnMut(BlockId, Level),
    ) {
        for (&b, e) in &self.entries {
            f(b, geometry.shared_depth(e.path, evict_path));
        }
    }

    /// Removes `block` and returns its payload (`None` if the block is not
    /// stashed; `Some(None)` for a stashed block without payload).
    pub fn take(&mut self, block: BlockId) -> Option<Option<BlockData>> {
        self.entries.remove(&block).map(|e| e.data)
    }

    /// Iterates over `(block, path)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, PathId)> + '_ {
        self.entries.iter().map(|(&b, e)| (b, e.path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = Stash::new();
        assert!(s.is_empty());
        s.insert(BlockId(1), PathId(4));
        assert!(s.contains(BlockId(1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(BlockId(1)), Some(PathId(4)));
        assert!(s.is_empty());
        assert_eq!(s.remove(BlockId(1)), None);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = Stash::new();
        for i in 0..5 {
            s.insert(BlockId(i), PathId(0));
        }
        for i in 0..5 {
            s.remove(BlockId(i));
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.peak(), 5);
    }

    #[test]
    fn reassign_updates_existing_only() {
        let mut s = Stash::new();
        s.insert(BlockId(1), PathId(0));
        s.reassign(BlockId(1), PathId(3));
        s.reassign(BlockId(2), PathId(3)); // absent: no-op
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(BlockId(1)), Some(PathId(3)));
    }

    #[test]
    fn drain_respects_path_compatibility() {
        let g = TreeGeometry::new(4); // 8 leaves
        let mut s = Stash::new();
        s.insert(BlockId(1), PathId(0)); // 0b000
        s.insert(BlockId(2), PathId(1)); // 0b001
        s.insert(BlockId(3), PathId(7)); // 0b111
                                         // Evicting along path 0; at leaf level only exact path matches.
        let ids =
            |v: Vec<crate::bucket::BlockEntry>| v.into_iter().map(|(b, _)| b).collect::<Vec<_>>();
        let leaf = s.drain_for_bucket(&g, PathId(0), Level(3), 4);
        assert_eq!(ids(leaf), vec![BlockId(1)]);
        // Level 2: paths 0 and 1 share two levels; block 2 qualifies.
        let l2 = s.drain_for_bucket(&g, PathId(0), Level(2), 4);
        assert_eq!(ids(l2), vec![BlockId(2)]);
        // Root level: everything qualifies.
        let root = s.drain_for_bucket(&g, PathId(0), Level(0), 4);
        assert_eq!(ids(root), vec![BlockId(3)]);
        assert!(s.is_empty());
    }

    #[test]
    fn drain_honors_capacity_limit() {
        let g = TreeGeometry::new(4);
        let mut s = Stash::new();
        for i in 0..10 {
            s.insert(BlockId(i), PathId(0));
        }
        let taken = s.drain_for_bucket(&g, PathId(0), Level(0), 3);
        assert_eq!(taken.len(), 3);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn payloads_follow_blocks() {
        let mut s = Stash::new();
        s.insert_with_data(BlockId(1), PathId(0), Some(vec![7u8; 4].into_boxed_slice()));
        assert_eq!(s.data_of(BlockId(1)), Some(&[7u8, 7, 7, 7][..]));
        // Plain insert must not clobber the payload.
        s.insert(BlockId(1), PathId(3));
        assert_eq!(s.data_of(BlockId(1)), Some(&[7u8, 7, 7, 7][..]));
        // insert_with_data(None) keeps the old payload too.
        s.insert_with_data(BlockId(1), PathId(5), None);
        assert_eq!(s.data_of(BlockId(1)), Some(&[7u8, 7, 7, 7][..]));
        // set_data replaces it.
        s.set_data(BlockId(1), vec![9u8].into_boxed_slice());
        assert_eq!(s.data_of(BlockId(1)), Some(&[9u8][..]));
        // Draining carries the payload out.
        let g = TreeGeometry::new(4);
        let drained = s.drain_for_bucket(&g, PathId(5), Level(0), 4);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].1.as_deref(), Some(&[9u8][..]));
    }

    #[test]
    fn set_data_on_absent_block_is_noop() {
        let mut s = Stash::new();
        s.set_data(BlockId(9), vec![1].into_boxed_slice());
        assert_eq!(s.data_of(BlockId(9)), None);
        assert!(s.is_empty());
    }

    #[test]
    fn iter_exposes_entries() {
        let mut s = Stash::new();
        s.insert(BlockId(5), PathId(2));
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(BlockId(5), PathId(2))]);
    }
}
