//! Binary-tree geometry: bucket indexing, paths and the reverse
//! lexicographic eviction order.

use crate::types::{BucketId, Level, PathId};

/// Pure tree-geometry helpers for an `levels`-level binary tree.
///
/// The tree is indexed as a flat heap: root = bucket 0, the children of
/// bucket `b` are `2b + 1` and `2b + 2`. A path is identified by its leaf
/// label in `0 .. 2^(levels-1)`; the bucket on level `l` along path `p` is
/// the ancestor of leaf `p` at that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeGeometry {
    levels: u32,
}

impl TreeGeometry {
    /// Geometry of a tree with `levels` levels (`L + 1` in paper notation).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or exceeds 40 (the flat index would overflow
    /// well before, but 40 keeps every intermediate in range).
    #[must_use]
    pub fn new(levels: u32) -> Self {
        assert!((1..=40).contains(&levels), "levels must be in 1..=40");
        Self { levels }
    }

    /// Number of levels (`L + 1`).
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Deepest level index (`L`).
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.levels - 1
    }

    /// Number of leaves / paths.
    #[must_use]
    pub fn leaf_count(&self) -> u64 {
        1u64 << self.max_level()
    }

    /// Total bucket count.
    #[must_use]
    pub fn bucket_count(&self) -> u64 {
        (1u64 << self.levels) - 1
    }

    /// Bucket on `level` along `path`.
    ///
    /// # Panics
    ///
    /// Debug-panics if the level or path are out of range.
    #[must_use]
    pub fn bucket_at(&self, path: PathId, level: Level) -> BucketId {
        debug_assert!(level.0 < self.levels, "level out of range");
        debug_assert!(path.0 < self.leaf_count(), "path out of range");
        let prefix = path.0 >> (self.max_level() - level.0);
        BucketId((1u64 << level.0) - 1 + prefix)
    }

    /// Level of a bucket given its flat index.
    #[must_use]
    pub fn level_of(&self, bucket: BucketId) -> Level {
        debug_assert!(bucket.0 < self.bucket_count(), "bucket out of range");
        Level(u64::BITS - (bucket.0 + 1).leading_zeros() - 1)
    }

    /// The buckets along `path` from the root (level 0) to the leaf.
    #[must_use]
    pub fn path_buckets(&self, path: PathId) -> Vec<BucketId> {
        (0..self.levels)
            .map(|l| self.bucket_at(path, Level(l)))
            .collect()
    }

    /// Whether `bucket` lies on `path`.
    #[must_use]
    pub fn on_path(&self, bucket: BucketId, path: PathId) -> bool {
        let level = self.level_of(bucket);
        self.bucket_at(path, level) == bucket
    }

    /// The deepest level at which the paths `a` and `b` share a bucket
    /// (0 = only the root is shared).
    #[must_use]
    pub fn shared_depth(&self, a: PathId, b: PathId) -> Level {
        let diff = a.0 ^ b.0;
        if diff == 0 {
            return Level(self.max_level());
        }
        let highest = u64::BITS - diff.leading_zeros(); // 1-based bit position
        Level(self.max_level() - highest)
    }

    /// The `g`-th eviction path in **reverse lexicographic order**: the
    /// bit-reversal of `g mod 2^L` over `L` bits (Ring ORAM's deterministic
    /// eviction order, which minimizes bucket overlap between consecutive
    /// evictions).
    #[must_use]
    pub fn reverse_lexicographic_path(&self, g: u64) -> PathId {
        let l = self.max_level();
        if l == 0 {
            return PathId(0);
        }
        let masked = g & (self.leaf_count() - 1);
        PathId(masked.reverse_bits() >> (64 - l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> TreeGeometry {
        TreeGeometry::new(4) // 15 buckets, 8 leaves
    }

    #[test]
    fn counts() {
        let t = t4();
        assert_eq!(t.levels(), 4);
        assert_eq!(t.max_level(), 3);
        assert_eq!(t.leaf_count(), 8);
        assert_eq!(t.bucket_count(), 15);
    }

    #[test]
    fn bucket_at_matches_heap_layout() {
        let t = t4();
        // Root is bucket 0 for every path.
        for p in 0..8 {
            assert_eq!(t.bucket_at(PathId(p), Level(0)), BucketId(0));
        }
        // Leaves are buckets 7..15 in order.
        for p in 0..8 {
            assert_eq!(t.bucket_at(PathId(p), Level(3)), BucketId(7 + p));
        }
        // Path 5 = binary 101: level 1 -> child 1 (bucket 2),
        // level 2 -> prefix 10 (bucket 3 + 2 = 5).
        assert_eq!(t.bucket_at(PathId(5), Level(1)), BucketId(2));
        assert_eq!(t.bucket_at(PathId(5), Level(2)), BucketId(5));
    }

    #[test]
    fn level_of_inverts_bucket_at() {
        let t = t4();
        for p in 0..8 {
            for l in 0..4 {
                let b = t.bucket_at(PathId(p), Level(l));
                assert_eq!(t.level_of(b), Level(l));
            }
        }
    }

    #[test]
    fn path_buckets_runs_root_to_leaf() {
        let t = t4();
        let buckets = t.path_buckets(PathId(6));
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], BucketId(0));
        assert_eq!(buckets[3], BucketId(13));
        // Each bucket is a child of the previous one.
        for w in buckets.windows(2) {
            let parent = w[0].0;
            let child = w[1].0;
            assert!(child == 2 * parent + 1 || child == 2 * parent + 2);
        }
    }

    #[test]
    fn on_path_agrees_with_path_buckets() {
        let t = t4();
        for p in 0..8 {
            let on: Vec<BucketId> = t.path_buckets(PathId(p));
            for b in 0..15 {
                assert_eq!(
                    t.on_path(BucketId(b), PathId(p)),
                    on.contains(&BucketId(b)),
                    "bucket {b} path {p}"
                );
            }
        }
    }

    #[test]
    fn shared_depth_is_symmetric_and_bounded() {
        let t = t4();
        assert_eq!(t.shared_depth(PathId(3), PathId(3)), Level(3));
        // 0b000 and 0b100 diverge at the root's children.
        assert_eq!(t.shared_depth(PathId(0), PathId(4)), Level(0));
        // 0b010 and 0b011 share down to level 2.
        assert_eq!(t.shared_depth(PathId(2), PathId(3)), Level(2));
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(
                    t.shared_depth(PathId(a), PathId(b)),
                    t.shared_depth(PathId(b), PathId(a))
                );
            }
        }
    }

    #[test]
    fn reverse_lex_visits_all_paths_once_per_round() {
        let t = t4();
        let mut seen = std::collections::HashSet::new();
        for g in 0..8 {
            seen.insert(t.reverse_lexicographic_path(g));
        }
        assert_eq!(seen.len(), 8, "one full round covers every path");
        // And it repeats with period 2^L.
        assert_eq!(
            t.reverse_lexicographic_path(3),
            t.reverse_lexicographic_path(3 + 8)
        );
    }

    #[test]
    fn reverse_lex_consecutive_paths_diverge_early() {
        // The defining property: consecutive eviction paths share as few
        // buckets as possible — paths g and g+1 differ in the *top* bit of
        // the leaf label, so they share only the root.
        let t = TreeGeometry::new(6);
        for g in 0..16 {
            let p0 = t.reverse_lexicographic_path(g);
            let p1 = t.reverse_lexicographic_path(g + 1);
            assert_eq!(
                t.shared_depth(p0, p1),
                Level(0),
                "consecutive reverse-lex paths should only share the root"
            );
        }
    }

    #[test]
    fn single_level_tree_degenerates_gracefully() {
        let t = TreeGeometry::new(1);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.bucket_count(), 1);
        assert_eq!(t.reverse_lexicographic_path(5), PathId(0));
        assert_eq!(t.bucket_at(PathId(0), Level(0)), BucketId(0));
    }

    #[test]
    #[should_panic(expected = "levels must be in 1..=40")]
    fn zero_levels_rejected() {
        let _ = TreeGeometry::new(0);
    }
}
