//! Core identifier types for the ORAM tree.
//!
//! All identifiers are newtypes so that block identifiers, path labels and
//! bucket indices cannot be mixed up — they all wrap integers of similar
//! magnitude and confusing them is the classic ORAM-implementation bug.

/// A logical data block identifier (the program-visible block address).
///
/// One block corresponds to one cache line (64 B in the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A path label: the index of a leaf, in `0..2^L` for an `L+1`-level tree.
///
/// Each leaf identifies the unique root-to-leaf path used by ORAM accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PathId(pub u64);

impl std::fmt::Display for PathId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A bucket's flat heap index: the root is 0, level `l` occupies indices
/// `2^l - 1 .. 2^(l+1) - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BucketId(pub u64);

impl std::fmt::Display for BucketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A tree level; the root is level 0, leaves are level `L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Level(pub u32);

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// What a single read-path slot access fetched, from the controller's
/// (secret) point of view. On the memory bus every fetch looks identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// The slot held the block the program asked for.
    Target(BlockId),
    /// The slot held a *green* real block — a real block consumed as if it
    /// were a dummy (the paper's Compact Bucket optimization).
    Green(BlockId),
    /// The slot held a reserved dummy block.
    Dummy,
}

impl FetchKind {
    /// The real block carried by this fetch, if any.
    #[must_use]
    pub fn block(&self) -> Option<BlockId> {
        match self {
            Self::Target(b) | Self::Green(b) => Some(*b),
            Self::Dummy => None,
        }
    }

    /// Whether the fetch brings a real block into the stash.
    #[must_use]
    pub fn is_real(&self) -> bool {
        !matches!(self, Self::Dummy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = std::collections::HashSet::new();
        set.insert(BlockId(1));
        set.insert(BlockId(1));
        set.insert(BlockId(2));
        assert_eq!(set.len(), 2);
        assert!(PathId(3) > PathId(2));
        assert!(BucketId(0) < BucketId(1));
    }

    #[test]
    fn display_forms_are_distinct() {
        assert_eq!(BlockId(7).to_string(), "B7");
        assert_eq!(PathId(7).to_string(), "P7");
        assert_eq!(BucketId(7).to_string(), "b7");
        assert_eq!(Level(7).to_string(), "L7");
    }

    #[test]
    fn fetch_kind_block_extraction() {
        assert_eq!(FetchKind::Target(BlockId(1)).block(), Some(BlockId(1)));
        assert_eq!(FetchKind::Green(BlockId(2)).block(), Some(BlockId(2)));
        assert_eq!(FetchKind::Dummy.block(), None);
        assert!(FetchKind::Target(BlockId(1)).is_real());
        assert!(FetchKind::Green(BlockId(1)).is_real());
        assert!(!FetchKind::Dummy.is_real());
    }
}
