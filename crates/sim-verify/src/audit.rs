//! Protocol invariant auditors.
//!
//! One auditor per protocol family, unified behind [`ProtocolAuditor`]
//! (selected by [`ProtocolKind`]): [`OramAuditor`] for the Ring engines
//! (Ring+CB and plain Ring share every Ring invariant — plain Ring is the
//! `Y = 0` configuration), [`PathAuditor`] for Path ORAM and
//! [`CircuitAuditor`] for Circuit ORAM. Each replays the plan stream the
//! memory hierarchy consumes against its protocol's structural invariants,
//! independently of the engine's internal bookkeeping.
//!
//! [`OramAuditor`] replays the protocol's [`AccessPlan`] stream — the same
//! artifact the memory hierarchy consumes — against the paper's structural
//! invariants, independently of `ring-oram`'s internal bookkeeping:
//!
//! * every slot index stays inside the bucket's physical `Z + S - Y` slots
//!   ([`Rule::SlotRange`]);
//! * within one reshuffle epoch, no bucket slot is *read-path-read* twice —
//!   this is Ring ORAM's core security invariant: a dummy (or real) slot
//!   revisited between reshuffles correlates accesses ([`Rule::SlotReuse`]);
//! * no bucket serves more than `S` read-path touches per epoch, because the
//!   protocol must reshuffle at `S` accesses ([`Rule::BucketBudget`]);
//! * evictions fire at exactly one per `A` read paths, counting the dummy
//!   read paths of background eviction ([`Rule::EvictionCadence`]);
//! * each plan's touch counts match its kind's canonical shape
//!   ([`Rule::PlanShape`]);
//! * stash occupancy, sampled after each completed access, stays within the
//!   configured bound ([`Rule::StashBound`]).
//!
//! Reshuffle epochs are tracked from the plan stream itself: any *write*
//! touch to a bucket (the write phase of an eviction or reshuffle rewrites
//! all its slots) starts a fresh epoch for that bucket. The read phases of
//! evictions and reshuffles are excluded from the reuse/budget checks —
//! they legitimately re-read slots (and pad with filler indices) because
//! the bucket is about to be rewritten anyway.

use std::collections::{HashMap, HashSet};

use ring_oram::circuit::EVICTIONS_PER_ACCESS;
use ring_oram::types::BucketId;
use ring_oram::{AccessPlan, FaultEvent, FaultEventKind, OpKind, ProtocolKind, RingConfig};

use crate::violation::{Rule, Violation};

/// Replays an [`AccessPlan`] stream against the Ring ORAM invariants.
///
/// Feed every plan batch (one [`observe_access`](Self::observe_access) call
/// per protocol access, in order) and the post-access stash occupancy via
/// [`observe_stash`](Self::observe_stash); collect findings from
/// [`violations`](Self::violations).
#[derive(Debug, Clone)]
pub struct OramAuditor {
    config: RingConfig,
    /// Read-path-touched slots per bucket since that bucket's last rewrite.
    touched: HashMap<BucketId, HashSet<u32>>,
    /// Read-path touch count per bucket in the current epoch (tracked
    /// separately from the set so reuse doesn't mask a budget overrun).
    touch_count: HashMap<BucketId, u32>,
    accesses: u64,
    paths: u64,
    evictions: u64,
    /// Retry-read touches the fault log has authorized but no RetryRead
    /// plan has consumed yet, keyed by (bucket, slot). Filled by
    /// [`Self::observe_faults`], drained by the batch's RetryRead plans and
    /// reconciled at the end of each [`Self::observe_access`].
    retry_allowances: HashMap<(BucketId, u32), u32>,
    /// Injected faults counted by [`Self::observe_faults`].
    faults_seen: u64,
    violations: Vec<Violation>,
}

impl OramAuditor {
    /// Creates an auditor for a protocol instance with this configuration.
    #[must_use]
    pub fn new(config: RingConfig) -> Self {
        Self {
            config,
            touched: HashMap::new(),
            touch_count: HashMap::new(),
            accesses: 0,
            paths: 0,
            evictions: 0,
            retry_allowances: HashMap::new(),
            faults_seen: 0,
            violations: Vec::new(),
        }
    }

    /// Violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Takes the accumulated violations, keeping the epoch state.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether no violation has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Protocol accesses audited so far.
    #[must_use]
    pub fn accesses_checked(&self) -> u64 {
        self.accesses
    }

    /// Injected fault events audited so far.
    #[must_use]
    pub fn faults_checked(&self) -> u64 {
        self.faults_seen
    }

    /// Audits one access's fault-event log. Call *before* the matching
    /// [`Self::observe_access`]: the log's `Retried` entries authorize the
    /// retry-read touches of the batch's plans.
    ///
    /// Checks:
    /// * every `Injected` event is followed by a `Detected` for the same
    ///   site within the batch ([`Rule::FaultUndetected`] otherwise — the
    ///   integrity tag was missing or unchecked);
    /// * no fetch ends `Unrecovered` ([`Rule::FaultUnrecovered`]): the
    ///   retry budget must be sized so recovery always succeeds, or the
    ///   simulation's results are computed on lost data.
    pub fn observe_faults(&mut self, events: &[FaultEvent]) {
        let mut pending_detect: HashMap<(BucketId, u32), u32> = HashMap::new();
        for e in events {
            let site = (e.bucket, e.slot);
            match e.kind {
                FaultEventKind::Injected => {
                    self.faults_seen += 1;
                    *pending_detect.entry(site).or_insert(0) += 1;
                }
                FaultEventKind::Detected => {
                    let p = pending_detect.entry(site).or_insert(0);
                    *p = p.saturating_sub(1);
                }
                FaultEventKind::Retried => {
                    *self.retry_allowances.entry(site).or_insert(0) += 1;
                }
                FaultEventKind::Recovered => {}
                FaultEventKind::Unrecovered => {
                    self.violate(
                        Rule::FaultUnrecovered,
                        format!(
                            "fetch from bucket {} slot {} lost its payload after \
                             exhausting the retry budget",
                            e.bucket.0, e.slot
                        ),
                    );
                }
            }
        }
        for ((bucket, slot), missing) in pending_detect {
            if missing > 0 {
                self.violate(
                    Rule::FaultUndetected,
                    format!(
                        "{missing} injected corruption(s) of bucket {} slot {slot} \
                         were never detected (no integrity check)",
                        bucket.0
                    ),
                );
            }
        }
    }

    fn violate(&mut self, rule: Rule, message: String) {
        self.violations
            .push(Violation::new(self.accesses, rule, message));
    }

    /// Number of tree levels whose buckets live off-chip (the tree top is
    /// cached on-chip and never appears in plans).
    fn off_chip_levels(&self) -> u64 {
        u64::from(
            self.config
                .levels
                .saturating_sub(self.config.tree_top_cached_levels),
        )
    }

    /// Audits the full plan batch of one protocol access, in plan order.
    pub fn observe_access(&mut self, plans: &[AccessPlan]) {
        self.accesses += 1;
        for plan in plans {
            self.observe_plan(plan);
        }
        // Eviction cadence: after a complete batch, exactly one eviction
        // per `A` read paths must have been emitted (background eviction
        // tops the count up with dummy paths before evicting, so the
        // invariant holds across all schemes).
        let expected = self.paths / u64::from(self.config.a);
        if self.evictions != expected {
            self.violate(
                Rule::EvictionCadence,
                format!(
                    "{} evictions after {} read paths (A = {}, expected {})",
                    self.evictions, self.paths, self.config.a, expected
                ),
            );
        }
        // Retry reconciliation: every `Retried` fault event must have
        // produced exactly one retry-read touch in this batch.
        for ((bucket, slot), n) in std::mem::take(&mut self.retry_allowances) {
            if n > 0 {
                self.violate(
                    Rule::RetryMismatch,
                    format!(
                        "{n} retried fault(s) at bucket {} slot {slot} produced no \
                         retry-read touch",
                        bucket.0
                    ),
                );
            }
        }
    }

    fn observe_plan(&mut self, plan: &AccessPlan) {
        let slots = self.config.bucket_slots();
        // Slot-range check applies to every touch of every plan kind.
        for touch in &plan.touches {
            if touch.slot >= slots {
                self.violate(
                    Rule::SlotRange,
                    format!(
                        "{} touch of bucket {} addressed slot {} (bucket has {slots})",
                        plan.kind.label(),
                        touch.bucket.0,
                        touch.slot
                    ),
                );
            }
        }
        match plan.kind {
            OpKind::ReadPath | OpKind::DummyReadPath => {
                self.paths += 1;
                self.check_path_shape(plan);
                for touch in &plan.touches {
                    if touch.write {
                        continue; // shape check already flagged it
                    }
                    let count = {
                        let c = self.touch_count.entry(touch.bucket).or_insert(0);
                        *c += 1;
                        *c
                    };
                    if count > self.config.s {
                        self.violate(
                            Rule::BucketBudget,
                            format!(
                                "bucket {} served {count} read-path touches in one epoch \
                                 (S = {})",
                                touch.bucket.0, self.config.s
                            ),
                        );
                    }
                    let reused = !self
                        .touched
                        .entry(touch.bucket)
                        .or_default()
                        .insert(touch.slot);
                    if reused {
                        self.violate(
                            Rule::SlotReuse,
                            format!(
                                "bucket {} slot {} read twice between reshuffles",
                                touch.bucket.0, touch.slot
                            ),
                        );
                    }
                }
            }
            OpKind::RetryRead => {
                // Retry reads re-fetch already-public slots; they are not
                // read paths (cadence unaffected) and do not open new slots
                // (reuse/budget exempt). Every touch must consume one
                // allowance minted by a `Retried` fault event, and must be
                // a read.
                for touch in &plan.touches {
                    if touch.write {
                        self.violate(
                            Rule::PlanShape,
                            format!(
                                "retry plan wrote bucket {} slot {} (retries only read)",
                                touch.bucket.0, touch.slot
                            ),
                        );
                        continue;
                    }
                    let site = (touch.bucket, touch.slot);
                    let allowed = self
                        .retry_allowances
                        .get_mut(&site)
                        .filter(|n| **n > 0)
                        .map(|n| *n -= 1)
                        .is_some();
                    if !allowed {
                        self.violate(
                            Rule::RetryMismatch,
                            format!(
                                "retry-read of bucket {} slot {} without a matching \
                                 retried fault event",
                                touch.bucket.0, touch.slot
                            ),
                        );
                    }
                }
                if plan.touches.is_empty() {
                    self.violate(
                        Rule::PlanShape,
                        "empty retry plan (a retry must re-read at least one slot)".to_string(),
                    );
                }
            }
            OpKind::EarlyReshuffle => {
                self.check_reshuffle_shape(plan, 1);
                self.apply_rewrites(plan);
            }
            OpKind::Eviction => {
                self.evictions += 1;
                self.check_reshuffle_shape(plan, self.off_chip_levels());
                self.apply_rewrites(plan);
            }
        }
    }

    /// A write touch rewrites (and re-permutes) its whole bucket: start a
    /// fresh reuse epoch for it.
    fn apply_rewrites(&mut self, plan: &AccessPlan) {
        for touch in &plan.touches {
            if touch.write {
                self.touched.remove(&touch.bucket);
                self.touch_count.remove(&touch.bucket);
            }
        }
    }

    /// A (dummy) read path reads exactly one slot per off-chip level and
    /// writes nothing.
    fn check_path_shape(&mut self, plan: &AccessPlan) {
        let reads = plan.reads() as u64;
        let writes = plan.writes() as u64;
        let expect = self.off_chip_levels();
        if reads != expect || writes != 0 {
            self.violate(
                Rule::PlanShape,
                format!(
                    "{} with {reads} reads / {writes} writes (expected {expect} / 0)",
                    plan.kind.label()
                ),
            );
        }
    }

    /// A reshuffle or eviction reads `Z` slots and rewrites all
    /// `Z + S - Y` slots of each bucket it covers.
    fn check_reshuffle_shape(&mut self, plan: &AccessPlan, buckets: u64) {
        let reads = plan.reads() as u64;
        let writes = plan.writes() as u64;
        let expect_reads = buckets * u64::from(self.config.z);
        let expect_writes = buckets * u64::from(self.config.bucket_slots());
        if reads != expect_reads || writes != expect_writes {
            self.violate(
                Rule::PlanShape,
                format!(
                    "{} with {reads} reads / {writes} writes (expected {expect_reads} / \
                     {expect_writes})",
                    plan.kind.label()
                ),
            );
        }
    }

    /// Records the stash occupancy sampled after an access completed.
    pub fn observe_stash(&mut self, stash_len: usize) {
        if stash_len > self.config.stash_capacity {
            self.violate(
                Rule::StashBound,
                format!(
                    "stash held {stash_len} blocks, bound {}",
                    self.config.stash_capacity
                ),
            );
        }
    }
}

/// Shape-checks one plan whose touch list must be `expect_reads` reads
/// followed by `expect_writes` writes, every slot inside `slots`. Shared by
/// the Path and Circuit auditors (their buckets have no dummy budget, so
/// epoch/reuse tracking does not apply — every access rewrites the full
/// path it read).
fn check_exact_shape(
    plan: &AccessPlan,
    slots: u32,
    expect_reads: u64,
    expect_writes: u64,
    access: u64,
    violations: &mut Vec<Violation>,
) {
    for touch in &plan.touches {
        if touch.slot >= slots {
            violations.push(Violation::new(
                access,
                Rule::SlotRange,
                format!(
                    "{} touch of bucket {} addressed slot {} (bucket has {slots})",
                    plan.kind.label(),
                    touch.bucket.0,
                    touch.slot
                ),
            ));
        }
    }
    let reads = plan.reads() as u64;
    let writes = plan.writes() as u64;
    if reads != expect_reads || writes != expect_writes {
        violations.push(Violation::new(
            access,
            Rule::PlanShape,
            format!(
                "{} with {reads} reads / {writes} writes (expected {expect_reads} / \
                 {expect_writes})",
                plan.kind.label()
            ),
        ));
    }
    // Reads must precede writes: the memory hierarchy fetches the path
    // before the engine can rewrite it.
    if let Some(first_write) = plan.touches.iter().position(|t| t.write) {
        if plan.touches[first_write..].iter().any(|t| !t.write) {
            violations.push(Violation::new(
                access,
                Rule::PlanShape,
                format!("{} interleaves reads after writes", plan.kind.label()),
            ));
        }
    }
}

/// Replays a Path ORAM plan stream against the protocol's invariants.
///
/// Path ORAM's bus-observable contract is far simpler than Ring's — there
/// are no dummy budgets or reshuffle epochs to track. Every access is
/// exactly one [`OpKind::ReadPath`] plan that reads all `Z` slots of every
/// off-chip bucket on the path and writes all of them back
/// ([`Rule::PlanShape`] otherwise), with every slot in range
/// ([`Rule::SlotRange`]) and the stash within its configured bound
/// ([`Rule::StashBound`]).
#[derive(Debug, Clone)]
pub struct PathAuditor {
    config: RingConfig,
    accesses: u64,
    violations: Vec<Violation>,
}

impl PathAuditor {
    /// Creates an auditor for a Path ORAM instance with this configuration
    /// (the `bucket_slots == z` [`RingConfig`] encoding).
    #[must_use]
    pub fn new(config: RingConfig) -> Self {
        Self {
            config,
            accesses: 0,
            violations: Vec::new(),
        }
    }

    /// Violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Takes the accumulated violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether no violation has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Protocol accesses audited so far.
    #[must_use]
    pub fn accesses_checked(&self) -> u64 {
        self.accesses
    }

    /// Audits the plan batch of one access: exactly one `ReadPath` plan
    /// reading and rewriting the full off-chip path.
    pub fn observe_access(&mut self, plans: &[AccessPlan]) {
        self.accesses += 1;
        if plans.len() != 1 || plans[0].kind != OpKind::ReadPath {
            self.violations.push(Violation::new(
                self.accesses,
                Rule::PlanShape,
                format!(
                    "Path ORAM access emitted {} plan(s) [{}] (expected 1 read-path)",
                    plans.len(),
                    plans
                        .iter()
                        .map(|p| p.kind.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
            return;
        }
        let off = u64::from(
            self.config
                .levels
                .saturating_sub(self.config.tree_top_cached_levels),
        );
        let per_level = u64::from(self.config.z);
        check_exact_shape(
            &plans[0],
            self.config.bucket_slots(),
            off * per_level,
            off * per_level,
            self.accesses,
            &mut self.violations,
        );
    }

    /// Records the stash occupancy sampled after an access completed.
    pub fn observe_stash(&mut self, stash_len: usize) {
        if stash_len > self.config.stash_capacity {
            self.violations.push(Violation::new(
                self.accesses,
                Rule::StashBound,
                format!(
                    "stash held {stash_len} blocks, bound {}",
                    self.config.stash_capacity
                ),
            ));
        }
    }
}

/// Replays a Circuit ORAM plan stream against the protocol's invariants.
///
/// Each access must be exactly one read-only [`OpKind::ReadPath`] plan
/// (all `Z` slots of every off-chip bucket on the path, zero writes)
/// followed by [`EVICTIONS_PER_ACCESS`] [`OpKind::Eviction`] plans that
/// each read and fully rewrite their reverse-lexicographic path
/// ([`Rule::PlanShape`] otherwise); slots stay in range
/// ([`Rule::SlotRange`]) and the stash within bound ([`Rule::StashBound`]).
#[derive(Debug, Clone)]
pub struct CircuitAuditor {
    config: RingConfig,
    accesses: u64,
    violations: Vec<Violation>,
}

impl CircuitAuditor {
    /// Creates an auditor for a Circuit ORAM instance with this
    /// configuration (the `bucket_slots == z` [`RingConfig`] encoding).
    #[must_use]
    pub fn new(config: RingConfig) -> Self {
        Self {
            config,
            accesses: 0,
            violations: Vec::new(),
        }
    }

    /// Violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Takes the accumulated violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether no violation has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Protocol accesses audited so far.
    #[must_use]
    pub fn accesses_checked(&self) -> u64 {
        self.accesses
    }

    /// Audits the plan batch of one access: one read-only `ReadPath` plus
    /// exactly [`EVICTIONS_PER_ACCESS`] full-path `Eviction` plans.
    pub fn observe_access(&mut self, plans: &[AccessPlan]) {
        self.accesses += 1;
        let well_formed = plans.len() == 1 + EVICTIONS_PER_ACCESS
            && plans[0].kind == OpKind::ReadPath
            && plans[1..].iter().all(|p| p.kind == OpKind::Eviction);
        if !well_formed {
            self.violations.push(Violation::new(
                self.accesses,
                Rule::PlanShape,
                format!(
                    "Circuit ORAM access emitted {} plan(s) [{}] (expected 1 read-path + \
                     {EVICTIONS_PER_ACCESS} evictions)",
                    plans.len(),
                    plans
                        .iter()
                        .map(|p| p.kind.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
            return;
        }
        let off = u64::from(
            self.config
                .levels
                .saturating_sub(self.config.tree_top_cached_levels),
        );
        let per_level = u64::from(self.config.z);
        let slots = self.config.bucket_slots();
        // The read path transfers the whole path but writes nothing back —
        // Circuit ORAM's low-online-bandwidth half.
        check_exact_shape(
            &plans[0],
            slots,
            off * per_level,
            0,
            self.accesses,
            &mut self.violations,
        );
        for ev in &plans[1..] {
            check_exact_shape(
                ev,
                slots,
                off * per_level,
                off * per_level,
                self.accesses,
                &mut self.violations,
            );
        }
    }

    /// Records the stash occupancy sampled after an access completed.
    pub fn observe_stash(&mut self, stash_len: usize) {
        if stash_len > self.config.stash_capacity {
            self.violations.push(Violation::new(
                self.accesses,
                Rule::StashBound,
                format!(
                    "stash held {stash_len} blocks, bound {}",
                    self.config.stash_capacity
                ),
            ));
        }
    }
}

/// The protocol-aware auditor the pipeline attaches: one of the concrete
/// auditors, selected by [`ProtocolKind`].
///
/// Ring+CB and plain Ring share the [`OramAuditor`] — plain Ring is the
/// `Y = 0` configuration and obeys every Ring invariant (the config passed
/// in must be the *effective* one, with `y` already forced to 0, so the
/// `Z + S - Y` slot range is right).
#[derive(Debug, Clone)]
pub enum ProtocolAuditor {
    /// Ring invariants (Ring+CB and plain Ring).
    Ring(OramAuditor),
    /// Path ORAM invariants.
    Path(PathAuditor),
    /// Circuit ORAM invariants.
    Circuit(CircuitAuditor),
}

impl ProtocolAuditor {
    /// Creates the auditor for `kind` over the protocol's effective
    /// configuration.
    #[must_use]
    pub fn new(kind: ProtocolKind, config: RingConfig) -> Self {
        match kind {
            ProtocolKind::RingCb | ProtocolKind::Ring => Self::Ring(OramAuditor::new(config)),
            ProtocolKind::Path => Self::Path(PathAuditor::new(config)),
            ProtocolKind::Circuit => Self::Circuit(CircuitAuditor::new(config)),
        }
    }

    /// Audits one access's fault-event log. Only the Ring engines have a
    /// fault layer; for Path/Circuit the log is always empty and this is a
    /// no-op (config validation rejects fault injection for them).
    pub fn observe_faults(&mut self, events: &[FaultEvent]) {
        if let Self::Ring(a) = self {
            a.observe_faults(events);
        }
    }

    /// Audits the full plan batch of one protocol access, in plan order.
    pub fn observe_access(&mut self, plans: &[AccessPlan]) {
        match self {
            Self::Ring(a) => a.observe_access(plans),
            Self::Path(a) => a.observe_access(plans),
            Self::Circuit(a) => a.observe_access(plans),
        }
    }

    /// Records the stash occupancy sampled after an access completed.
    pub fn observe_stash(&mut self, stash_len: usize) {
        match self {
            Self::Ring(a) => a.observe_stash(stash_len),
            Self::Path(a) => a.observe_stash(stash_len),
            Self::Circuit(a) => a.observe_stash(stash_len),
        }
    }

    /// Violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        match self {
            Self::Ring(a) => a.violations(),
            Self::Path(a) => a.violations(),
            Self::Circuit(a) => a.violations(),
        }
    }

    /// Takes the accumulated violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        match self {
            Self::Ring(a) => a.take_violations(),
            Self::Path(a) => a.take_violations(),
            Self::Circuit(a) => a.take_violations(),
        }
    }

    /// Whether no violation has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations().is_empty()
    }

    /// Protocol accesses audited so far.
    #[must_use]
    pub fn accesses_checked(&self) -> u64 {
        match self {
            Self::Ring(a) => a.accesses_checked(),
            Self::Path(a) => a.accesses_checked(),
            Self::Circuit(a) => a.accesses_checked(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_oram::{RingOram, SlotTouch};

    fn small_cb() -> RingConfig {
        RingConfig::test_small_cb()
    }

    fn read_path(config: &RingConfig, slot_of: impl Fn(u32) -> u32) -> AccessPlan {
        let off_chip = config.levels - config.tree_top_cached_levels;
        let touches = (0..off_chip)
            .map(|level| SlotTouch::read(BucketId(u64::from(level)), slot_of(level)))
            .collect();
        AccessPlan::new(OpKind::ReadPath, touches, None)
    }

    /// The auditor must accept everything the real protocol emits.
    #[test]
    fn real_protocol_stream_is_clean() {
        for (name, config) in [
            ("plain", RingConfig::test_small()),
            ("compact-bucket", small_cb()),
        ] {
            let mut oram = RingOram::new(config.clone(), 7);
            let mut auditor = OramAuditor::new(config.clone());
            let blocks = config.real_capacity_blocks() / 2;
            let mut rng = oram_rng::StdRng::seed_from_u64(11);
            use oram_rng::Rng;
            for i in 0..600u64 {
                let block = ring_oram::BlockId(rng.gen_range(0..blocks.max(1)));
                let outcome = if i % 3 == 0 {
                    let payload = vec![i as u8; config.block_bytes as usize];
                    oram.write_block(block, &payload)
                } else {
                    oram.read_block(block).0
                };
                auditor.observe_access(&outcome.plans);
                auditor.observe_stash(oram.stash_len());
            }
            assert!(
                auditor.is_clean(),
                "{name}: {:?}",
                auditor.violations().first()
            );
            assert_eq!(auditor.accesses_checked(), 600);
        }
    }

    #[test]
    fn slot_out_of_range_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        let mut plan = read_path(&config, |_| 0);
        plan.touches[0].slot = config.bucket_slots(); // one past the end
        auditor.observe_access(&[plan]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SlotRange));
    }

    #[test]
    fn slot_reuse_across_accesses_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        let plan = read_path(&config, |_| 2);
        // Same slots again without an intervening reshuffle: every bucket
        // reuses its slot.
        auditor.observe_access(std::slice::from_ref(&plan));
        auditor.observe_access(std::slice::from_ref(&plan));
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SlotReuse));
    }

    #[test]
    fn rewrite_opens_a_fresh_epoch() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        auditor.observe_access(&[read_path(&config, |_| 2)]);
        // Reshuffle bucket 0: Z reads + all-slot writes.
        let mut touches: Vec<SlotTouch> = (0..config.z)
            .map(|slot| SlotTouch::read(BucketId(0), slot))
            .collect();
        touches.extend((0..config.bucket_slots()).map(|slot| SlotTouch::write(BucketId(0), slot)));
        let shuffle = AccessPlan::new(OpKind::EarlyReshuffle, touches, None);
        auditor.observe_access(&[shuffle]);
        // Re-reading bucket 0 slot 2 is now legal; the other buckets get a
        // fresh slot so only the reshuffle's effect is probed.
        let again = read_path(&config, |level| if level == 0 { 2 } else { 3 });
        auditor.observe_access(&[again]);
        assert!(auditor.is_clean(), "{:?}", auditor.violations().first());
    }

    #[test]
    fn eviction_cadence_violation_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        // Feed A complete accesses with no eviction: the A-th batch must
        // trip the cadence check.
        for i in 0..config.a {
            auditor.observe_access(&[read_path(&config, |_| i % config.s)]);
        }
        assert!(
            auditor
                .violations()
                .iter()
                .any(|v| v.rule == Rule::EvictionCadence),
            "{:?}",
            auditor.violations()
        );
    }

    #[test]
    fn stash_bound_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        auditor.observe_stash(config.stash_capacity); // at bound: fine
        assert!(auditor.is_clean());
        auditor.observe_stash(config.stash_capacity + 1);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].rule, Rule::StashBound);
    }

    /// With fault injection enabled the auditor must stay clean: every
    /// injected corruption is detected, every retry is covered by a fault
    /// event, and cadence/reuse/budget invariants hold unchanged.
    #[test]
    fn faulty_protocol_stream_is_clean() {
        use ring_oram::ResilienceConfig;
        let config = small_cb();
        let mut oram = RingOram::new(config.clone(), 7);
        oram.enable_encryption(0xFEED);
        let mut res = ResilienceConfig::for_stash(config.stash_capacity);
        res.bit_flip_rate = 0.1;
        res.max_retries = 4;
        oram.enable_resilience(res);
        let mut auditor = OramAuditor::new(config.clone());
        let blocks = config.real_capacity_blocks() / 2;
        let mut rng = oram_rng::StdRng::seed_from_u64(11);
        use oram_rng::Rng;
        for i in 0..600u64 {
            let block = ring_oram::BlockId(rng.gen_range(0..blocks.max(1)));
            let outcome = if i % 3 == 0 {
                let payload = vec![i as u8; config.block_bytes as usize];
                oram.write_block(block, &payload)
            } else {
                oram.read_block(block).0
            };
            auditor.observe_faults(&oram.take_fault_events());
            auditor.observe_access(&outcome.plans);
            auditor.observe_stash(oram.stash_len());
        }
        assert!(auditor.is_clean(), "{:?}", auditor.violations().first());
        assert!(auditor.faults_checked() > 0, "faults must have fired");
        assert_eq!(
            oram.stats().faults_injected,
            oram.stats().faults_detected,
            "every injected fault must be detected"
        );
    }

    #[test]
    fn undetected_fault_flagged() {
        use ring_oram::{FaultEvent, FaultEventKind};
        let config = small_cb();
        let mut auditor = OramAuditor::new(config);
        auditor.observe_faults(&[FaultEvent {
            access: 1,
            bucket: BucketId(3),
            slot: 2,
            kind: FaultEventKind::Injected,
        }]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::FaultUndetected));
    }

    #[test]
    fn unrecovered_fault_flagged() {
        use ring_oram::{FaultEvent, FaultEventKind};
        let config = small_cb();
        let mut auditor = OramAuditor::new(config);
        let site = |kind| FaultEvent {
            access: 1,
            bucket: BucketId(3),
            slot: 2,
            kind,
        };
        auditor.observe_faults(&[
            site(FaultEventKind::Injected),
            site(FaultEventKind::Detected),
            site(FaultEventKind::Unrecovered),
        ]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::FaultUnrecovered));
    }

    #[test]
    fn retry_without_fault_event_flagged() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config);
        let plan = AccessPlan::new(
            OpKind::RetryRead,
            vec![SlotTouch::read(BucketId(0), 1)],
            None,
        );
        auditor.observe_access(&[plan]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::RetryMismatch));
    }

    #[test]
    fn retried_fault_without_retry_touch_flagged() {
        use ring_oram::{FaultEvent, FaultEventKind};
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        let site = |kind| FaultEvent {
            access: 1,
            bucket: BucketId(0),
            slot: 1,
            kind,
        };
        auditor.observe_faults(&[
            site(FaultEventKind::Injected),
            site(FaultEventKind::Detected),
            site(FaultEventKind::Retried),
            site(FaultEventKind::Recovered),
        ]);
        // A read-path batch with no RetryRead plan: the allowance is left
        // unconsumed and must be flagged at batch reconciliation.
        auditor.observe_access(&[read_path(&config, |_| 0)]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::RetryMismatch));
    }

    #[test]
    fn malformed_plan_shape_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config);
        // A read path that writes is structurally wrong.
        let plan = AccessPlan::new(
            OpKind::ReadPath,
            vec![SlotTouch::write(BucketId(0), 0)],
            None,
        );
        auditor.observe_access(&[plan]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::PlanShape));
    }

    fn z_slot_config() -> RingConfig {
        ring_oram::PathConfig::test_small().to_ring()
    }

    /// The Path auditor must accept everything the real engine emits.
    #[test]
    fn real_path_stream_is_clean() {
        use ring_oram::PathOram;
        let config = z_slot_config();
        let mut oram = PathOram::from_ring(config.clone(), 7);
        let mut auditor = PathAuditor::new(config);
        for i in 0..600u64 {
            let outcome = oram.access(ring_oram::BlockId(i % 40));
            auditor.observe_access(&outcome.plans);
            auditor.observe_stash(oram.stash_len());
            oram.recycle_outcome(outcome);
        }
        assert!(auditor.is_clean(), "{:?}", auditor.violations().first());
        assert_eq!(auditor.accesses_checked(), 600);
    }

    /// The Circuit auditor must accept everything the real engine emits.
    #[test]
    fn real_circuit_stream_is_clean() {
        use ring_oram::CircuitOram;
        let config = z_slot_config();
        let mut oram = CircuitOram::new(config.clone(), 7);
        let mut auditor = CircuitAuditor::new(config);
        for i in 0..600u64 {
            let outcome = oram.access(ring_oram::BlockId(i % 40));
            auditor.observe_access(&outcome.plans);
            auditor.observe_stash(oram.stash_len());
            oram.recycle_outcome(outcome);
        }
        assert!(auditor.is_clean(), "{:?}", auditor.violations().first());
        assert_eq!(auditor.accesses_checked(), 600);
    }

    #[test]
    fn path_auditor_rejects_wrong_plan_count_and_shape() {
        let config = z_slot_config();
        let mut auditor = PathAuditor::new(config.clone());
        // Two plans where one is expected.
        let mk = || {
            AccessPlan::new(
                OpKind::ReadPath,
                vec![SlotTouch::read(BucketId(0), 0)],
                None,
            )
        };
        auditor.observe_access(&[mk(), mk()]);
        assert!(auditor
            .take_violations()
            .iter()
            .any(|v| v.rule == Rule::PlanShape));
        // One plan, but a Ring-shaped one-read-per-level path (no writes).
        let touches = (0..config.levels)
            .map(|l| SlotTouch::read(BucketId(u64::from(l)), 0))
            .collect();
        auditor.observe_access(&[AccessPlan::new(OpKind::ReadPath, touches, None)]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::PlanShape));
    }

    #[test]
    fn path_auditor_rejects_out_of_range_slot_and_stash_overflow() {
        let config = z_slot_config();
        let mut auditor = PathAuditor::new(config.clone());
        let mut oram = ring_oram::PathOram::from_ring(config.clone(), 3);
        let mut outcome = oram.access(ring_oram::BlockId(1));
        outcome.plans[0].touches[0].slot = config.bucket_slots(); // one past the end
        auditor.observe_access(&outcome.plans);
        assert!(auditor
            .take_violations()
            .iter()
            .any(|v| v.rule == Rule::SlotRange));
        auditor.observe_stash(config.stash_capacity + 1);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::StashBound));
    }

    #[test]
    fn circuit_auditor_rejects_missing_eviction_and_writing_read_path() {
        let config = z_slot_config();
        let mut auditor = CircuitAuditor::new(config.clone());
        let mut oram = ring_oram::CircuitOram::new(config.clone(), 3);
        // Dropping an eviction plan breaks the deterministic cadence.
        let outcome = oram.access(ring_oram::BlockId(1));
        auditor.observe_access(&outcome.plans[..2]);
        assert!(auditor
            .take_violations()
            .iter()
            .any(|v| v.rule == Rule::PlanShape));
        // A read path that writes back is Path ORAM, not Circuit.
        let mut outcome2 = oram.access(ring_oram::BlockId(2));
        let touch = outcome2.plans[0].touches[0];
        outcome2.plans[0]
            .touches
            .push(SlotTouch::write(touch.bucket, touch.slot));
        auditor.observe_access(&outcome2.plans);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::PlanShape));
    }

    #[test]
    fn reads_after_writes_are_rejected() {
        let config = z_slot_config();
        let mut auditor = PathAuditor::new(config.clone());
        let off = config.levels - config.tree_top_cached_levels;
        // Right counts, wrong order: interleave write-then-read per level.
        let mut touches = Vec::new();
        for l in 0..off {
            for s in 0..config.z {
                touches.push(SlotTouch::write(BucketId(u64::from(l)), s));
                touches.push(SlotTouch::read(BucketId(u64::from(l)), s));
            }
        }
        auditor.observe_access(&[AccessPlan::new(OpKind::ReadPath, touches, None)]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::PlanShape));
    }

    #[test]
    fn protocol_auditor_dispatches_by_kind() {
        let ring = ProtocolAuditor::new(ProtocolKind::RingCb, small_cb());
        assert!(matches!(ring, ProtocolAuditor::Ring(_)));
        let plain = ProtocolAuditor::new(ProtocolKind::Ring, RingConfig::test_small());
        assert!(matches!(plain, ProtocolAuditor::Ring(_)));
        let mut path = ProtocolAuditor::new(ProtocolKind::Path, z_slot_config());
        assert!(matches!(path, ProtocolAuditor::Path(_)));
        let circuit = ProtocolAuditor::new(ProtocolKind::Circuit, z_slot_config());
        assert!(matches!(circuit, ProtocolAuditor::Circuit(_)));

        // The dispatching surface behaves like the inner auditor.
        let mut oram = ring_oram::PathOram::from_ring(z_slot_config(), 9);
        for i in 0..50u64 {
            let outcome = oram.access(ring_oram::BlockId(i % 10));
            path.observe_faults(&[]);
            path.observe_access(&outcome.plans);
            path.observe_stash(oram.stash_len());
            oram.recycle_outcome(outcome);
        }
        assert!(path.is_clean(), "{:?}", path.violations().first());
        assert_eq!(path.accesses_checked(), 50);
        assert!(path.take_violations().is_empty());
    }
}
