//! The Ring ORAM invariant auditor.
//!
//! [`OramAuditor`] replays the protocol's [`AccessPlan`] stream — the same
//! artifact the memory hierarchy consumes — against the paper's structural
//! invariants, independently of `ring-oram`'s internal bookkeeping:
//!
//! * every slot index stays inside the bucket's physical `Z + S - Y` slots
//!   ([`Rule::SlotRange`]);
//! * within one reshuffle epoch, no bucket slot is *read-path-read* twice —
//!   this is Ring ORAM's core security invariant: a dummy (or real) slot
//!   revisited between reshuffles correlates accesses ([`Rule::SlotReuse`]);
//! * no bucket serves more than `S` read-path touches per epoch, because the
//!   protocol must reshuffle at `S` accesses ([`Rule::BucketBudget`]);
//! * evictions fire at exactly one per `A` read paths, counting the dummy
//!   read paths of background eviction ([`Rule::EvictionCadence`]);
//! * each plan's touch counts match its kind's canonical shape
//!   ([`Rule::PlanShape`]);
//! * stash occupancy, sampled after each completed access, stays within the
//!   configured bound ([`Rule::StashBound`]).
//!
//! Reshuffle epochs are tracked from the plan stream itself: any *write*
//! touch to a bucket (the write phase of an eviction or reshuffle rewrites
//! all its slots) starts a fresh epoch for that bucket. The read phases of
//! evictions and reshuffles are excluded from the reuse/budget checks —
//! they legitimately re-read slots (and pad with filler indices) because
//! the bucket is about to be rewritten anyway.

use std::collections::{HashMap, HashSet};

use ring_oram::types::BucketId;
use ring_oram::{AccessPlan, FaultEvent, FaultEventKind, OpKind, RingConfig};

use crate::violation::{Rule, Violation};

/// Replays an [`AccessPlan`] stream against the Ring ORAM invariants.
///
/// Feed every plan batch (one [`observe_access`](Self::observe_access) call
/// per protocol access, in order) and the post-access stash occupancy via
/// [`observe_stash`](Self::observe_stash); collect findings from
/// [`violations`](Self::violations).
#[derive(Debug, Clone)]
pub struct OramAuditor {
    config: RingConfig,
    /// Read-path-touched slots per bucket since that bucket's last rewrite.
    touched: HashMap<BucketId, HashSet<u32>>,
    /// Read-path touch count per bucket in the current epoch (tracked
    /// separately from the set so reuse doesn't mask a budget overrun).
    touch_count: HashMap<BucketId, u32>,
    accesses: u64,
    paths: u64,
    evictions: u64,
    /// Retry-read touches the fault log has authorized but no RetryRead
    /// plan has consumed yet, keyed by (bucket, slot). Filled by
    /// [`Self::observe_faults`], drained by the batch's RetryRead plans and
    /// reconciled at the end of each [`Self::observe_access`].
    retry_allowances: HashMap<(BucketId, u32), u32>,
    /// Injected faults counted by [`Self::observe_faults`].
    faults_seen: u64,
    violations: Vec<Violation>,
}

impl OramAuditor {
    /// Creates an auditor for a protocol instance with this configuration.
    #[must_use]
    pub fn new(config: RingConfig) -> Self {
        Self {
            config,
            touched: HashMap::new(),
            touch_count: HashMap::new(),
            accesses: 0,
            paths: 0,
            evictions: 0,
            retry_allowances: HashMap::new(),
            faults_seen: 0,
            violations: Vec::new(),
        }
    }

    /// Violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Takes the accumulated violations, keeping the epoch state.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether no violation has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Protocol accesses audited so far.
    #[must_use]
    pub fn accesses_checked(&self) -> u64 {
        self.accesses
    }

    /// Injected fault events audited so far.
    #[must_use]
    pub fn faults_checked(&self) -> u64 {
        self.faults_seen
    }

    /// Audits one access's fault-event log. Call *before* the matching
    /// [`Self::observe_access`]: the log's `Retried` entries authorize the
    /// retry-read touches of the batch's plans.
    ///
    /// Checks:
    /// * every `Injected` event is followed by a `Detected` for the same
    ///   site within the batch ([`Rule::FaultUndetected`] otherwise — the
    ///   integrity tag was missing or unchecked);
    /// * no fetch ends `Unrecovered` ([`Rule::FaultUnrecovered`]): the
    ///   retry budget must be sized so recovery always succeeds, or the
    ///   simulation's results are computed on lost data.
    pub fn observe_faults(&mut self, events: &[FaultEvent]) {
        let mut pending_detect: HashMap<(BucketId, u32), u32> = HashMap::new();
        for e in events {
            let site = (e.bucket, e.slot);
            match e.kind {
                FaultEventKind::Injected => {
                    self.faults_seen += 1;
                    *pending_detect.entry(site).or_insert(0) += 1;
                }
                FaultEventKind::Detected => {
                    let p = pending_detect.entry(site).or_insert(0);
                    *p = p.saturating_sub(1);
                }
                FaultEventKind::Retried => {
                    *self.retry_allowances.entry(site).or_insert(0) += 1;
                }
                FaultEventKind::Recovered => {}
                FaultEventKind::Unrecovered => {
                    self.violate(
                        Rule::FaultUnrecovered,
                        format!(
                            "fetch from bucket {} slot {} lost its payload after \
                             exhausting the retry budget",
                            e.bucket.0, e.slot
                        ),
                    );
                }
            }
        }
        for ((bucket, slot), missing) in pending_detect {
            if missing > 0 {
                self.violate(
                    Rule::FaultUndetected,
                    format!(
                        "{missing} injected corruption(s) of bucket {} slot {slot} \
                         were never detected (no integrity check)",
                        bucket.0
                    ),
                );
            }
        }
    }

    fn violate(&mut self, rule: Rule, message: String) {
        self.violations
            .push(Violation::new(self.accesses, rule, message));
    }

    /// Number of tree levels whose buckets live off-chip (the tree top is
    /// cached on-chip and never appears in plans).
    fn off_chip_levels(&self) -> u64 {
        u64::from(
            self.config
                .levels
                .saturating_sub(self.config.tree_top_cached_levels),
        )
    }

    /// Audits the full plan batch of one protocol access, in plan order.
    pub fn observe_access(&mut self, plans: &[AccessPlan]) {
        self.accesses += 1;
        for plan in plans {
            self.observe_plan(plan);
        }
        // Eviction cadence: after a complete batch, exactly one eviction
        // per `A` read paths must have been emitted (background eviction
        // tops the count up with dummy paths before evicting, so the
        // invariant holds across all schemes).
        let expected = self.paths / u64::from(self.config.a);
        if self.evictions != expected {
            self.violate(
                Rule::EvictionCadence,
                format!(
                    "{} evictions after {} read paths (A = {}, expected {})",
                    self.evictions, self.paths, self.config.a, expected
                ),
            );
        }
        // Retry reconciliation: every `Retried` fault event must have
        // produced exactly one retry-read touch in this batch.
        for ((bucket, slot), n) in std::mem::take(&mut self.retry_allowances) {
            if n > 0 {
                self.violate(
                    Rule::RetryMismatch,
                    format!(
                        "{n} retried fault(s) at bucket {} slot {slot} produced no \
                         retry-read touch",
                        bucket.0
                    ),
                );
            }
        }
    }

    fn observe_plan(&mut self, plan: &AccessPlan) {
        let slots = self.config.bucket_slots();
        // Slot-range check applies to every touch of every plan kind.
        for touch in &plan.touches {
            if touch.slot >= slots {
                self.violate(
                    Rule::SlotRange,
                    format!(
                        "{} touch of bucket {} addressed slot {} (bucket has {slots})",
                        plan.kind.label(),
                        touch.bucket.0,
                        touch.slot
                    ),
                );
            }
        }
        match plan.kind {
            OpKind::ReadPath | OpKind::DummyReadPath => {
                self.paths += 1;
                self.check_path_shape(plan);
                for touch in &plan.touches {
                    if touch.write {
                        continue; // shape check already flagged it
                    }
                    let count = {
                        let c = self.touch_count.entry(touch.bucket).or_insert(0);
                        *c += 1;
                        *c
                    };
                    if count > self.config.s {
                        self.violate(
                            Rule::BucketBudget,
                            format!(
                                "bucket {} served {count} read-path touches in one epoch \
                                 (S = {})",
                                touch.bucket.0, self.config.s
                            ),
                        );
                    }
                    let reused = !self
                        .touched
                        .entry(touch.bucket)
                        .or_default()
                        .insert(touch.slot);
                    if reused {
                        self.violate(
                            Rule::SlotReuse,
                            format!(
                                "bucket {} slot {} read twice between reshuffles",
                                touch.bucket.0, touch.slot
                            ),
                        );
                    }
                }
            }
            OpKind::RetryRead => {
                // Retry reads re-fetch already-public slots; they are not
                // read paths (cadence unaffected) and do not open new slots
                // (reuse/budget exempt). Every touch must consume one
                // allowance minted by a `Retried` fault event, and must be
                // a read.
                for touch in &plan.touches {
                    if touch.write {
                        self.violate(
                            Rule::PlanShape,
                            format!(
                                "retry plan wrote bucket {} slot {} (retries only read)",
                                touch.bucket.0, touch.slot
                            ),
                        );
                        continue;
                    }
                    let site = (touch.bucket, touch.slot);
                    let allowed = self
                        .retry_allowances
                        .get_mut(&site)
                        .filter(|n| **n > 0)
                        .map(|n| *n -= 1)
                        .is_some();
                    if !allowed {
                        self.violate(
                            Rule::RetryMismatch,
                            format!(
                                "retry-read of bucket {} slot {} without a matching \
                                 retried fault event",
                                touch.bucket.0, touch.slot
                            ),
                        );
                    }
                }
                if plan.touches.is_empty() {
                    self.violate(
                        Rule::PlanShape,
                        "empty retry plan (a retry must re-read at least one slot)".to_string(),
                    );
                }
            }
            OpKind::EarlyReshuffle => {
                self.check_reshuffle_shape(plan, 1);
                self.apply_rewrites(plan);
            }
            OpKind::Eviction => {
                self.evictions += 1;
                self.check_reshuffle_shape(plan, self.off_chip_levels());
                self.apply_rewrites(plan);
            }
        }
    }

    /// A write touch rewrites (and re-permutes) its whole bucket: start a
    /// fresh reuse epoch for it.
    fn apply_rewrites(&mut self, plan: &AccessPlan) {
        for touch in &plan.touches {
            if touch.write {
                self.touched.remove(&touch.bucket);
                self.touch_count.remove(&touch.bucket);
            }
        }
    }

    /// A (dummy) read path reads exactly one slot per off-chip level and
    /// writes nothing.
    fn check_path_shape(&mut self, plan: &AccessPlan) {
        let reads = plan.reads() as u64;
        let writes = plan.writes() as u64;
        let expect = self.off_chip_levels();
        if reads != expect || writes != 0 {
            self.violate(
                Rule::PlanShape,
                format!(
                    "{} with {reads} reads / {writes} writes (expected {expect} / 0)",
                    plan.kind.label()
                ),
            );
        }
    }

    /// A reshuffle or eviction reads `Z` slots and rewrites all
    /// `Z + S - Y` slots of each bucket it covers.
    fn check_reshuffle_shape(&mut self, plan: &AccessPlan, buckets: u64) {
        let reads = plan.reads() as u64;
        let writes = plan.writes() as u64;
        let expect_reads = buckets * u64::from(self.config.z);
        let expect_writes = buckets * u64::from(self.config.bucket_slots());
        if reads != expect_reads || writes != expect_writes {
            self.violate(
                Rule::PlanShape,
                format!(
                    "{} with {reads} reads / {writes} writes (expected {expect_reads} / \
                     {expect_writes})",
                    plan.kind.label()
                ),
            );
        }
    }

    /// Records the stash occupancy sampled after an access completed.
    pub fn observe_stash(&mut self, stash_len: usize) {
        if stash_len > self.config.stash_capacity {
            self.violate(
                Rule::StashBound,
                format!(
                    "stash held {stash_len} blocks, bound {}",
                    self.config.stash_capacity
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_oram::{RingOram, SlotTouch};

    fn small_cb() -> RingConfig {
        RingConfig::test_small_cb()
    }

    fn read_path(config: &RingConfig, slot_of: impl Fn(u32) -> u32) -> AccessPlan {
        let off_chip = config.levels - config.tree_top_cached_levels;
        let touches = (0..off_chip)
            .map(|level| SlotTouch::read(BucketId(u64::from(level)), slot_of(level)))
            .collect();
        AccessPlan::new(OpKind::ReadPath, touches, None)
    }

    /// The auditor must accept everything the real protocol emits.
    #[test]
    fn real_protocol_stream_is_clean() {
        for (name, config) in [
            ("plain", RingConfig::test_small()),
            ("compact-bucket", small_cb()),
        ] {
            let mut oram = RingOram::new(config.clone(), 7);
            let mut auditor = OramAuditor::new(config.clone());
            let blocks = config.real_capacity_blocks() / 2;
            let mut rng = oram_rng::StdRng::seed_from_u64(11);
            use oram_rng::Rng;
            for i in 0..600u64 {
                let block = ring_oram::BlockId(rng.gen_range(0..blocks.max(1)));
                let outcome = if i % 3 == 0 {
                    let payload = vec![i as u8; config.block_bytes as usize];
                    oram.write_block(block, &payload)
                } else {
                    oram.read_block(block).0
                };
                auditor.observe_access(&outcome.plans);
                auditor.observe_stash(oram.stash_len());
            }
            assert!(
                auditor.is_clean(),
                "{name}: {:?}",
                auditor.violations().first()
            );
            assert_eq!(auditor.accesses_checked(), 600);
        }
    }

    #[test]
    fn slot_out_of_range_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        let mut plan = read_path(&config, |_| 0);
        plan.touches[0].slot = config.bucket_slots(); // one past the end
        auditor.observe_access(&[plan]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SlotRange));
    }

    #[test]
    fn slot_reuse_across_accesses_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        let plan = read_path(&config, |_| 2);
        // Same slots again without an intervening reshuffle: every bucket
        // reuses its slot.
        auditor.observe_access(std::slice::from_ref(&plan));
        auditor.observe_access(std::slice::from_ref(&plan));
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SlotReuse));
    }

    #[test]
    fn rewrite_opens_a_fresh_epoch() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        auditor.observe_access(&[read_path(&config, |_| 2)]);
        // Reshuffle bucket 0: Z reads + all-slot writes.
        let mut touches: Vec<SlotTouch> = (0..config.z)
            .map(|slot| SlotTouch::read(BucketId(0), slot))
            .collect();
        touches.extend((0..config.bucket_slots()).map(|slot| SlotTouch::write(BucketId(0), slot)));
        let shuffle = AccessPlan::new(OpKind::EarlyReshuffle, touches, None);
        auditor.observe_access(&[shuffle]);
        // Re-reading bucket 0 slot 2 is now legal; the other buckets get a
        // fresh slot so only the reshuffle's effect is probed.
        let again = read_path(&config, |level| if level == 0 { 2 } else { 3 });
        auditor.observe_access(&[again]);
        assert!(auditor.is_clean(), "{:?}", auditor.violations().first());
    }

    #[test]
    fn eviction_cadence_violation_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        // Feed A complete accesses with no eviction: the A-th batch must
        // trip the cadence check.
        for i in 0..config.a {
            auditor.observe_access(&[read_path(&config, |_| i % config.s)]);
        }
        assert!(
            auditor
                .violations()
                .iter()
                .any(|v| v.rule == Rule::EvictionCadence),
            "{:?}",
            auditor.violations()
        );
    }

    #[test]
    fn stash_bound_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        auditor.observe_stash(config.stash_capacity); // at bound: fine
        assert!(auditor.is_clean());
        auditor.observe_stash(config.stash_capacity + 1);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].rule, Rule::StashBound);
    }

    /// With fault injection enabled the auditor must stay clean: every
    /// injected corruption is detected, every retry is covered by a fault
    /// event, and cadence/reuse/budget invariants hold unchanged.
    #[test]
    fn faulty_protocol_stream_is_clean() {
        use ring_oram::ResilienceConfig;
        let config = small_cb();
        let mut oram = RingOram::new(config.clone(), 7);
        oram.enable_encryption(0xFEED);
        let mut res = ResilienceConfig::for_stash(config.stash_capacity);
        res.bit_flip_rate = 0.1;
        res.max_retries = 4;
        oram.enable_resilience(res);
        let mut auditor = OramAuditor::new(config.clone());
        let blocks = config.real_capacity_blocks() / 2;
        let mut rng = oram_rng::StdRng::seed_from_u64(11);
        use oram_rng::Rng;
        for i in 0..600u64 {
            let block = ring_oram::BlockId(rng.gen_range(0..blocks.max(1)));
            let outcome = if i % 3 == 0 {
                let payload = vec![i as u8; config.block_bytes as usize];
                oram.write_block(block, &payload)
            } else {
                oram.read_block(block).0
            };
            auditor.observe_faults(&oram.take_fault_events());
            auditor.observe_access(&outcome.plans);
            auditor.observe_stash(oram.stash_len());
        }
        assert!(auditor.is_clean(), "{:?}", auditor.violations().first());
        assert!(auditor.faults_checked() > 0, "faults must have fired");
        assert_eq!(
            oram.stats().faults_injected,
            oram.stats().faults_detected,
            "every injected fault must be detected"
        );
    }

    #[test]
    fn undetected_fault_flagged() {
        use ring_oram::{FaultEvent, FaultEventKind};
        let config = small_cb();
        let mut auditor = OramAuditor::new(config);
        auditor.observe_faults(&[FaultEvent {
            access: 1,
            bucket: BucketId(3),
            slot: 2,
            kind: FaultEventKind::Injected,
        }]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::FaultUndetected));
    }

    #[test]
    fn unrecovered_fault_flagged() {
        use ring_oram::{FaultEvent, FaultEventKind};
        let config = small_cb();
        let mut auditor = OramAuditor::new(config);
        let site = |kind| FaultEvent {
            access: 1,
            bucket: BucketId(3),
            slot: 2,
            kind,
        };
        auditor.observe_faults(&[
            site(FaultEventKind::Injected),
            site(FaultEventKind::Detected),
            site(FaultEventKind::Unrecovered),
        ]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::FaultUnrecovered));
    }

    #[test]
    fn retry_without_fault_event_flagged() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config);
        let plan = AccessPlan::new(
            OpKind::RetryRead,
            vec![SlotTouch::read(BucketId(0), 1)],
            None,
        );
        auditor.observe_access(&[plan]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::RetryMismatch));
    }

    #[test]
    fn retried_fault_without_retry_touch_flagged() {
        use ring_oram::{FaultEvent, FaultEventKind};
        let config = small_cb();
        let mut auditor = OramAuditor::new(config.clone());
        let site = |kind| FaultEvent {
            access: 1,
            bucket: BucketId(0),
            slot: 1,
            kind,
        };
        auditor.observe_faults(&[
            site(FaultEventKind::Injected),
            site(FaultEventKind::Detected),
            site(FaultEventKind::Retried),
            site(FaultEventKind::Recovered),
        ]);
        // A read-path batch with no RetryRead plan: the allowance is left
        // unconsumed and must be flagged at batch reconciliation.
        auditor.observe_access(&[read_path(&config, |_| 0)]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::RetryMismatch));
    }

    #[test]
    fn malformed_plan_shape_detected() {
        let config = small_cb();
        let mut auditor = OramAuditor::new(config);
        // A read path that writes is structurally wrong.
        let plan = AccessPlan::new(
            OpKind::ReadPath,
            vec![SlotTouch::write(BucketId(0), 0)],
            None,
        );
        auditor.observe_access(&[plan]);
        assert!(auditor
            .violations()
            .iter()
            .any(|v| v.rule == Rule::PlanShape));
    }
}
